//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the serialization surface the workspace uses: a JSON
//! [`Value`] model, [`Serialize`]/[`Deserialize`] traits expressed
//! directly over it, and derive macros (re-exported from
//! `serde_derive`) for plain structs and unit-variant enums. The
//! companion `serde_json` stand-in renders and parses the actual JSON
//! text. The derive/trait *names* match upstream serde so user code is
//! source-compatible; the trait method signatures are deliberately
//! simpler (no `Serializer`/`Deserializer` abstraction).

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document. Object fields preserve insertion order so that
/// serialized reports are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Fails when `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            _ => Err(DeError::new(format!(
                "expected object while reading field `{name}`"
            ))),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON representation.
    fn to_value(&self) -> Value;
}

/// Conversion from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Fails when the JSON shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- identity impls ----------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

// ---- primitive impls ---------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected number, found {}", other.type_name()))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = [$(stringify!($idx)),+].len();
                match v {
                    Value::Array(items) if items.len() == N => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::new(format!(
                        "expected {}-tuple, found array of {}", N, items.len()))),
                    other => Err(DeError::new(format!(
                        "expected array, found {}", other.type_name()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u64>::from_value(&Value::Null).unwrap(),
            None::<u64>
        );
        let t = (1u32, "x".to_string(), Some(2.5f64));
        let back: (u32, String, Option<f64>) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Object(vec![("a".into(), Value::Num(1.0))]);
        assert!(v.field("a").is_ok());
        assert!(v.field("b").is_err());
    }
}
