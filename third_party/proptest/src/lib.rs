//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest this workspace uses: the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros,
//! integer range and tuple strategies, `any::<T>()`, and
//! `collection::vec`. Cases are sampled from a generator seeded by the
//! test's module path and case index, so failures reproduce exactly
//! across runs. There is **no shrinking** — a failing case reports its
//! index and message and panics immediately.

/// Strategies: composable random value sources.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Integers the range strategies can produce.
    pub trait SampleNum: Copy {
        /// Widening conversion (signed values sign-extend).
        fn to_i128(self) -> i128;
        /// Narrowing conversion; the value is always in range.
        fn from_i128(v: i128) -> Self;
    }

    macro_rules! impl_sample_num {
        ($($t:ty),*) => {$(
            impl SampleNum for $t {
                fn to_i128(self) -> i128 {
                    self as i128
                }
                fn from_i128(v: i128) -> $t {
                    v as $t
                }
            }
        )*};
    }

    impl_sample_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    fn uniform_in(lo: i128, hi_incl: i128, rng: &mut TestRng) -> i128 {
        debug_assert!(lo <= hi_incl);
        let span = (hi_incl - lo) as u128;
        if span >= u64::MAX as u128 {
            return lo + rng.next_u64() as i128;
        }
        let bound = span as u64 + 1;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = rng.next_u64();
            if raw < zone {
                return lo + (raw % bound) as i128;
            }
        }
    }

    impl<T: SampleNum> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
            assert!(lo < hi, "empty range strategy");
            T::from_i128(uniform_in(lo, hi - 1, rng))
        }
    }

    impl<T: SampleNum> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
            assert!(lo <= hi, "empty range strategy");
            T::from_i128(uniform_in(lo, hi, rng))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident . $idx:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait backing typed parameters.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies (`collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_incl - self.size.lo;
            let len = if span == 0 {
                self.size.lo
            } else {
                self.size.lo + (rng.next_u64() as usize % (span + 1))
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Config, RNG and failure plumbing used by the macros.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with a message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Deterministic SplitMix64 stream keyed by (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one named test. The same (name, case)
        /// pair always yields the same stream.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut h);
            let seed = h
                .finish()
                .wrapping_add((case as u64).wrapping_mul(0x9E3779B97F4A7C15));
            // Scramble once so adjacent case indices start statistically
            // unrelated streams (raw SplitMix counters one step apart
            // would otherwise overlap after a single draw).
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            TestRng {
                state: z ^ (z >> 31),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// The names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Each `fn` inside becomes a `#[test]` that
/// runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__bind_params!(__rng; ($($params)*) $body);
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest `{}` case {} failed: {}",
                        stringify!($name),
                        __case,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter (either
/// `name in strategy` or `name: Type`) and recurses on the rest.
#[doc(hidden)]
#[macro_export]
macro_rules! __bind_params {
    ($rng:ident; () $body:block) => {
        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::std::result::Result::Ok(())
        })()
    };
    ($rng:ident; ($i:ident in $s:expr) $body:block) => {{
        let $i = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::__bind_params!($rng; () $body)
    }};
    ($rng:ident; ($i:ident in $s:expr, $($rest:tt)*) $body:block) => {{
        let $i = $crate::strategy::Strategy::sample(&($s), &mut $rng);
        $crate::__bind_params!($rng; ($($rest)*) $body)
    }};
    ($rng:ident; ($i:ident : $t:ty) $body:block) => {{
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__bind_params!($rng; () $body)
    }};
    ($rng:ident; ($i:ident : $t:ty, $($rest:tt)*) $body:block) => {{
        let $i = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::__bind_params!($rng; ($($rest)*) $body)
    }};
}

/// Property assertion: on failure returns a [`TestCaseError`](test_runner::TestCaseError) from the
/// enclosing case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}` ({} == {})",
                    __a,
                    __b,
                    stringify!($a),
                    stringify!($b)
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?} == {:?}`", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __a, __b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_params(a: u64, w in 1u32..=64, flag: bool) {
            let _ = flag;
            prop_assert!((1..=64).contains(&w));
            let _ = a;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vectors_respect_size_bounds(
            xs in crate::collection::vec(0u8..4, 1..80),
            pairs in crate::collection::vec((0u32..10, any::<bool>()), 2..5),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 80);
            prop_assert!(xs.iter().all(|&x| x < 4));
            prop_assert!(pairs.len() >= 2 && pairs.len() < 5);
            prop_assert!(pairs.iter().all(|&(v, _)| v < 10));
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
