//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the `serde` stand-in's
//! [`Value`] model. Provides the three entry points the workspace
//! uses: [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer -----------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; upstream serde_json errors here, but the
        // workspace only serializes finite metrics — degrade to null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error::new(format!("invalid number at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's reports; map them to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Num(1.0), Value::Num(2.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        for text in [compact, pretty] {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            assert_eq!(p.parse_value().unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("[1] junk").is_err());
    }
}
