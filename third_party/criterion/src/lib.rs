//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`criterion_group!`] and [`criterion_main!`] — measured with plain
//! wall-clock timing. There are no statistical reports or HTML output;
//! each benchmark prints `name ... time: <median> ns/iter` to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// How long each benchmark samples for after warm-up.
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time before samples are recorded.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus a parameter label.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-call cost so the sample loop
        // can batch extremely fast routines.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (WARMUP_BUDGET.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        // Aim for ~50 samples; batch iterations so each sample takes
        // long enough for the clock to resolve.
        let batch = ((SAMPLE_BUDGET.as_nanos() as f64 / 50.0 / est_ns).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::new();
        let sample_start = Instant::now();
        while sample_start.elapsed() < SAMPLE_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.to_string(), bencher.ns_per_iter);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher, input);
        self.criterion
            .report(&self.name, &id.to_string(), bencher.ns_per_iter);
        self
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        self.report("", id, bencher.ns_per_iter);
        self
    }

    fn report(&mut self, group: &str, id: &str, ns: f64) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if ns >= 1_000_000.0 {
            println!("{full:<50} time: {:10.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("{full:<50} time: {:10.3} us/iter", ns / 1_000.0);
        } else {
            println!("{full:<50} time: {ns:10.1} ns/iter");
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| black_box(0u64)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x))
        });
        g.finish();
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
