//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! without syn/quote by walking the raw [`TokenStream`]. Supported
//! shapes are exactly what this workspace uses: structs with named
//! fields and enums whose variants are all unit variants. Anything
//! else panics at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: (name, field identifiers).
    Struct(String, Vec<String>),
    /// Unit-variant enum: (name, variant identifiers).
    Enum(String, Vec<String>),
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility tokens, then parses `struct Name { fields }` or
/// `enum Name { variants }`.
fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional `(crate)`-style visibility scope.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!(
                    "derive: generic type `{name}` is not supported by the offline serde stand-in"
                )
            }
            Some(_) => continue,
            None => panic!("derive: `{name}` has no braced body (tuple/unit shapes unsupported)"),
        }
    };

    match kind.as_str() {
        "struct" => Shape::Struct(name, named_fields(body.stream())),
        "enum" => Shape::Enum(name, unit_variants(body.stream())),
        other => panic!("derive: unsupported item kind `{other}`"),
    }
}

/// Extracts field names from a named-field struct body. Fields look
/// like `[attrs] [pub] name : type ,` — the identifier immediately
/// before each top-level `:` is the field name. Nested generics in
/// types never contain a top-level `:` at depth 0 because type paths
/// use `::` (a joint punct pair), which we detect and skip.
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && !in_type => {
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ':' => {
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Punct(q)) if q.as_char() == ':'
                ) {
                    // `::` path separator inside a type.
                    iter.next();
                } else if !in_type {
                    let name = last_ident
                        .take()
                        .expect("derive: `:` with no preceding field name");
                    fields.push(name);
                    in_type = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && !in_type => {}
            TokenTree::Punct(p) if p.as_char() == ',' && in_type => {
                // A `,` at depth 0 while reading a type ends the field
                // (generic args live inside `<...>` punct runs; see below).
                in_type = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' && in_type => {
                // Consume until the matching `>` so commas inside
                // generic argument lists don't end the field.
                let mut depth = 1usize;
                for inner in iter.by_ref() {
                    if let TokenTree::Punct(q) = inner {
                        match q.as_char() {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }
    fields
}

/// Extracts variant names from an enum body, insisting every variant
/// is a unit variant (no payload group follows the identifier).
fn unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "derive: enum variant `{name}` carries data; only unit \
                         variants are supported by the offline serde stand-in"
                    );
                }
                variants.push(name);
            }
            _ => {}
        }
    }
    variants
}

/// Derives `serde::Serialize` (the offline stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{\n{arms}}}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

/// Derives `serde::Deserialize` (the offline stand-in trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::Struct(name, fields) => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{\n{reads}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::DeError::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => Err(::serde::DeError::new(\n\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse()
        .expect("derive(Deserialize): generated code failed to parse")
}
