//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small API subset the workspace actually uses —
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — backed by xoshiro256** seeded via SplitMix64.
//! Streams are deterministic per seed but do **not** match upstream
//! `rand`'s `StdRng` output (which this repository never relies on).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Derives a value from one raw 64-bit draw.
    fn from_raw(raw: u64) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_raw(raw: u64) -> $t {
                raw as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn from_raw(raw: u64) -> bool {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_raw(raw: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integers `gen_range` can sample.
pub trait SampleUint: Copy + PartialOrd {
    /// Widening conversion (signed values sign-extend).
    fn to_i128(self) -> i128;
    /// Narrowing conversion; the value is always in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUint for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

fn uniform_below(bound: u64, rng: &mut dyn FnMut() -> u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let raw = rng();
        if raw < zone || zone == 0 {
            return raw % bound;
        }
    }
}

impl<T: SampleUint> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range called with an empty range");
        let span = (hi - lo) as u128;
        if span >= u64::MAX as u128 {
            return T::from_i128(lo + rng() as i128);
        }
        T::from_i128(lo + uniform_below(span as u64, rng) as i128)
    }
}

impl<T: SampleUint> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi - lo) as u128;
        if span >= u64::MAX as u128 {
            return T::from_i128(lo + rng() as i128);
        }
        T::from_i128(lo + uniform_below(span as u64 + 1, rng) as i128)
    }
}

/// The user-facing RNG trait (the `rand::Rng` subset in use here).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Raw entropy source.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; streams differ from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let i: u32 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&i));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_u64_range_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: u64 = rng.gen_range(0..=u64::MAX);
        let _ = v;
    }
}
