//! Umbrella package: examples and integration tests for the SymbFuzz reproduction.
pub use symbfuzz_core as fuzz;
