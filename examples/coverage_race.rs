//! Coverage race (Figure 4a in miniature): all five strategies on the
//! Ibex-like processor benchmark.
//!
//! ```text
//! cargo run --release --example coverage_race [budget]
//! ```

use std::sync::Arc;
use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(15_000);
    let bench = &processor_benchmarks()[0];
    let design = bench.design().expect("benchmark elaborates");
    let props = bench.property_specs();

    println!(
        "coverage race on `{}` — {budget} vectors each\n",
        bench.name
    );
    let mut rows = Vec::new();
    for strategy in Strategy::all() {
        let config = FuzzConfig {
            interval: 100,
            threshold: 2,
            max_vectors: budget,
            seed: 7,
            ..FuzzConfig::default()
        };
        let mut fuzzer = SymbFuzz::new(Arc::clone(&design), strategy, config, &props)
            .expect("properties compile");
        let r = fuzzer.run();
        rows.push((strategy.name(), r));
    }

    println!(
        "{:12} {:>8} {:>8} {:>8} {:>10}",
        "strategy", "nodes", "edges", "points", "solver"
    );
    for (name, r) in &rows {
        println!(
            "{:12} {:>8} {:>8} {:>8} {:>10}",
            name, r.nodes, r.edges, r.coverage_points, r.resources.solver_calls
        );
    }

    // A coarse ASCII rendering of the coverage curves.
    println!(
        "\ncoverage over time (each column ≈ {} vectors):",
        budget / 30
    );
    let max = rows
        .iter()
        .map(|(_, r)| r.coverage_points)
        .max()
        .unwrap_or(1);
    for (name, r) in &rows {
        let mut line = String::new();
        for i in 0..30 {
            let at = budget * (i + 1) / 30;
            let cov = r
                .series
                .iter()
                .take_while(|s| s.vectors <= at)
                .last()
                .map(|s| s.coverage)
                .unwrap_or(0);
            let level = cov * 8 / max.max(1);
            line.push(match level {
                0 => '.',
                1..=2 => ':',
                3..=5 => '+',
                _ => '#',
            });
        }
        println!("{name:12} {line}");
    }
}
