//! Bug hunt over the 14 buggy OpenTitan-style IPs of Table 1.
//!
//! ```text
//! cargo run --release --example soc_bug_hunt [budget-per-ip]
//! ```
//!
//! Runs SymbFuzz on each buggy IP with its paper detection property and
//! prints the bug report `R` of Algorithm 1: property, detection cycle
//! and input vectors consumed.

use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::bug_benchmarks;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    println!("SymbFuzz bug hunt — budget {budget} vectors per IP\n");
    let mut found = 0;
    for bench in bug_benchmarks() {
        let design = bench.design().expect("benchmark elaborates");
        let config = FuzzConfig {
            interval: 100,
            threshold: 2,
            max_vectors: budget,
            seed: 0xB00 + bench.id as u64,
            ..FuzzConfig::default()
        };
        let mut fuzzer =
            SymbFuzz::new(design, Strategy::SymbFuzz, config, &[bench.property_spec()])
                .expect("property compiles");
        let result = fuzzer.run();
        match result.bugs.first() {
            Some(bug) => {
                found += 1;
                println!(
                    "  [{:02}] {:28} {:12} DETECTED at cycle {:6}, vector {:6}",
                    bench.id, bench.submodule, bench.cwe, bug.cycle, bug.vectors
                );
            }
            None => {
                println!(
                    "  [{:02}] {:28} {:12} not detected in {budget} vectors",
                    bench.id, bench.submodule, bench.cwe
                );
            }
        }
    }
    println!("\n{found}/14 bugs detected (the paper reports 14/14 at ~10^6–10^7 vectors)");
}
