//! Bring your own RTL: author a design inline, bind a security
//! property, query the symbolic engine directly, then fuzz.
//!
//! ```text
//! cargo run --example custom_design
//! ```
//!
//! The design is a small peripheral with a write-protect flaw: the
//! LOCK register can be bypassed by a magic address alias. The example
//! shows (1) asking the symbolic engine for an input pattern reaching
//! the locked state, and (2) letting SymbFuzz find the bypass bug.

use std::sync::Arc;
use symbfuzz_core::{FuzzConfig, PropertySpec, Strategy, SymbFuzz};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::elaborate_src;
use symbfuzz_symexec::SymbolicEngine;

const RTL: &str = "
module wp_regfile(
  input clk, input rst_n,
  input we, input [7:0] addr, input [15:0] wdata,
  output logic locked, output logic [15:0] secret);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      locked <= 1'b0;
      secret <= 16'hD00D;
    end else begin
      if (we) begin
        if (addr == 8'h10) locked <= wdata[0];
        // Writes to the secret respect the lock...
        if (addr == 8'h20 && !locked) secret <= wdata;
        // ...except through this forgotten debug alias. BUG!
        if (addr == 8'hDE) secret <= wdata;
      end
    end
  end
endmodule";

fn main() {
    let design = Arc::new(elaborate_src(RTL, "wp_regfile").expect("RTL in subset"));

    // 1. Symbolic execution: how do we set `locked`?
    let engine = SymbolicEngine::new(Arc::clone(&design));
    let locked = design.signal_by_name("locked").unwrap();
    let state: Vec<LogicVec> = design
        .signals
        .iter()
        .map(|s| LogicVec::zeros(s.width))
        .collect();
    let sol = engine
        .solve_step(&state, &[(locked, LogicVec::from_u64(1, 1))])
        .expect("locked state is reachable");
    println!("inputs that lock the regfile in one cycle:");
    for (sig, value) in sol.iter() {
        println!("  {} = {}", design.signal(sig).name, value);
    }

    // 2. Fuzz for the write-protect bypass: once locked, the secret
    //    must stay stable.
    let props = vec![PropertySpec::assertion_only(
        "wp_bypass",
        "$past(locked) && locked |-> $stable(secret)",
    )];
    let config = FuzzConfig {
        interval: 100,
        threshold: 2,
        max_vectors: 50_000,
        ..FuzzConfig::default()
    };
    let mut fuzzer = SymbFuzz::new(Arc::clone(&design), Strategy::SymbFuzz, config, &props)
        .expect("property compiles");
    let result = fuzzer.run();
    match result.bugs.first() {
        Some(bug) => println!(
            "\nwrite-protect bypass found at cycle {}, vector {}",
            bug.cycle, bug.vectors
        ),
        None => println!("\nno violation found in {} vectors", result.vectors),
    }
    println!(
        "coverage: {} nodes, {} edges, {} solver calls",
        result.nodes, result.edges, result.resources.solver_calls
    );
}
