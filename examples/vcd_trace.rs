//! The file-based loop of Algorithm 1: simulate an interval, dump a
//! VCD (`SimFile`), read it back, and map the trace onto the coverage
//! model — exactly the paper's "Dump VCD" / "Coverage ← Read(SimFile)"
//! lines, rather than the in-memory fast path the fuzzer normally uses.
//!
//! ```text
//! cargo run --example vcd_trace
//! ```

use std::sync::Arc;
use symbfuzz_cfgx::{Cfg, Provenance};
use symbfuzz_designs::toy_alu;
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::classify_registers;
use symbfuzz_sim::{read_vcd, Reentry, Simulator, VcdWriter};

fn main() {
    let design = toy_alu();
    let mut sim = Simulator::new(Arc::clone(&design));
    sim.reenter(Reentry::FullReset { cycles: 2 });

    // Simulate one interval, dumping every signal to a VCD buffer.
    let watch: Vec<_> = (0..design.signals.len() as u32)
        .map(symbfuzz_netlist::SignalId)
        .collect();
    let mut buf = Vec::new();
    let mut inputs = Vec::new();
    {
        let mut vcd = VcdWriter::new(&mut buf, &design, &watch).unwrap();
        for t in 0..32u64 {
            let word = LogicVec::from_u64(design.fuzz_width(), t.wrapping_mul(0x9E37_79B9));
            inputs.push(word.clone());
            sim.apply_input_word(&word);
            sim.step();
            vcd.sample(t, sim.values()).unwrap();
        }
    }
    let text = String::from_utf8(buf).unwrap();
    println!("dumped {} bytes of VCD for 32 cycles", text.len());

    // Read the dump back and replay it into the coverage model.
    let trace = read_vcd(&text).expect("own dump parses");
    let ctrl = classify_registers(&design).control;
    let mut cfg = Cfg::new(Arc::clone(&design), ctrl.clone());
    cfg.note_reset();
    for (i, (_, _)) in trace.frames.iter().enumerate() {
        // Rebuild a full value table from the trace frame.
        let mut values: Vec<LogicVec> = design
            .signals
            .iter()
            .map(|s| LogicVec::xes(s.width))
            .collect();
        for (vi, (name, _)) in trace.vars.iter().enumerate() {
            // VCD identifiers flatten hierarchy dots to underscores.
            if let Some(sig) = design.signal_by_name(name) {
                values[sig.index()] = trace.frames[i].1[vi].clone();
            }
        }
        cfg.observe(&values, &inputs[i], i as u64, Provenance::random(i as u64));
    }
    println!(
        "coverage from the VCD: {} nodes, {} edges over control registers {:?}",
        cfg.node_count(),
        cfg.edge_count(),
        ctrl.iter()
            .map(|s| design.signal(*s).name.as_str())
            .collect::<Vec<_>>()
    );
    assert!(cfg.node_count() > 1, "the trace must cover several states");
}
