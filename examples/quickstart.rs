//! Quickstart: fuzz the paper's toy ALU (Listing 1) with SymbFuzz.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full pipeline: elaborate RTL → classify control registers
//! (§4.4.1) → fuzz with coverage feedback → print the covered CFG and
//! the node population predicted by Eqn. 3/4.

use std::sync::Arc;
use symbfuzz_core::{FuzzConfig, PropertySpec, Strategy, SymbFuzz};
use symbfuzz_designs::toy_alu;
use symbfuzz_netlist::{classify_registers, DesignStats};

fn main() {
    let design = toy_alu();
    let stats = DesignStats::of(&design);
    let rc = classify_registers(&design);

    println!("design `{}`:", design.name);
    println!(
        "  signals: {}, registers: {}",
        stats.signals, stats.registers
    );
    println!(
        "  control registers: {:?}",
        rc.control
            .iter()
            .map(|s| design.signal(*s).name.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "  node population (Eqn. 3): {}",
        rc.node_population(&design)
    );

    // A property that holds: INIT mode always outputs zero.
    let props = vec![PropertySpec::assertion_only(
        "init_outputs_zero",
        "state == INIT |-> out == 16'd0",
    )];
    let config = FuzzConfig {
        interval: 64,
        max_vectors: 5_000,
        ..FuzzConfig::default()
    };
    let mut fuzzer = SymbFuzz::new(Arc::clone(&design), Strategy::SymbFuzz, config, &props)
        .expect("property compiles");
    let result = fuzzer.run();

    println!("\nafter {} input vectors:", result.vectors);
    println!("  CFG nodes covered: {}", result.nodes);
    println!("  CFG edges covered: {}", result.edges);
    println!("  coverage points:   {}", result.coverage_points);
    println!(
        "  node coverage:     {:.0}%",
        result.node_coverage_ratio * 100.0
    );
    println!("  property violations: {}", result.bugs.len());
    assert!(result.bugs.is_empty(), "the ALU has no planted bugs");
}
