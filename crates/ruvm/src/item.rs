//! Sequence items and sequencer constraints.

use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{Design, SignalId};

/// One transaction: the flat stimulus word applied to the DUV's
/// fuzzable inputs for one clock cycle (§4.2: "test inputs are packed
/// into bit vectors").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceItem {
    /// The packed stimulus, fuzz-width bits.
    pub word: LogicVec,
}

impl SequenceItem {
    /// Wraps a stimulus word.
    pub fn new(word: LogicVec) -> SequenceItem {
        SequenceItem { word }
    }
}

/// A sequencer constraint, mirroring SystemVerilog `constraint` blocks
/// (Listing 3 of the paper pins `OPmode == 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// Pin an entire input port to a fixed value.
    FixInput {
        /// The input port.
        sig: SignalId,
        /// The pinned value.
        value: LogicVec,
    },
    /// Pin a bit range of the packed stimulus word.
    FixBits {
        /// Low bit of the range within the word.
        lo: u32,
        /// The pinned bits.
        value: LogicVec,
    },
}

impl Constraint {
    /// Pins input port `sig` to `value`.
    pub fn fix_input(sig: SignalId, value: LogicVec) -> Constraint {
        Constraint::FixInput { sig, value }
    }

    /// Pins `value.width()` bits of the stimulus word starting at `lo`.
    pub fn fix_bits(lo: u32, value: LogicVec) -> Constraint {
        Constraint::FixBits { lo, value }
    }

    /// Applies the constraint to a stimulus word for `design`.
    pub fn apply(&self, design: &Design, word: &mut LogicVec) {
        match self {
            Constraint::FixBits { lo, value } => {
                for i in 0..value.width().min(word.width().saturating_sub(*lo)) {
                    word.set_bit(lo + i, value.bit(i));
                }
            }
            Constraint::FixInput { sig, value } => {
                if let Some(lo) = word_offset(design, *sig) {
                    let w = design.signal(*sig).width;
                    let v = value.resized(w);
                    for i in 0..w.min(word.width().saturating_sub(lo)) {
                        word.set_bit(lo + i, v.bit(i));
                    }
                }
            }
        }
    }
}

/// The bit offset of `sig` within the packed stimulus word, matching
/// [`Simulator::apply_input_word`](symbfuzz_sim::Simulator::apply_input_word)
/// packing. `None` if the signal is not a fuzzable input.
pub fn word_offset(design: &Design, sig: SignalId) -> Option<u32> {
    let mut lo = 0u32;
    for s in design.fuzzable_inputs() {
        if s == sig {
            return Some(lo);
        }
        lo += design.signal(s).width;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_netlist::elaborate_src;

    fn design() -> Design {
        elaborate_src(
            "module m(input clk, input rst_n, input [3:0] a, input [7:0] b, output [11:0] y);
               assign y = {b, a};
             endmodule",
            "m",
        )
        .unwrap()
    }

    #[test]
    fn word_offsets_follow_signal_order() {
        let d = design();
        let a = d.signal_by_name("a").unwrap();
        let b = d.signal_by_name("b").unwrap();
        let clk = d.signal_by_name("clk").unwrap();
        // This design is pure comb, so no signal is marked clock/reset
        // and clk/rst_n are fuzzable too, occupying bits 0 and 1.
        assert_eq!(word_offset(&d, clk), Some(0));
        assert_eq!(word_offset(&d, a), Some(2));
        assert_eq!(word_offset(&d, b), Some(6));
    }

    #[test]
    fn fix_bits_overwrites_range() {
        let d = design();
        let mut w = LogicVec::zeros(14);
        Constraint::fix_bits(2, LogicVec::from_u64(4, 0xF)).apply(&d, &mut w);
        assert_eq!(w.to_u64(), Some(0b0011_1100));
    }

    #[test]
    fn fix_input_targets_port_slot() {
        let d = design();
        let b = d.signal_by_name("b").unwrap();
        let lo = word_offset(&d, b).unwrap();
        let mut w = LogicVec::zeros(d.fuzz_width());
        Constraint::fix_input(b, LogicVec::from_u64(8, 0xA5)).apply(&d, &mut w);
        assert_eq!(w.slice(lo, 8).to_u64(), Some(0xA5));
    }

    #[test]
    fn clipped_at_word_boundary() {
        let d = design();
        let mut w = LogicVec::zeros(6);
        // Range partially beyond the word: silently clipped.
        Constraint::fix_bits(4, LogicVec::from_u64(4, 0xF)).apply(&d, &mut w);
        assert_eq!(w.to_u64(), Some(0b11_0000));
    }
}
