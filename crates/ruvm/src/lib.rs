//! A miniature UVM (Universal Verification Methodology) layer in Rust.
//!
//! SymbFuzz's headline engineering claim is that it is "the first
//! hardware fuzzing technique implemented on industry-standard UVM"
//! (§1): the fuzzer does not talk to the simulator directly but through
//! the standard sequencer → driver → DUV → monitor → scoreboard
//! pipeline, and steers exploration purely by installing *constraints*
//! into the sequencer (Fig. 2, blocks 8–11). This crate reproduces that
//! architecture:
//!
//! * [`SequenceItem`] — one transaction: a flat stimulus word that the
//!   driver unpacks onto the DUV's input ports (§4.2);
//! * [`Constraint`] — the `constraint {}` mechanism of Listing 3:
//!   pin an input port or a bit range of the stimulus word, or replay
//!   an exact multi-cycle sequence (checkpoint replay, §4.5, and
//!   SMT-derived input sequences, §4.8);
//! * [`Sequencer`] — constrained-random generation with a replay queue;
//! * [`Driver`] / [`Monitor`] / [`AnalysisPort`] / `Scoreboard`
//!   ([`Subscriber`]) — the classic UVM agent internals;
//! * [`Agent`], [`Env`], [`Phase`], [`run_test`] — component tree and
//!   phase machine (build → connect → run → report).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use symbfuzz_ruvm::{Agent, Constraint, Sequencer};
//! use symbfuzz_sim::{Reentry, Simulator};
//! use symbfuzz_logic::LogicVec;
//!
//! let d = Arc::new(symbfuzz_netlist::elaborate_src(
//!     "module m(input clk, input rst_n, input [7:0] d, output logic [7:0] q);
//!        always_ff @(posedge clk or negedge rst_n)
//!          if (!rst_n) q <= 8'd0; else q <= d;
//!      endmodule", "m")?);
//! let mut sim = Simulator::new(Arc::clone(&d));
//! sim.reenter(Reentry::FullReset { cycles: 2 });
//! let mut agent = Agent::new(Arc::clone(&d), 42);
//! // Pin the whole data port to 0x5A, as a Listing-3-style constraint.
//! let dport = d.signal_by_name("d").unwrap();
//! agent.sequencer_mut().add_constraint(Constraint::fix_input(dport, LogicVec::from_u64(8, 0x5A)));
//! agent.cycle(&mut sim);
//! let q = d.signal_by_name("q").unwrap();
//! assert_eq!(sim.get(q).to_u64(), Some(0x5A));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod components;
mod item;
mod sequencer;

pub use components::{
    run_test, Agent, AnalysisPort, Driver, Env, Monitor, Observation, Phase, Subscriber, UvmTest,
};
pub use item::{Constraint, SequenceItem};
pub use sequencer::Sequencer;
