//! UVM component tree: driver, monitor, analysis port, agent, env,
//! phases and the test runner.

use crate::item::SequenceItem;
use crate::sequencer::Sequencer;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{Design, SignalId};
use symbfuzz_sim::Simulator;

/// UVM phases, executed in order by [`run_test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Construct components.
    Build,
    /// Wire analysis ports.
    Connect,
    /// Drive stimulus.
    Run,
    /// Emit results.
    Report,
}

/// What the monitor captured after one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Simulation cycle at capture time.
    pub cycle: u64,
    /// The stimulus word that was driven this cycle.
    pub stimulus: LogicVec,
    /// Values of the monitor's watched signals, in watch-list order.
    pub values: Vec<LogicVec>,
}

/// A scoreboard-style sink for monitor observations (UVM
/// `uvm_subscriber`). Property checkers and coverage monitors implement
/// this.
pub trait Subscriber {
    /// Receives one observation.
    fn observe(&mut self, design: &Design, watch: &[SignalId], obs: &Observation);
}

/// Broadcasts observations to registered [`Subscriber`]s (UVM
/// `uvm_analysis_port`).
#[derive(Default, Clone)]
pub struct AnalysisPort {
    subscribers: Vec<Rc<RefCell<dyn Subscriber>>>,
}

impl std::fmt::Debug for AnalysisPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnalysisPort({} subscribers)", self.subscribers.len())
    }
}

impl AnalysisPort {
    /// Creates an empty port.
    pub fn new() -> AnalysisPort {
        AnalysisPort::default()
    }

    /// Registers a subscriber.
    pub fn connect(&mut self, s: Rc<RefCell<dyn Subscriber>>) {
        self.subscribers.push(s);
    }

    /// Number of connected subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Whether no subscriber is connected.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Delivers an observation to every subscriber.
    pub fn write(&self, design: &Design, watch: &[SignalId], obs: &Observation) {
        for s in &self.subscribers {
            s.borrow_mut().observe(design, watch, obs);
        }
    }
}

/// Translates sequence items into DUV pin wiggles (UVM driver, §4.2).
#[derive(Debug, Clone, Default)]
pub struct Driver;

impl Driver {
    /// Applies the item's stimulus word to the simulator's fuzzable
    /// inputs and advances one clock cycle.
    pub fn drive(&self, sim: &mut Simulator, item: &SequenceItem) {
        sim.apply_input_word(&item.word);
        sim.step();
    }
}

/// Samples DUV state each cycle and publishes it (UVM monitor).
#[derive(Debug, Clone)]
pub struct Monitor {
    watch: Vec<SignalId>,
    port: AnalysisPort,
}

impl Monitor {
    /// Watches the given signals. An empty list watches every signal.
    pub fn new(design: &Design, watch: Vec<SignalId>) -> Monitor {
        let watch = if watch.is_empty() {
            (0..design.signals.len() as u32).map(SignalId).collect()
        } else {
            watch
        };
        Monitor {
            watch,
            port: AnalysisPort::new(),
        }
    }

    /// The signals this monitor samples.
    pub fn watch_list(&self) -> &[SignalId] {
        &self.watch
    }

    /// The analysis port, for connecting subscribers.
    pub fn port_mut(&mut self) -> &mut AnalysisPort {
        &mut self.port
    }

    /// Samples the simulator and broadcasts the observation.
    pub fn sample(&self, sim: &Simulator, stimulus: &LogicVec) -> Observation {
        let obs = Observation {
            cycle: sim.cycle(),
            stimulus: stimulus.clone(),
            values: self.watch.iter().map(|s| sim.get(*s).clone()).collect(),
        };
        self.port.write(sim.design(), &self.watch, &obs);
        obs
    }
}

/// A UVM agent: sequencer + driver + monitor for one DUV interface.
#[derive(Debug, Clone)]
pub struct Agent {
    design: Arc<Design>,
    sequencer: Sequencer,
    driver: Driver,
    monitor: Monitor,
}

impl Agent {
    /// Builds an agent watching every signal of `design`.
    pub fn new(design: Arc<Design>, seed: u64) -> Agent {
        let monitor = Monitor::new(&design, Vec::new());
        Agent {
            sequencer: Sequencer::new(Arc::clone(&design), seed),
            driver: Driver,
            monitor,
            design,
        }
    }

    /// The sequencer (to install constraints / replay queues).
    pub fn sequencer_mut(&mut self) -> &mut Sequencer {
        &mut self.sequencer
    }

    /// Immutable sequencer access.
    pub fn sequencer(&self) -> &Sequencer {
        &self.sequencer
    }

    /// The monitor (to connect subscribers).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// The design under verification.
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// One transaction: sequence → drive → sample. Returns the
    /// observation.
    pub fn cycle(&mut self, sim: &mut Simulator) -> Observation {
        let item = self.sequencer.next_item();
        self.driver.drive(sim, &item);
        self.monitor.sample(sim, &item.word)
    }
}

/// A UVM environment wrapping one agent (extend with more agents for
/// multi-interface DUVs).
#[derive(Debug, Clone)]
pub struct Env {
    /// The single active agent.
    pub agent: Agent,
}

impl Env {
    /// Builds an environment around one agent.
    pub fn new(agent: Agent) -> Env {
        Env { agent }
    }
}

/// A UVM test: phase hooks around an [`Env`].
pub trait UvmTest {
    /// Build phase: construct the env (and reset the DUV).
    fn build(&mut self, sim: &mut Simulator);
    /// Connect phase: wire subscribers into analysis ports.
    fn connect(&mut self) {}
    /// Run phase: drive transactions; return when done.
    fn run(&mut self, sim: &mut Simulator);
    /// Report phase: produce a summary string.
    fn report(&mut self) -> String {
        String::new()
    }
}

/// Executes a test through all four phases and returns its report.
pub fn run_test<T: UvmTest>(test: &mut T, sim: &mut Simulator) -> String {
    test.build(sim);
    test.connect();
    test.run(sim);
    test.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_netlist::elaborate_src;
    use symbfuzz_sim::Reentry;

    fn setup() -> (Arc<Design>, Simulator) {
        let d = Arc::new(
            elaborate_src(
                "module m(input clk, input rst_n, input [7:0] d, output logic [7:0] q);
                   always_ff @(posedge clk or negedge rst_n)
                     if (!rst_n) q <= 8'd0; else q <= d;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let mut sim = Simulator::new(Arc::clone(&d));
        sim.reenter(Reentry::FullReset { cycles: 2 });
        (d, sim)
    }

    #[derive(Default)]
    struct Collector {
        seen: Vec<Observation>,
    }

    impl Subscriber for Collector {
        fn observe(&mut self, _d: &Design, _w: &[SignalId], obs: &Observation) {
            self.seen.push(obs.clone());
        }
    }

    #[test]
    fn agent_drives_and_monitors() {
        let (d, mut sim) = setup();
        let mut agent = Agent::new(Arc::clone(&d), 3);
        let collector = Rc::new(RefCell::new(Collector::default()));
        agent
            .monitor_mut()
            .port_mut()
            .connect(collector.clone() as Rc<RefCell<dyn Subscriber>>);
        for _ in 0..10 {
            agent.cycle(&mut sim);
        }
        let seen = &collector.borrow().seen;
        assert_eq!(seen.len(), 10);
        // q mirrors the driven stimulus one cycle later: the observed q
        // equals the stimulus of the same observation (driven then stepped).
        let q_idx = d.signal_by_name("q").unwrap();
        let watch = agent.monitor_mut().watch_list().to_vec();
        let qpos = watch.iter().position(|s| *s == q_idx).unwrap();
        for obs in seen {
            assert_eq!(obs.values[qpos].to_u64(), obs.stimulus.to_u64());
        }
    }

    #[test]
    fn observation_cycles_increase() {
        let (d, mut sim) = setup();
        let mut agent = Agent::new(d, 3);
        let a = agent.cycle(&mut sim);
        let b = agent.cycle(&mut sim);
        assert!(b.cycle > a.cycle);
    }

    struct SmokeTest {
        cycles: u32,
        driven: u64,
        agent: Option<Agent>,
        design: Arc<Design>,
    }

    impl UvmTest for SmokeTest {
        fn build(&mut self, sim: &mut Simulator) {
            sim.reenter(Reentry::FullReset { cycles: 2 });
            self.agent = Some(Agent::new(Arc::clone(&self.design), 11));
        }
        fn run(&mut self, sim: &mut Simulator) {
            let agent = self.agent.as_mut().unwrap();
            for _ in 0..self.cycles {
                agent.cycle(sim);
                self.driven += 1;
            }
        }
        fn report(&mut self) -> String {
            format!("drove {} items", self.driven)
        }
    }

    #[test]
    fn phase_runner_executes_in_order() {
        let (d, mut sim) = setup();
        let mut t = SmokeTest {
            cycles: 5,
            driven: 0,
            agent: None,
            design: d,
        };
        let report = run_test(&mut t, &mut sim);
        assert_eq!(report, "drove 5 items");
        assert_eq!(t.agent.unwrap().sequencer().generated(), 5);
    }
}
