//! The UVM sequencer: constrained-random stimulus with replay.

use crate::item::{Constraint, SequenceItem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;
use symbfuzz_logic::{Bit, LogicVec};
use symbfuzz_netlist::Design;

/// Generates [`SequenceItem`]s for the driver.
///
/// Priority order per cycle:
/// 1. a queued replay item (checkpoint re-entry sequences, §4.5, or
///    SMT-solved input sequences, §4.8);
/// 2. a fresh random word with every active [`Constraint`] applied —
///    UVM's constrained randomization (§4.7).
#[derive(Debug, Clone)]
pub struct Sequencer {
    design: Arc<Design>,
    rng: StdRng,
    constraints: Vec<Constraint>,
    replay: VecDeque<SequenceItem>,
    generated: u64,
}

impl Sequencer {
    /// Creates a sequencer with a deterministic RNG seed.
    pub fn new(design: Arc<Design>, seed: u64) -> Sequencer {
        Sequencer {
            design,
            rng: StdRng::seed_from_u64(seed),
            constraints: Vec::new(),
            replay: VecDeque::new(),
            generated: 0,
        }
    }

    /// Number of items handed out so far (the paper's "input vectors"
    /// x-axis).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Installs a constraint; it applies to every random item until
    /// [`clear_constraints`](Self::clear_constraints).
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Removes all constraints.
    pub fn clear_constraints(&mut self) {
        self.constraints.clear();
    }

    /// Active constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Queues exact items to be replayed before random generation
    /// resumes (front of the queue plays first).
    pub fn push_replay(&mut self, items: impl IntoIterator<Item = SequenceItem>) {
        self.replay.extend(items);
    }

    /// Number of queued replay items.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Drops any queued replay items.
    pub fn clear_replay(&mut self) {
        self.replay.clear();
    }

    /// Produces the next item.
    pub fn next_item(&mut self) -> SequenceItem {
        self.generated += 1;
        if let Some(item) = self.replay.pop_front() {
            return item;
        }
        let width = self.design.fuzz_width().max(1);
        let mut word = LogicVec::zeros(width);
        for i in 0..width {
            word.set_bit(i, Bit::from_bool(self.rng.gen::<bool>()));
        }
        for c in &self.constraints {
            c.apply(&self.design, &mut word);
        }
        SequenceItem::new(word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::word_offset;
    use symbfuzz_netlist::elaborate_src;

    fn design() -> Arc<Design> {
        Arc::new(
            elaborate_src(
                "module m(input clk, input rst_n, input [7:0] a, input [7:0] b, output o);
                   logic r;
                   always_ff @(posedge clk or negedge rst_n)
                     if (!rst_n) r <= 1'b0; else r <= a == b;
                   assign o = r;
                 endmodule",
                "m",
            )
            .unwrap(),
        )
    }

    #[test]
    fn deterministic_given_seed() {
        let d = design();
        let mut s1 = Sequencer::new(Arc::clone(&d), 7);
        let mut s2 = Sequencer::new(Arc::clone(&d), 7);
        for _ in 0..20 {
            assert_eq!(s1.next_item(), s2.next_item());
        }
        let mut s3 = Sequencer::new(d, 8);
        let same = (0..20).all(|_| s1.next_item() == s3.next_item());
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn constraints_pin_bits_in_every_item() {
        let d = design();
        let a = d.signal_by_name("a").unwrap();
        let lo = word_offset(&d, a).unwrap();
        let mut s = Sequencer::new(Arc::clone(&d), 1);
        s.add_constraint(Constraint::fix_input(a, LogicVec::from_u64(8, 0x3C)));
        for _ in 0..50 {
            let item = s.next_item();
            assert_eq!(item.word.slice(lo, 8).to_u64(), Some(0x3C));
        }
        s.clear_constraints();
        let varied = (0..50).any(|_| s.next_item().word.slice(lo, 8).to_u64() != Some(0x3C));
        assert!(varied);
    }

    #[test]
    fn replay_takes_priority_and_counts() {
        let d = design();
        let mut s = Sequencer::new(Arc::clone(&d), 1);
        let w = d.fuzz_width();
        s.push_replay(vec![
            SequenceItem::new(LogicVec::from_u64(w, 1)),
            SequenceItem::new(LogicVec::from_u64(w, 2)),
        ]);
        assert_eq!(s.replay_len(), 2);
        assert_eq!(s.next_item().word.to_u64(), Some(1));
        assert_eq!(s.next_item().word.to_u64(), Some(2));
        assert_eq!(s.replay_len(), 0);
        assert_eq!(s.generated(), 2);
        let _ = s.next_item(); // back to random
        assert_eq!(s.generated(), 3);
    }

    #[test]
    fn random_items_have_fuzz_width_and_no_x() {
        let d = design();
        let mut s = Sequencer::new(Arc::clone(&d), 99);
        let item = s.next_item();
        assert_eq!(item.word.width(), d.fuzz_width());
        assert!(!item.word.has_unknown());
    }
}
