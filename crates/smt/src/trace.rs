//! Opt-in CDCL introspection: per-search learning/restart analytics.
//!
//! A [`SolveTrace`] rides inside [`SatSolver`](crate::SatSolver) behind
//! an `Option<Box<_>>`, so the untraced hot path pays one pointer-null
//! test per conflict and nothing else. Traces accumulate across
//! [`solve_budgeted`](crate::SatSolver::solve_budgeted) calls until
//! taken, which is how the symbolic engine charges a whole depth
//! schedule (several solver calls) to one goal.

/// Number of buckets in the log₄ histograms ([`trace_bucket`]).
/// Matches the telemetry collector's latency histograms so the same
/// quantile helpers apply.
pub const TRACE_HIST_BUCKETS: usize = 12;

/// Cap on the restart timeline kept per trace; restarts beyond it are
/// still counted but not timestamped.
pub const RESTART_TIMELINE_CAP: usize = 64;

/// Log₄ bucket index for a count `n` (0 → bucket 0, 1..=3 → 1,
/// 4..=15 → 2, …), saturating at [`TRACE_HIST_BUCKETS`] − 1.
pub fn trace_bucket(n: u64) -> usize {
    if n == 0 {
        return 0;
    }
    let log2 = 63 - n.leading_zeros() as usize;
    (log2 / 2 + 1).min(TRACE_HIST_BUCKETS - 1)
}

/// Quantile estimate over a log₄ histogram: returns the upper bound of
/// the bucket containing quantile `q` (0.0..=1.0) of the mass, i.e.
/// `4^(bucket)` − 1 scaled. Mirrors the telemetry collector's
/// histogram convention so the bench layer can reuse one helper.
pub fn trace_hist_quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * q).ceil() as u64;
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= target {
            // Upper edge of bucket i: 0 for bucket 0, else 4^i - 1.
            return if i == 0 {
                0
            } else {
                (1u64 << (2 * i)).saturating_sub(1)
            };
        }
    }
    (1u64 << (2 * (buckets.len() - 1))).saturating_sub(1)
}

/// Analytics of one (or several accumulated) CDCL searches.
///
/// All fields are pure functions of the clause database and the
/// decision sequence, so traces are byte-identical across runs and
/// `--jobs` values (no wall-clock anywhere).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveTrace {
    /// Learned clauses recorded (unit learnts included).
    pub learned: u64,
    /// Log₄ histogram of learned-clause sizes (literal counts).
    pub learned_size_hist: [u64; TRACE_HIST_BUCKETS],
    /// Log₄ histogram of learned-clause LBD (distinct decision levels).
    pub lbd_hist: [u64; TRACE_HIST_BUCKETS],
    /// Restarts performed.
    pub restarts: u64,
    /// Conflict count at each restart, in order (first
    /// [`RESTART_TIMELINE_CAP`] only) — the learning-curve x-axis.
    pub restart_timeline: Vec<u64>,
    /// Conflicts observed while tracing.
    pub conflicts: u64,
    /// Sum of decision levels at conflict sites (mean depth =
    /// `conflict_depth_sum / conflicts`).
    pub conflict_depth_sum: u64,
    /// Deepest decision level at a conflict site.
    pub conflict_depth_max: u32,
    /// Top-K VSIDS-hot variables `(var, activity_permille)` at the
    /// moment the trace was taken, hottest first. Activity is scaled
    /// to 0..=1000 of the hottest variable so the figures survive the
    /// solver's internal rescaling.
    pub hot_vars: Vec<(u32, u64)>,
}

impl SolveTrace {
    /// Records one learned clause (its size and LBD) at a conflict
    /// whose decision level was `depth`.
    pub fn note_learned(&mut self, size: usize, lbd: u32, depth: u32) {
        self.learned += 1;
        self.learned_size_hist[trace_bucket(size as u64)] += 1;
        self.lbd_hist[trace_bucket(lbd as u64)] += 1;
        self.conflicts += 1;
        self.conflict_depth_sum += depth as u64;
        self.conflict_depth_max = self.conflict_depth_max.max(depth);
    }

    /// Records a restart at cumulative conflict count `conflicts`.
    pub fn note_restart(&mut self, conflicts: u64) {
        self.restarts += 1;
        if self.restart_timeline.len() < RESTART_TIMELINE_CAP {
            self.restart_timeline.push(conflicts);
        }
    }

    /// Folds `other` into `self` (histograms add, timelines concat up
    /// to the cap, maxima take the max). Used to accumulate the several
    /// solver calls of one goal's depth schedule.
    pub fn merge(&mut self, other: &SolveTrace) {
        self.learned += other.learned;
        for (a, b) in self
            .learned_size_hist
            .iter_mut()
            .zip(&other.learned_size_hist)
        {
            *a += b;
        }
        for (a, b) in self.lbd_hist.iter_mut().zip(&other.lbd_hist) {
            *a += b;
        }
        self.restarts += other.restarts;
        for &t in &other.restart_timeline {
            if self.restart_timeline.len() >= RESTART_TIMELINE_CAP {
                break;
            }
            self.restart_timeline.push(t);
        }
        self.conflicts += other.conflicts;
        self.conflict_depth_sum += other.conflict_depth_sum;
        self.conflict_depth_max = self.conflict_depth_max.max(other.conflict_depth_max);
        if !other.hot_vars.is_empty() {
            self.hot_vars = other.hot_vars.clone();
        }
    }

    /// Mean decision level at conflict sites (0 when no conflicts).
    pub fn mean_conflict_depth(&self) -> u64 {
        self.conflict_depth_sum
            .checked_div(self.conflicts)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log4() {
        assert_eq!(trace_bucket(0), 0);
        assert_eq!(trace_bucket(1), 1);
        assert_eq!(trace_bucket(3), 1);
        assert_eq!(trace_bucket(4), 2);
        assert_eq!(trace_bucket(15), 2);
        assert_eq!(trace_bucket(16), 3);
        assert_eq!(trace_bucket(u64::MAX), TRACE_HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut h = [0u64; TRACE_HIST_BUCKETS];
        h[1] = 50; // values 1..=3
        h[3] = 50; // values 16..=63
        assert_eq!(trace_hist_quantile(&h, 0.25), 3);
        assert_eq!(trace_hist_quantile(&h, 0.99), 63);
        assert_eq!(trace_hist_quantile(&[0; TRACE_HIST_BUCKETS], 0.5), 0);
    }

    #[test]
    fn learned_notes_accumulate_and_merge() {
        let mut a = SolveTrace::default();
        a.note_learned(3, 2, 5);
        a.note_learned(20, 4, 9);
        a.note_restart(2);
        assert_eq!(a.learned, 2);
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.conflict_depth_max, 9);
        assert_eq!(a.mean_conflict_depth(), 7);
        assert_eq!(a.restart_timeline, vec![2]);

        let mut b = SolveTrace::default();
        b.note_learned(1, 1, 2);
        b.note_restart(10);
        b.merge(&a);
        assert_eq!(b.learned, 3);
        assert_eq!(b.restarts, 2);
        assert_eq!(b.restart_timeline, vec![10, 2]);
        assert_eq!(b.conflict_depth_max, 9);
    }

    #[test]
    fn restart_timeline_is_capped_but_counted() {
        let mut t = SolveTrace::default();
        for i in 0..(RESTART_TIMELINE_CAP as u64 + 10) {
            t.note_restart(i);
        }
        assert_eq!(t.restarts, RESTART_TIMELINE_CAP as u64 + 10);
        assert_eq!(t.restart_timeline.len(), RESTART_TIMELINE_CAP);
    }
}
