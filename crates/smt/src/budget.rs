//! Resource budgets for SAT solving and symbolic unrolling.
//!
//! A [`Budget`] bounds how much work a query may spend before giving
//! up with an `Unknown` verdict. The ceilings fall in two groups:
//!
//! * **Deterministic counters** — conflicts, decisions and
//!   propagations for the CDCL core; term nodes and unroll depth for
//!   the symbolic engine. These are pure functions of the search, so
//!   budgeted campaigns stay byte-identical at any `--jobs` value.
//! * **Wall clock** — an opt-in deadline against a telemetry
//!   [`Clock`]. This is the only non-deterministic ceiling and is
//!   reserved for operator-facing runs (`--solve-wall-ms`).
//!
//! [`BudgetSpent`] is the matching receipt: how much each counter
//! advanced during the attempt, carried inside `Unknown` results so
//! callers can report and escalate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use symbfuzz_telemetry::{Clock, UnknownReason};

/// How much work a budgeted attempt consumed.
///
/// Returned inside `Unknown { spent, .. }` results and accumulated
/// across the symbolic engine's depth schedule, so one reachability
/// query shares a single budget regardless of how many exact-depth
/// solves it issues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpent {
    /// CDCL conflicts consumed.
    pub conflicts: u64,
    /// CDCL decisions consumed.
    pub decisions: u64,
    /// Unit propagations consumed.
    pub propagations: u64,
}

impl BudgetSpent {
    /// Component-wise sum (saturating).
    #[must_use]
    pub fn saturating_add(self, other: BudgetSpent) -> BudgetSpent {
        BudgetSpent {
            conflicts: self.conflicts.saturating_add(other.conflicts),
            decisions: self.decisions.saturating_add(other.decisions),
            propagations: self.propagations.saturating_add(other.propagations),
        }
    }
}

/// Resource ceilings for one solve or reachability attempt.
///
/// All ceilings are optional; [`Budget::unlimited`] (also the
/// `Default`) never interrupts a search, so unbudgeted call sites
/// keep their exact pre-budget behaviour.
///
/// # Examples
///
/// ```
/// use symbfuzz_smt::Budget;
///
/// let b = Budget::unlimited().with_conflicts(10_000).with_unroll_depth(8);
/// assert_eq!(b.conflicts(), Some(10_000));
/// assert!(!b.is_unlimited());
/// ```
#[derive(Clone, Default)]
pub struct Budget {
    conflicts: Option<u64>,
    decisions: Option<u64>,
    propagations: Option<u64>,
    term_nodes: Option<usize>,
    unroll_depth: Option<u32>,
    wall: Option<(Arc<dyn Clock>, u64)>,
    abort: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("conflicts", &self.conflicts)
            .field("decisions", &self.decisions)
            .field("propagations", &self.propagations)
            .field("term_nodes", &self.term_nodes)
            .field("unroll_depth", &self.unroll_depth)
            .field("wall_deadline", &self.wall.as_ref().map(|(_, d)| *d))
            .field("abort", &self.abort.is_some())
            .finish()
    }
}

impl Budget {
    /// A budget with no ceilings: never interrupts a search.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps CDCL conflicts.
    #[must_use]
    pub fn with_conflicts(mut self, n: u64) -> Budget {
        self.conflicts = Some(n);
        self
    }

    /// Caps CDCL decisions.
    #[must_use]
    pub fn with_decisions(mut self, n: u64) -> Budget {
        self.decisions = Some(n);
        self
    }

    /// Caps unit propagations.
    #[must_use]
    pub fn with_propagations(mut self, n: u64) -> Budget {
        self.propagations = Some(n);
        self
    }

    /// Caps the working term-pool size during symbolic unrolling.
    #[must_use]
    pub fn with_term_nodes(mut self, n: usize) -> Budget {
        self.term_nodes = Some(n);
        self
    }

    /// Caps the unroll depth of reachability queries.
    #[must_use]
    pub fn with_unroll_depth(mut self, n: u32) -> Budget {
        self.unroll_depth = Some(n);
        self
    }

    /// Sets a wall-clock deadline (clock units, usually microseconds).
    ///
    /// The only non-deterministic ceiling: checks read `clock` during
    /// the search, so results can differ run to run. Opt-in only.
    #[must_use]
    pub fn with_wall_deadline(mut self, clock: Arc<dyn Clock>, deadline: u64) -> Budget {
        self.wall = Some((clock, deadline));
        self
    }

    /// Attaches a cooperative abort flag: once another thread stores
    /// `true`, the next budget check stops the search with
    /// [`UnknownReason::Aborted`]. Used by the portfolio racer to
    /// cancel losing profiles; aborted results must be discarded (not
    /// reported) to preserve determinism.
    #[must_use]
    pub fn with_abort(mut self, flag: Arc<AtomicBool>) -> Budget {
        self.abort = Some(flag);
        self
    }

    /// The conflict ceiling, if any.
    pub fn conflicts(&self) -> Option<u64> {
        self.conflicts
    }

    /// The decision ceiling, if any.
    pub fn decisions(&self) -> Option<u64> {
        self.decisions
    }

    /// The propagation ceiling, if any.
    pub fn propagations(&self) -> Option<u64> {
        self.propagations
    }

    /// The term-node ceiling, if any.
    pub fn term_nodes(&self) -> Option<usize> {
        self.term_nodes
    }

    /// The unroll-depth ceiling, if any.
    pub fn unroll_depth(&self) -> Option<u32> {
        self.unroll_depth
    }

    /// `true` when no ceiling is set.
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none()
            && self.decisions.is_none()
            && self.propagations.is_none()
            && self.term_nodes.is_none()
            && self.unroll_depth.is_none()
            && self.wall.is_none()
            && self.abort.is_none()
    }

    /// Multiplies every counter ceiling by `factor` (saturating). The
    /// wall deadline and structural ceilings (term nodes, unroll
    /// depth) are left unchanged — escalation buys more search, not a
    /// bigger formula.
    #[must_use]
    pub fn escalate(mut self, factor: u64) -> Budget {
        self.conflicts = self.conflicts.map(|n| n.saturating_mul(factor));
        self.decisions = self.decisions.map(|n| n.saturating_mul(factor));
        self.propagations = self.propagations.map(|n| n.saturating_mul(factor));
        self
    }

    /// The budget left after `spent` has been consumed. Counter
    /// ceilings shrink (saturating at zero); structural ceilings and
    /// the wall deadline are absolute and carry over unchanged.
    #[must_use]
    pub fn remaining_after(&self, spent: BudgetSpent) -> Budget {
        Budget {
            conflicts: self.conflicts.map(|n| n.saturating_sub(spent.conflicts)),
            decisions: self.decisions.map(|n| n.saturating_sub(spent.decisions)),
            propagations: self
                .propagations
                .map(|n| n.saturating_sub(spent.propagations)),
            term_nodes: self.term_nodes,
            unroll_depth: self.unroll_depth,
            wall: self.wall.clone(),
            abort: self.abort.clone(),
        }
    }

    /// Checks the counter and wall ceilings against `spent`, in a
    /// fixed priority (conflicts, decisions, propagations, wall,
    /// abort) so the reported reason is deterministic. The abort flag
    /// is checked last: when a deterministic ceiling and a racing
    /// abort trip together, the deterministic reason wins.
    pub fn check(&self, spent: BudgetSpent) -> Option<UnknownReason> {
        if self.conflicts.is_some_and(|cap| spent.conflicts >= cap) {
            return Some(UnknownReason::Conflicts);
        }
        if self.decisions.is_some_and(|cap| spent.decisions >= cap) {
            return Some(UnknownReason::Decisions);
        }
        if self
            .propagations
            .is_some_and(|cap| spent.propagations >= cap)
        {
            return Some(UnknownReason::Propagations);
        }
        if let Some((clock, deadline)) = &self.wall {
            if clock.now_micros() >= *deadline {
                return Some(UnknownReason::WallClock);
            }
        }
        if let Some(flag) = &self.abort {
            if flag.load(Ordering::Relaxed) {
                return Some(UnknownReason::Aborted);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_telemetry::ManualClock;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let spent = BudgetSpent {
            conflicts: u64::MAX,
            decisions: u64::MAX,
            propagations: u64::MAX,
        };
        assert_eq!(b.check(spent), None);
    }

    #[test]
    fn check_priority_is_fixed() {
        let b = Budget::unlimited()
            .with_conflicts(1)
            .with_decisions(1)
            .with_propagations(1);
        let spent = BudgetSpent {
            conflicts: 1,
            decisions: 1,
            propagations: 1,
        };
        assert_eq!(b.check(spent), Some(UnknownReason::Conflicts));
        let b = Budget::unlimited().with_decisions(1).with_propagations(1);
        assert_eq!(b.check(spent), Some(UnknownReason::Decisions));
        let b = Budget::unlimited().with_propagations(1);
        assert_eq!(b.check(spent), Some(UnknownReason::Propagations));
    }

    #[test]
    fn wall_deadline_uses_the_clock() {
        let clock = Arc::new(ManualClock::new());
        clock.set(100);
        let b = Budget::unlimited().with_wall_deadline(clock.clone(), 200);
        assert_eq!(b.check(BudgetSpent::default()), None);
        clock.set(200);
        assert_eq!(
            b.check(BudgetSpent::default()),
            Some(UnknownReason::WallClock)
        );
    }

    #[test]
    fn escalation_scales_counters_only() {
        let b = Budget::unlimited()
            .with_conflicts(10)
            .with_term_nodes(5)
            .with_unroll_depth(2)
            .escalate(4);
        assert_eq!(b.conflicts(), Some(40));
        assert_eq!(b.term_nodes(), Some(5));
        assert_eq!(b.unroll_depth(), Some(2));
        assert_eq!(
            Budget::unlimited()
                .with_conflicts(u64::MAX)
                .escalate(2)
                .conflicts(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn abort_flag_trips_check_and_is_lowest_priority() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_abort(flag.clone());
        assert!(!b.is_unlimited());
        assert_eq!(b.check(BudgetSpent::default()), None);
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            b.check(BudgetSpent::default()),
            Some(UnknownReason::Aborted)
        );
        // Deterministic ceilings take priority over a racing abort.
        let b = b.with_conflicts(1);
        let spent = BudgetSpent {
            conflicts: 1,
            decisions: 0,
            propagations: 0,
        };
        assert_eq!(b.check(spent), Some(UnknownReason::Conflicts));
    }

    #[test]
    fn remaining_carries_the_abort_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited()
            .with_conflicts(10)
            .with_abort(flag.clone());
        let rem = b.remaining_after(BudgetSpent {
            conflicts: 4,
            decisions: 0,
            propagations: 0,
        });
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            rem.check(BudgetSpent::default()),
            Some(UnknownReason::Aborted)
        );
    }

    #[test]
    fn remaining_subtracts_saturating() {
        let b = Budget::unlimited().with_conflicts(10).with_decisions(3);
        let rem = b.remaining_after(BudgetSpent {
            conflicts: 4,
            decisions: 7,
            propagations: 0,
        });
        assert_eq!(rem.conflicts(), Some(6));
        assert_eq!(rem.decisions(), Some(0));
        // An exhausted remaining budget trips immediately.
        assert_eq!(
            rem.check(BudgetSpent::default()),
            Some(UnknownReason::Decisions)
        );
    }
}
