//! Tseitin bit-blasting of QF_BV terms into CNF.

use crate::sat::{Lit, SatSolver};
use crate::term::{TermId, TermKind, TermPool};
use std::collections::HashMap;
use symbfuzz_logic::Bit;

/// A CNF formula under construction (kept for introspection/tests).
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// Number of clauses emitted.
    pub num_clauses: usize,
}

/// Lowers terms to clauses inside an embedded [`SatSolver`].
///
/// Every term maps to one [`Lit`] per bit (LSB first). Gate outputs get
/// fresh variables constrained by Tseitin clauses; adders are ripple
/// carry, multipliers shift-and-add, comparisons MSB-first equality
/// chains.
#[derive(Debug, Clone)]
pub struct BitBlaster {
    solver: SatSolver,
    map: HashMap<TermId, Vec<Lit>>,
    tru: Lit,
    stats: Cnf,
}

impl Default for BitBlaster {
    fn default() -> Self {
        Self::new()
    }
}

impl BitBlaster {
    /// Creates a blaster with an empty solver and the constant-true
    /// variable pinned.
    pub fn new() -> BitBlaster {
        let mut solver = SatSolver::new();
        let v = solver.new_var();
        let tru = Lit::new(v, true);
        solver.add_clause(&[tru]);
        BitBlaster {
            solver,
            map: HashMap::new(),
            tru,
            stats: Cnf {
                num_vars: 1,
                num_clauses: 1,
            },
        }
    }

    /// CNF size statistics.
    pub fn stats(&self) -> &Cnf {
        &self.stats
    }

    /// The embedded solver (e.g. to call
    /// [`solve`](crate::SatSolver::solve) after asserting).
    pub fn solver_mut(&mut self) -> &mut SatSolver {
        &mut self.solver
    }

    /// Immutable access to the embedded solver.
    pub fn solver(&self) -> &SatSolver {
        &self.solver
    }

    /// Deterministic estimate of this blaster's memory footprint in
    /// bytes, used by the frame cache's byte-budget eviction. Counts
    /// CNF variables and clauses at fixed per-item costs plus the
    /// term→literal map, so the figure is a pure function of what was
    /// blasted — identical across runs and `--jobs` values.
    pub fn approx_bytes(&self) -> u64 {
        const PER_VAR: u64 = 40; // assign/phase/level/reason/activity/watch slots
        const PER_CLAUSE: u64 = 48; // Vec header + avg literal payload + watch entries
        const PER_MAP_ENTRY: u64 = 48; // HashMap slot + Vec header
        let map_lits: u64 = self.map.values().map(|v| v.len() as u64 * 4).sum();
        self.stats.num_vars as u64 * PER_VAR
            + self.stats.num_clauses as u64 * PER_CLAUSE
            + self.map.len() as u64 * PER_MAP_ENTRY
            + map_lits
    }

    fn fresh(&mut self) -> Lit {
        let v = self.solver.new_var();
        self.stats.num_vars += 1;
        Lit::new(v, true)
    }

    fn clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
        self.stats.num_clauses += 1;
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.tru
        } else {
            self.tru.negated()
        }
    }

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b;
        }
        if b == self.tru {
            return a;
        }
        if a == self.tru.negated() || b == self.tru.negated() {
            return self.tru.negated();
        }
        if a == b {
            return a;
        }
        if a == b.negated() {
            return self.tru.negated();
        }
        let c = self.fresh();
        self.clause(&[c.negated(), a]);
        self.clause(&[c.negated(), b]);
        self.clause(&[a.negated(), b.negated(), c]);
        c
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negated(), b.negated()).negated()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.tru {
            return b.negated();
        }
        if a == self.tru.negated() {
            return b;
        }
        if b == self.tru {
            return a.negated();
        }
        if b == self.tru.negated() {
            return a;
        }
        if a == b {
            return self.tru.negated();
        }
        if a == b.negated() {
            return self.tru;
        }
        let c = self.fresh();
        self.clause(&[a.negated(), b.negated(), c.negated()]);
        self.clause(&[a, b, c.negated()]);
        self.clause(&[a, b.negated(), c]);
        self.clause(&[a.negated(), b, c]);
        c
    }

    fn mux_gate(&mut self, sel: Lit, then: Lit, els: Lit) -> Lit {
        let t = self.and_gate(sel, then);
        let e = self.and_gate(sel.negated(), els);
        self.or_gate(t, e)
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let sum = self.xor_gate(axb, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(axb, cin);
        let cout = self.or_gate(c1, c2);
        (sum, cout)
    }

    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    /// Bit-blasts `t` and returns one literal per bit, LSB first.
    pub fn lits(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        if let Some(ls) = self.map.get(&t) {
            return ls.clone();
        }
        let out: Vec<Lit> = match pool.kind(t).clone() {
            TermKind::Const(v) => v
                .iter_bits()
                .map(|b| self.const_lit(b == Bit::One))
                .collect(),
            TermKind::Var(_, w) => (0..w).map(|_| self.fresh()).collect(),
            TermKind::Not(a) => self.lits(pool, a).iter().map(|l| l.negated()).collect(),
            TermKind::And(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                la.iter()
                    .zip(&lb)
                    .map(|(&x, &y)| self.and_gate(x, y))
                    .collect()
            }
            TermKind::Or(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                la.iter()
                    .zip(&lb)
                    .map(|(&x, &y)| self.or_gate(x, y))
                    .collect()
            }
            TermKind::Xor(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                la.iter()
                    .zip(&lb)
                    .map(|(&x, &y)| self.xor_gate(x, y))
                    .collect()
            }
            TermKind::Add(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                let f = self.const_lit(false);
                self.adder(&la, &lb, f)
            }
            TermKind::Sub(a, b) => {
                let la = self.lits(pool, a);
                let lb: Vec<Lit> = self.lits(pool, b).iter().map(|l| l.negated()).collect();
                let t1 = self.const_lit(true);
                self.adder(&la, &lb, t1)
            }
            TermKind::Mul(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                let w = la.len();
                let mut acc: Vec<Lit> = vec![self.const_lit(false); w];
                for (i, &bi) in lb.iter().enumerate() {
                    // addend = (a << i) gated by b_i
                    let mut addend = vec![self.const_lit(false); w];
                    for j in 0..w.saturating_sub(i) {
                        addend[j + i] = self.and_gate(la[j], bi);
                    }
                    let f = self.const_lit(false);
                    acc = self.adder(&acc, &addend, f);
                }
                acc
            }
            TermKind::Eq(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                let mut acc = self.const_lit(true);
                for (&x, &y) in la.iter().zip(&lb) {
                    let same = self.xor_gate(x, y).negated();
                    acc = self.and_gate(acc, same);
                }
                vec![acc]
            }
            TermKind::Ult(a, b) => {
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                // MSB-first: lt = (¬a_i ∧ b_i) ∨ (a_i ≡ b_i) ∧ lt_below
                let mut lt = self.const_lit(false);
                for (&x, &y) in la.iter().zip(&lb) {
                    // iterating LSB→MSB and folding keeps the same
                    // recurrence with the MSB applied last
                    let strictly = self.and_gate(x.negated(), y);
                    let same = self.xor_gate(x, y).negated();
                    let keep = self.and_gate(same, lt);
                    lt = self.or_gate(strictly, keep);
                }
                vec![lt]
            }
            TermKind::Ite(c, a, b) => {
                let lc = self.lits(pool, c)[0];
                let (la, lb) = (self.lits(pool, a), self.lits(pool, b));
                la.iter()
                    .zip(&lb)
                    .map(|(&x, &y)| self.mux_gate(lc, x, y))
                    .collect()
            }
            TermKind::Extract { arg, lo, width } => {
                let la = self.lits(pool, arg);
                la[lo as usize..(lo + width) as usize].to_vec()
            }
            TermKind::ConcatPair(hi, lo) => {
                let mut out = self.lits(pool, lo);
                out.extend(self.lits(pool, hi));
                out
            }
            TermKind::ShlConst(a, n) => {
                let la = self.lits(pool, a);
                let w = la.len();
                let mut out = vec![self.const_lit(false); w];
                for i in 0..w.saturating_sub(n as usize) {
                    out[i + n as usize] = la[i];
                }
                out
            }
            TermKind::LshrConst(a, n) => {
                let la = self.lits(pool, a);
                let w = la.len();
                let mut out = vec![self.const_lit(false); w];
                for i in n as usize..w {
                    out[i - n as usize] = la[i];
                }
                out
            }
            TermKind::RedAnd(a) => {
                let la = self.lits(pool, a);
                let mut acc = self.const_lit(true);
                for &x in &la {
                    acc = self.and_gate(acc, x);
                }
                vec![acc]
            }
            TermKind::RedOr(a) => {
                let la = self.lits(pool, a);
                let mut acc = self.const_lit(false);
                for &x in &la {
                    acc = self.or_gate(acc, x);
                }
                vec![acc]
            }
            TermKind::RedXor(a) => {
                let la = self.lits(pool, a);
                let mut acc = self.const_lit(false);
                for &x in &la {
                    acc = self.xor_gate(acc, x);
                }
                vec![acc]
            }
        };
        debug_assert_eq!(out.len() as u32, pool.width(t));
        self.map.insert(t, out.clone());
        out
    }

    /// Asserts that a 1-bit term is true.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not one bit wide.
    pub fn assert_true(&mut self, pool: &TermPool, t: TermId) {
        assert_eq!(pool.width(t), 1, "assertions must be one bit wide");
        let l = self.lits(pool, t)[0];
        self.clause(&[l]);
    }

    /// The literal vector previously produced for `t`, if blasted.
    pub fn lits_of(&self, t: TermId) -> Option<&[Lit]> {
        self.map.get(&t).map(|v| v.as_slice())
    }

    /// Attributes SAT variables back to the blasted terms whose bit
    /// vectors contain them, as `(var, term, bit_index)`. When several
    /// terms share a literal (gate/extract sharing), the smallest
    /// [`TermId`] wins, so attribution is deterministic. Introspection
    /// path only — builds a reverse index over the whole blast map.
    pub fn attribute_vars(&self, vars: &[u32]) -> Vec<(u32, TermId, u32)> {
        let mut reverse: HashMap<u32, (TermId, u32)> = HashMap::new();
        for (&t, lits) in &self.map {
            for (i, l) in lits.iter().enumerate() {
                let slot = reverse.entry(l.var()).or_insert((t, i as u32));
                if t < slot.0 {
                    *slot = (t, i as u32);
                }
            }
        }
        vars.iter()
            .filter_map(|&v| reverse.get(&v).map(|&(t, i)| (v, t, i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;
    use symbfuzz_logic::LogicVec;

    /// Blast `lhs == rhs-value` for a concrete evaluation and check SAT.
    fn assert_equation_sat(
        pool: &mut TermPool,
        t: TermId,
        expect: u64,
    ) -> Option<std::collections::HashMap<String, LogicVec>> {
        let w = pool.width(t);
        let c = pool.const_u64(w, expect);
        let eq = pool.eq(t, c);
        let mut bb = BitBlaster::new();
        bb.assert_true(pool, eq);
        match bb.solver_mut().solve() {
            SatResult::Sat(model) => {
                let mut env = std::collections::HashMap::new();
                for (name, width) in pool.vars() {
                    let vt = pool.var(name.clone(), width);
                    let lits = bb.lits_of(vt);
                    let mut v = LogicVec::zeros(width);
                    if let Some(lits) = lits {
                        for (i, l) in lits.iter().enumerate() {
                            let b = model[l.var() as usize] == l.is_pos();
                            v.set_bit(i as u32, symbfuzz_logic::Bit::from_bool(b));
                        }
                    }
                    env.insert(name, v);
                }
                Some(env)
            }
            // solve() is unlimited, so Unknown cannot occur here.
            SatResult::Unsat | SatResult::Unknown { .. } => None,
        }
    }

    #[test]
    fn add_equation_solves_and_validates() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let b = p.var("b", 8);
        let sum = p.add(a, b);
        let env = assert_equation_sat(&mut p, sum, 100).expect("satisfiable");
        let got = p.eval(sum, &env);
        assert_eq!(got.to_u64(), Some(100));
    }

    #[test]
    fn sub_and_mul_solve() {
        let mut p = TermPool::new();
        let a = p.var("a", 6);
        let b = p.var("b", 6);
        let d = p.sub(a, b);
        let env = assert_equation_sat(&mut p, d, 5).expect("sub satisfiable");
        assert_eq!(p.eval(d, &env).to_u64(), Some(5));

        let mut p = TermPool::new();
        let a = p.var("a", 6);
        let m = {
            let three = p.const_u64(6, 3);
            p.mul(a, three)
        };
        let env = assert_equation_sat(&mut p, m, 21).expect("mul satisfiable");
        assert_eq!(env["a"].to_u64(), Some(7));
    }

    #[test]
    fn impossible_equation_is_unsat() {
        let mut p = TermPool::new();
        let a = p.var("a", 4);
        // a & 0b0001 == 2 is impossible.
        let masked = {
            let m = p.const_u64(4, 1);
            p.and(a, m)
        };
        assert!(assert_equation_sat(&mut p, masked, 2).is_none());
    }

    #[test]
    fn ult_constraints() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let lt = {
            let c = p.const_u64(8, 3);
            p.ult(a, c)
        };
        let ge = {
            let c = p.const_u64(8, 1);
            let l = p.ult(a, c);
            p.not(l)
        };
        let both = p.and(lt, ge);
        let env = assert_equation_sat(&mut p, both, 1).expect("1 <= a < 3");
        let v = env["a"].to_u64().unwrap();
        assert!((1..3).contains(&v), "got {v}");
    }

    #[test]
    fn ite_mux_solves() {
        let mut p = TermPool::new();
        let c = p.var("c", 1);
        let x = {
            let t = p.const_u64(8, 0xAA);
            let e = p.const_u64(8, 0x55);
            p.ite(c, t, e)
        };
        let env = assert_equation_sat(&mut p, x, 0x55).expect("mux satisfiable");
        assert_eq!(env["c"].to_u64(), Some(0));
    }

    #[test]
    fn concat_extract_shift_pipeline() {
        let mut p = TermPool::new();
        let a = p.var("a", 4);
        let b = p.var("b", 4);
        let cat = p.concat(a, b); // {a,b}: 8 bits
        let hi = p.extract(cat, 4, 4); // == a
        let sh = p.shl_const(hi, 1);
        let eq_target = {
            let c6 = p.const_u64(4, 6);
            p.eq(sh, c6)
        };
        let red = {
            let rb = p.red_or(b);
            p.not(rb) // b == 0
        };
        let both = p.and(eq_target, red);
        let env = assert_equation_sat(&mut p, both, 1).expect("satisfiable");
        assert_eq!(env["a"].to_u64(), Some(3)); // 3 << 1 == 6
        assert_eq!(env["b"].to_u64(), Some(0));
    }

    #[test]
    fn reductions_blast_correctly() {
        let mut p = TermPool::new();
        let a = p.var("a", 5);
        let rx = p.red_xor(a);
        let ra = p.red_and(a);
        // odd parity and not all ones
        let cond = {
            let na = p.not(ra);
            p.and(rx, na)
        };
        let env = assert_equation_sat(&mut p, cond, 1).expect("satisfiable");
        let v = env["a"].to_u64().unwrap();
        assert_eq!(v.count_ones() % 2, 1);
        assert_ne!(v, 0b11111);
    }
}
