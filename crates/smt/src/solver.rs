//! User-facing bit-vector solver facade.
//!
//! The facade is fully fallible: misuse (non-1-bit assertions or
//! assumptions) surfaces as [`SolverError::WidthMismatch`] and
//! budgeted checks that hit a ceiling surface as
//! [`SatOutcome::Unknown`] — no public path panics on user input.
//! (The transitional `*_or_panic` shims kept one release after the
//! redesign have been removed.)

use crate::bitblast::BitBlaster;
use crate::budget::{Budget, BudgetSpent};
use crate::sat::{Lit, SatResult};
use crate::term::{TermId, TermKind, TermPool};
use crate::trace::SolveTrace;
use std::collections::HashMap;
use std::sync::Arc;
use symbfuzz_logic::{Bit, LogicVec};
use symbfuzz_telemetry::{Collector, Counter, Event, SolveStatus, UnknownReason};

/// A typed error from the [`BvSolver`] facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A term handed to `assert`/`check_assuming` was not one bit
    /// wide.
    WidthMismatch {
        /// Where the term was used (`"assertion"` or `"assumption"`).
        context: &'static str,
        /// Actual width of the offending term.
        actual: u32,
    },
    /// A budgeted check stopped at a resource ceiling and the caller
    /// required a decision (see [`SatOutcome::decided`]).
    BudgetExhausted {
        /// Ceiling that stopped the search.
        reason: UnknownReason,
        /// Work consumed by the attempt.
        spent: BudgetSpent,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::WidthMismatch { context, actual } => {
                write!(f, "{context} must be one bit wide, got {actual} bits")
            }
            SolverError::BudgetExhausted { reason, spent } => write!(
                f,
                "budget exhausted ({reason}) after {} conflicts / {} decisions / {} propagations",
                spent.conflicts, spent.decisions, spent.propagations
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// A satisfying assignment: every pool variable mapped to a concrete
/// value (variables unconstrained by the assertions default to zero).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    values: HashMap<String, LogicVec>,
}

impl Model {
    /// The value assigned to `name`, if the variable exists.
    pub fn value(&self, name: &str) -> Option<&LogicVec> {
        self.values.get(name)
    }

    /// Iterates over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &LogicVec)> {
        self.values.iter()
    }

    /// Converts into an evaluation environment for
    /// [`TermPool::eval`].
    pub fn into_env(self) -> HashMap<String, LogicVec> {
        self.values
    }

    /// Borrowing view usable with [`TermPool::eval`].
    pub fn env(&self) -> &HashMap<String, LogicVec> {
        &self.values
    }
}

/// Outcome of a satisfiability check (three-valued).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable with the given model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// A budgeted check hit a ceiling before a verdict. Only produced
    /// by [`BvSolver::check_budgeted`].
    Unknown {
        /// Ceiling that stopped the search.
        reason: UnknownReason,
        /// Work consumed by the attempt.
        spent: BudgetSpent,
    },
}

impl SatOutcome {
    /// `true` when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatOutcome::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(self) -> Option<Model> {
        match self {
            SatOutcome::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// The shared [`SolveStatus`] this outcome serializes as in
    /// campaign JSON and JSONL traces.
    pub fn status(&self) -> SolveStatus {
        match self {
            SatOutcome::Sat(_) => SolveStatus::Sat,
            SatOutcome::Unsat => SolveStatus::Unsat,
            SatOutcome::Unknown { reason, .. } => SolveStatus::Unknown(*reason),
        }
    }

    /// Converts `Unknown` into [`SolverError::BudgetExhausted`], for
    /// callers that require a definite verdict.
    pub fn decided(self) -> Result<SatOutcome, SolverError> {
        match self {
            SatOutcome::Unknown { reason, spent } => {
                Err(SolverError::BudgetExhausted { reason, spent })
            }
            decided => Ok(decided),
        }
    }
}

/// Incremental QF_BV solver: build terms via [`pool_mut`](Self::pool_mut),
/// [`assert`](Self::assert) 1-bit facts, then [`check`](Self::check) or
/// [`check_assuming`](Self::check_assuming).
///
/// Assertions are blasted eagerly, so repeated checks with different
/// assumptions reuse the existing CNF — this is how SymbFuzz tries
/// several candidate CFG targets cheaply (§4.7, picking the constraint
/// that unlocks the most new nodes).
///
/// See the [crate docs](crate) for a worked example.
#[derive(Debug, Default, Clone)]
pub struct BvSolver {
    pool: TermPool,
    blaster: BitBlaster,
    asserted: Vec<TermId>,
    telemetry: Option<Arc<Collector>>,
}

impl BvSolver {
    /// Creates an empty solver.
    pub fn new() -> BvSolver {
        BvSolver {
            pool: TermPool::new(),
            blaster: BitBlaster::new(),
            asserted: Vec::new(),
            telemetry: None,
        }
    }

    /// Attaches (or detaches) a telemetry collector. Every check then
    /// records an [`Event::SmtSolve`] plus CDCL work counters.
    pub fn set_collector(&mut self, telemetry: Option<Arc<Collector>>) {
        self.telemetry = telemetry;
    }

    /// The term pool, for building formulas.
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Immutable access to the term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Asserts a 1-bit term.
    ///
    /// # Errors
    ///
    /// [`SolverError::WidthMismatch`] if the term is not one bit wide.
    pub fn assert(&mut self, t: TermId) -> Result<(), SolverError> {
        let w = self.pool.width(t);
        if w != 1 {
            return Err(SolverError::WidthMismatch {
                context: "assertion",
                actual: w,
            });
        }
        self.blaster.assert_true(&self.pool, t);
        self.asserted.push(t);
        Ok(())
    }

    /// Checks satisfiability of the asserted conjunction.
    pub fn check(&mut self) -> Result<SatOutcome, SolverError> {
        self.check_assuming(&[])
    }

    /// Checks satisfiability under extra 1-bit `assumptions` that are
    /// not permanently asserted. Never returns
    /// [`SatOutcome::Unknown`].
    ///
    /// # Errors
    ///
    /// [`SolverError::WidthMismatch`] if an assumption is not one bit
    /// wide.
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> Result<SatOutcome, SolverError> {
        self.check_budgeted(assumptions, &Budget::unlimited())
    }

    /// Like [`check_assuming`](Self::check_assuming), but the CDCL
    /// search is bounded by `budget`. Hitting a ceiling yields
    /// `Ok(SatOutcome::Unknown { .. })` — exhaustion is a result, not
    /// an error; use [`SatOutcome::decided`] when a verdict is
    /// mandatory.
    ///
    /// # Errors
    ///
    /// [`SolverError::WidthMismatch`] if an assumption is not one bit
    /// wide.
    pub fn check_budgeted(
        &mut self,
        assumptions: &[TermId],
        budget: &Budget,
    ) -> Result<SatOutcome, SolverError> {
        let mut assumption_lits: Vec<Lit> = Vec::with_capacity(assumptions.len());
        for &a in assumptions {
            let w = self.pool.width(a);
            if w != 1 {
                return Err(SolverError::WidthMismatch {
                    context: "assumption",
                    actual: w,
                });
            }
            let l = self.blaster.lits(&self.pool, a)[0];
            assumption_lits.push(l);
        }
        let before = self.telemetry.as_ref().map(|t| {
            let s = self.blaster.solver();
            (t.now_micros(), s.decisions(), s.conflicts())
        });
        let result = self
            .blaster
            .solver_mut()
            .solve_budgeted(&assumption_lits, budget);
        if let (Some(t), Some((t0, d0, c0))) = (&self.telemetry, before) {
            let s = self.blaster.solver();
            let stats = self.blaster.stats();
            t.add(Counter::SolverCalls, 1);
            t.add(Counter::SatVars, stats.num_vars as u64);
            t.add(Counter::SatClauses, stats.num_clauses as u64);
            t.add(Counter::SatDecisions, s.decisions().saturating_sub(d0));
            t.add(Counter::SatConflicts, s.conflicts().saturating_sub(c0));
            t.record(Event::SmtSolve {
                vars: stats.num_vars as u64,
                clauses: stats.num_clauses as u64,
                sat: matches!(result, SatResult::Sat(_)),
                micros: t.now_micros().saturating_sub(t0),
            });
        }
        Ok(match result {
            SatResult::Unsat => SatOutcome::Unsat,
            SatResult::Unknown { reason, spent } => SatOutcome::Unknown { reason, spent },
            SatResult::Sat(raw) => {
                let mut values = HashMap::new();
                for (name, width) in self.pool.vars() {
                    let vt = self.pool.var(name.clone(), width);
                    let mut v = LogicVec::zeros(width);
                    if let Some(lits) = self.blaster.lits_of(vt) {
                        for (i, l) in lits.iter().enumerate() {
                            let b = raw[l.var() as usize] == l.is_pos();
                            v.set_bit(i as u32, Bit::from_bool(b));
                        }
                    }
                    values.insert(name, v);
                }
                SatOutcome::Sat(Model { values })
            }
        })
    }

    /// Validates a model against the asserted terms by direct
    /// evaluation (defence in depth for the fuzzer: a bad model would
    /// silently misguide mutation).
    pub fn validate(&self, model: &Model) -> bool {
        self.asserted.iter().all(|t| {
            self.pool
                .eval(*t, model.env())
                .to_u64()
                .map(|v| v == 1)
                .unwrap_or(false)
        })
    }

    /// Number of variables declared in the pool.
    pub fn var_count(&self) -> usize {
        self.pool.vars().len()
    }

    /// Cumulative CDCL work this solver instance has performed, as a
    /// [`BudgetSpent`] receipt (conflicts, decisions, propagations
    /// since construction). Profilers diff two readings around a check
    /// to charge that check's work to a goal.
    pub fn spent(&self) -> BudgetSpent {
        let s = self.blaster.solver();
        BudgetSpent {
            conflicts: s.conflicts(),
            decisions: s.decisions(),
            propagations: s.propagations(),
        }
    }

    /// CNF statistics from the blaster (vars, clauses).
    pub fn cnf_stats(&self) -> (usize, usize) {
        let s = self.blaster.stats();
        (s.num_vars, s.num_clauses)
    }

    /// Arms CDCL introspection on the embedded solver: subsequent
    /// checks record a [`SolveTrace`] (learning histograms, restart
    /// timeline, conflict depths). Zero-cost for solvers that never
    /// call this.
    pub fn enable_introspection(&mut self) {
        self.blaster.solver_mut().enable_trace();
    }

    /// Takes the accumulated [`SolveTrace`] with the top-`k` hot
    /// variables filled in, re-arming a fresh trace. `None` when
    /// introspection was never enabled.
    pub fn take_trace(&mut self, k: usize) -> Option<SolveTrace> {
        self.blaster.solver_mut().take_trace(k)
    }

    /// The `k` hottest *named* signals of the current search,
    /// `(variable name, activity_permille)` hottest first: VSIDS-hot
    /// SAT variables mapped back through the bit-blast map to the
    /// pool variables whose bit vectors contain them. Gate-internal
    /// variables (Tseitin outputs) are skipped.
    pub fn hot_signals(&self, k: usize) -> Vec<(String, u64)> {
        let hot = self.blaster.solver().hot_vars(k.saturating_mul(8));
        let vars: Vec<u32> = hot.iter().map(|&(v, _)| v).collect();
        let heat: HashMap<u32, u64> = hot.into_iter().collect();
        let mut by_name: Vec<(String, u64)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for (v, t, _) in self.blaster.attribute_vars(&vars) {
            if let TermKind::Var(name, _) = self.pool.kind(t) {
                let h = heat[&v];
                match index.get(name) {
                    Some(&i) => by_name[i].1 = by_name[i].1.max(h),
                    None => {
                        index.insert(name.clone(), by_name.len());
                        by_name.push((name.clone(), h));
                    }
                }
            }
        }
        by_name.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_name.truncate(k);
        by_name
    }

    /// Assumption-core-lite: given `assumptions` under which the
    /// instance is UNSAT, greedily minimizes them by drop-one probes,
    /// each bounded by `budget`. Returns `Ok(Some(core))` — a subset
    /// in the original order that still forces UNSAT — or `Ok(None)`
    /// when the instance is not UNSAT under the full assumption set
    /// (including budget exhaustion on the initial check). A probe
    /// that exhausts its budget keeps its assumption, so the result
    /// is an over-approximation of a minimal core, never an under-
    /// approximation.
    ///
    /// # Errors
    ///
    /// [`SolverError::WidthMismatch`] if an assumption is not one bit
    /// wide.
    pub fn assumption_core(
        &mut self,
        assumptions: &[TermId],
        budget: &Budget,
    ) -> Result<Option<Vec<TermId>>, SolverError> {
        if !matches!(self.check_budgeted(assumptions, budget)?, SatOutcome::Unsat) {
            return Ok(None);
        }
        let mut core = assumptions.to_vec();
        let mut i = 0;
        while i < core.len() {
            let mut probe = core.clone();
            probe.remove(i);
            if matches!(self.check_budgeted(&probe, budget)?, SatOutcome::Unsat) {
                core = probe;
            } else {
                i += 1;
            }
        }
        Ok(Some(core))
    }
}

/// Pretty-prints a term for diagnostics (prefix form).
pub fn render_term(pool: &TermPool, t: TermId) -> String {
    match pool.kind(t) {
        TermKind::Const(v) => format!("{v}"),
        TermKind::Var(n, w) => format!("{n}:{w}"),
        TermKind::Not(a) => format!("(not {})", render_term(pool, *a)),
        TermKind::And(a, b) => format!("(and {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Or(a, b) => format!("(or {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Xor(a, b) => format!("(xor {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Add(a, b) => format!("(add {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Sub(a, b) => format!("(sub {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Mul(a, b) => format!("(mul {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Eq(a, b) => format!("(= {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Ult(a, b) => format!("(ult {} {})", render_term(pool, *a), render_term(pool, *b)),
        TermKind::Ite(c, a, b) => format!(
            "(ite {} {} {})",
            render_term(pool, *c),
            render_term(pool, *a),
            render_term(pool, *b)
        ),
        TermKind::Extract { arg, lo, width } => {
            format!("(extract {} {} {})", render_term(pool, *arg), lo, width)
        }
        TermKind::ConcatPair(h, l) => {
            format!(
                "(concat {} {})",
                render_term(pool, *h),
                render_term(pool, *l)
            )
        }
        TermKind::ShlConst(a, n) => format!("(shl {} {n})", render_term(pool, *a)),
        TermKind::LshrConst(a, n) => format!("(lshr {} {n})", render_term(pool, *a)),
        TermKind::RedAnd(a) => format!("(rand {})", render_term(pool, *a)),
        TermKind::RedOr(a) => format!("(ror {})", render_term(pool, *a)),
        TermKind::RedXor(a) => format!("(rxor {})", render_term(pool, *a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sat_with_model_validation() {
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", 8);
        let goal = {
            let p = s.pool_mut();
            let five = p.const_u64(8, 5);
            let sum = p.add(a, five);
            let hundred = p.const_u64(8, 100);
            p.eq(sum, hundred)
        };
        s.assert(goal).unwrap();
        let SatOutcome::Sat(m) = s.check().unwrap() else {
            panic!("sat expected")
        };
        assert_eq!(m.value("a").unwrap().to_u64(), Some(95));
        assert!(s.validate(&m));
    }

    #[test]
    fn unsat_conjunction() {
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", 4);
        let (e1, e2) = {
            let p = s.pool_mut();
            let three = p.const_u64(4, 3);
            let seven = p.const_u64(4, 7);
            (p.eq(a, three), p.eq(a, seven))
        };
        s.assert(e1).unwrap();
        s.assert(e2).unwrap();
        assert_eq!(s.check().unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn incremental_assumptions() {
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", 4);
        let lt8 = {
            let p = s.pool_mut();
            let eight = p.const_u64(4, 8);
            p.ult(a, eight)
        };
        s.assert(lt8).unwrap();
        let targets: Vec<TermId> = (0..10)
            .map(|v| {
                let p = s.pool_mut();
                let c = p.const_u64(4, v);
                p.eq(a, c)
            })
            .collect();
        // Values 0..8 reachable, 8..10 not — same CNF reused each time.
        for (v, &t) in targets.iter().enumerate() {
            let out = s.check_assuming(&[t]).unwrap();
            if v < 8 {
                let m = out.model().expect("reachable");
                assert_eq!(m.value("a").unwrap().to_u64(), Some(v as u64));
            } else {
                assert_eq!(out, SatOutcome::Unsat);
            }
        }
        // Plain check still satisfiable after all those assumptions.
        assert!(s.check().unwrap().is_sat());
    }

    #[test]
    fn unconstrained_variables_default_to_zero() {
        let mut s = BvSolver::new();
        let _unused = s.pool_mut().var("unused", 16);
        let t = s.pool_mut().tru();
        s.assert(t).unwrap();
        let SatOutcome::Sat(m) = s.check().unwrap() else {
            panic!()
        };
        assert_eq!(m.value("unused").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn render_is_readable() {
        let mut p = TermPool::new();
        let a = p.var("a", 4);
        let t = {
            let c = p.const_u64(4, 3);
            let s = p.add(a, c);
            p.eq(s, c)
        };
        let txt = render_term(&p, t);
        assert!(txt.contains("a:4"));
        assert!(txt.contains("(add"));
    }

    #[test]
    fn paper_eqn1_example() {
        // ((in1 & in2) + in3) && !in3  — Eqn. 1 of the paper.
        let mut s = BvSolver::new();
        let in1 = s.pool_mut().var("in1", 4);
        let in2 = s.pool_mut().var("in2", 4);
        let in3 = s.pool_mut().var("in3", 4);
        let goal = {
            let p = s.pool_mut();
            let anded = p.and(in1, in2);
            let sum = p.add(anded, in3);
            let truthy = p.red_or(sum);
            let n3 = p.red_or(in3);
            let not3 = p.not(n3);
            p.and(truthy, not3)
        };
        s.assert(goal).unwrap();
        let m = s.check().unwrap().model().expect("satisfiable");
        assert_eq!(m.value("in3").unwrap().to_u64(), Some(0));
        let v1 = m.value("in1").unwrap().to_u64().unwrap();
        let v2 = m.value("in2").unwrap().to_u64().unwrap();
        assert_ne!(v1 & v2, 0);
    }

    #[test]
    fn wide_terms_are_rejected_not_panicked() {
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", 8);
        assert_eq!(
            s.assert(a),
            Err(SolverError::WidthMismatch {
                context: "assertion",
                actual: 8,
            })
        );
        assert_eq!(
            s.check_assuming(&[a]),
            Err(SolverError::WidthMismatch {
                context: "assumption",
                actual: 8,
            })
        );
        // The solver is still usable after rejected input.
        let t = s.pool_mut().tru();
        s.assert(t).unwrap();
        assert!(s.check().unwrap().is_sat());
    }

    #[test]
    fn budgeted_check_degrades_to_unknown() {
        // Factoring instance: x * y == semiprime with x, y > 1. A few
        // dozen conflicts cannot crack a 40-bit product.
        let mut s = BvSolver::new();
        let x = s.pool_mut().var("x", 20);
        let y = s.pool_mut().var("y", 20);
        let goal = {
            let p = s.pool_mut();
            let xw = p.resize(x, 40);
            let yw = p.resize(y, 40);
            let prod = p.mul(xw, yw);
            let c = p.const_u64(40, 676_371_752_677); // 821297 * 823541
            let eq = p.eq(prod, c);
            let one = p.const_u64(20, 1);
            let xg = p.ult(one, x);
            let yg = p.ult(one, y);
            let guards = p.and(xg, yg);
            p.and(eq, guards)
        };
        s.assert(goal).unwrap();
        let tiny = Budget::unlimited().with_conflicts(50);
        let out = s.check_budgeted(&[], &tiny).unwrap();
        let SatOutcome::Unknown { reason, spent } = &out else {
            panic!("expected Unknown, got {out:?}")
        };
        assert_eq!(*reason, UnknownReason::Conflicts);
        assert!(spent.conflicts >= 1);
        assert_eq!(out.status(), SolveStatus::Unknown(UnknownReason::Conflicts));
        // A decision-demanding caller sees the typed error.
        assert_eq!(
            out.clone().decided(),
            Err(SolverError::BudgetExhausted {
                reason: *reason,
                spent: *spent,
            })
        );
        // An escalated retry resumes warm and is still bounded.
        let bigger = tiny.escalate(2);
        let retry = s.check_budgeted(&[], &bigger).unwrap();
        assert!(matches!(retry, SatOutcome::Unknown { .. }));
    }

    #[test]
    fn statuses_map_onto_shared_solve_status() {
        let mut s = BvSolver::new();
        let t = s.pool_mut().tru();
        s.assert(t).unwrap();
        assert_eq!(s.check().unwrap().status(), SolveStatus::Sat);
        let f = {
            let p = s.pool_mut();
            let t = p.tru();
            p.not(t)
        };
        s.assert(f).unwrap();
        assert_eq!(s.check().unwrap().status(), SolveStatus::Unsat);
    }

    #[test]
    fn introspection_traces_and_names_hot_signals() {
        let mut s = BvSolver::new();
        let x = s.pool_mut().var("x", 16);
        let y = s.pool_mut().var("y", 16);
        let goal = {
            let p = s.pool_mut();
            let xw = p.resize(x, 32);
            let yw = p.resize(y, 32);
            let prod = p.mul(xw, yw);
            let c = p.const_u64(32, 1_073_676_289); // 32749 * 32771... close enough: forces search
            let eq = p.eq(prod, c);
            let one = p.const_u64(16, 1);
            let xg = p.ult(one, x);
            let yg = p.ult(one, y);
            let g = p.and(xg, yg);
            p.and(eq, g)
        };
        s.assert(goal).unwrap();
        assert!(s.take_trace(4).is_none(), "introspection defaults to off");
        s.enable_introspection();
        let tiny = Budget::unlimited().with_conflicts(200);
        let _ = s.check_budgeted(&[], &tiny).unwrap();
        let t = s.take_trace(8).expect("trace armed");
        assert!(t.conflicts >= 1, "search produced no conflicts: {t:?}");
        let hot = s.hot_signals(4);
        assert!(!hot.is_empty(), "no hot signals attributed");
        for (name, permille) in &hot {
            assert!(name == "x" || name == "y", "unexpected signal {name}");
            assert!(*permille <= 1000);
        }
    }

    #[test]
    fn assumption_core_minimizes_to_the_conflicting_pair() {
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", 4);
        let (a3, a7, t) = {
            let p = s.pool_mut();
            let three = p.const_u64(4, 3);
            let seven = p.const_u64(4, 7);
            (p.eq(a, three), p.eq(a, seven), p.tru())
        };
        let unlimited = Budget::unlimited();
        // Satisfiable assumption set: no core.
        assert_eq!(s.assumption_core(&[a3, t], &unlimited).unwrap(), None);
        // a==3 ∧ a==7 conflicts; `true` is dropped from the core.
        let core = s
            .assumption_core(&[a3, a7, t], &unlimited)
            .unwrap()
            .expect("unsat under assumptions");
        assert_eq!(core, vec![a3, a7]);
        // The solver stays usable afterwards.
        assert!(s.check().unwrap().is_sat());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SolverError::WidthMismatch {
            context: "assertion",
            actual: 4,
        };
        assert_eq!(e.to_string(), "assertion must be one bit wide, got 4 bits");
        let e = SolverError::BudgetExhausted {
            reason: UnknownReason::Conflicts,
            spent: BudgetSpent {
                conflicts: 10,
                decisions: 20,
                propagations: 30,
            },
        };
        assert!(e.to_string().contains("conflicts"));
        assert!(e.to_string().contains("10"));
    }
}
