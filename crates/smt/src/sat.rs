//! CDCL SAT solver: two-watched-literal propagation, VSIDS decisions,
//! first-UIP learning, phase saving and Luby restarts.
//!
//! Searches can be bounded by a [`Budget`]
//! ([`solve_budgeted`](SatSolver::solve_budgeted)); a search that hits
//! a ceiling returns [`SatResult::Unknown`] with the reason and the
//! work spent, leaving the solver reusable (learned clauses are kept).

use crate::budget::{Budget, BudgetSpent};
use crate::trace::SolveTrace;
use std::fmt;
use symbfuzz_telemetry::UnknownReason;

/// A literal: a propositional variable (0-based) with a polarity.
///
/// Encoded as `var << 1 | negated`, so `Lit` doubles as an index into
/// watch lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// A literal for `var` with the given polarity (`true` = positive).
    pub fn new(var: u32, positive: bool) -> Lit {
        Lit(var << 1 | (!positive as u32))
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is positive.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negated literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The watch-list index.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_pos() { "" } else { "¬" }, self.var())
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with one polarity per variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The search hit a [`Budget`] ceiling before a verdict. Only
    /// produced by [`SatSolver::solve_budgeted`].
    Unknown {
        /// Ceiling that stopped the search.
        reason: UnknownReason,
        /// Work consumed by this call.
        spent: BudgetSpent,
    },
}

impl SatResult {
    /// `true` when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const INVALID: usize = usize::MAX;

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// # Examples
///
/// ```
/// use symbfuzz_smt::{Lit, SatSolver, SatResult};
///
/// let mut s = SatSolver::new();
/// let (a, b) = (s.new_var(), s.new_var());
/// s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
/// s.add_clause(&[Lit::new(a, false)]);
/// let SatResult::Sat(model) = s.solve() else { panic!() };
/// assert!(!model[a as usize] && model[b as usize]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct SatSolver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<usize>>,
    /// 0 = unassigned, 1 = true, -1 = false.
    assign: Vec<i8>,
    /// Saved phase for phase-saving decisions.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<usize>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    unsat: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    /// Opt-in CDCL analytics; `None` (the default) costs one null test
    /// per conflict/restart and nothing else.
    trace: Option<Box<SolveTrace>>,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            ..SatSolver::default()
        }
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(0);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(INVALID);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of conflicts seen so far (diagnostics).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made so far (diagnostics).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed so far (diagnostics).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Arms CDCL introspection: subsequent searches record learned
    /// clause size/LBD histograms, the restart timeline and
    /// conflict-depth statistics into a [`SolveTrace`]. Idempotent;
    /// tracing stays on until [`take_trace`](Self::take_trace).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Box::default());
        }
    }

    /// The accumulated trace, if tracing is armed.
    pub fn trace(&self) -> Option<&SolveTrace> {
        self.trace.as_deref()
    }

    /// Takes the accumulated trace (with the current top-`k` hot
    /// variables filled in) and re-arms a fresh one, or returns `None`
    /// if tracing was never enabled.
    pub fn take_trace(&mut self, k: usize) -> Option<SolveTrace> {
        let hot = self.hot_vars(k);
        self.trace.take().map(|mut t| {
            t.hot_vars = hot;
            self.trace = Some(Box::default());
            *t
        })
    }

    /// The `k` most VSIDS-active variables as `(var,
    /// activity_permille)`, hottest first, ties broken by variable
    /// index for determinism. Activity is scaled to 0..=1000 of the
    /// hottest variable so the figures survive internal rescaling.
    pub fn hot_vars(&self, k: usize) -> Vec<(u32, u64)> {
        let mut ranked: Vec<(u32, f64)> = self
            .activity
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 0.0)
            .map(|(v, &a)| (v as u32, a))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        let top = ranked.first().map(|&(_, a)| a).unwrap_or(1.0);
        ranked
            .into_iter()
            .map(|(v, a)| (v, (a / top * 1000.0).round() as u64))
            .collect()
    }

    /// Distinct decision levels among `lits` (the learned clause's
    /// LBD, "literal block distance"). Trace-path only.
    fn lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var() as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var() as usize];
        if l.is_pos() {
            v
        } else {
            -v
        }
    }

    /// Adds a clause. Tautologies are dropped; duplicate literals are
    /// merged; the empty clause makes the instance trivially UNSAT.
    ///
    /// Clauses must be added before [`solve`](Self::solve) at decision
    /// level 0.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        // A previous solve() may have left decisions on the trail;
        // clauses must be integrated at decision level 0.
        if self.decision_level() > 0 {
            self.cancel_until(0);
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology: both polarities of one var.
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove literals already false at level 0; satisfied clause is dropped.
        c.retain(|l| !(self.value(*l) == -1 && self.level[l.var() as usize] == 0));
        if c.iter()
            .any(|l| self.value(*l) == 1 && self.level[l.var() as usize] == 0)
        {
            return;
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], INVALID) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach(c);
            }
        }
    }

    fn attach(&mut self, c: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[c[0].negated().code()].push(idx);
        self.watches[c[1].negated().code()].push(idx);
        self.clauses.push(c);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: usize) -> bool {
        match self.value(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var() as usize;
                self.assign[v] = if l.is_pos() { 1 } else { -1 };
                self.phase[v] = l.is_pos();
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns the index of a conflicting clause.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Clauses that watch ¬l may become unit/conflicting now
            // that l is true.
            let mut ws = std::mem::take(&mut self.watches[l.code()]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = None;
            for (wi, &ci) in ws.iter().enumerate() {
                let falsified = l.negated();
                // Normalise: watched literals are clause[0] and clause[1].
                {
                    let c = &mut self.clauses[ci];
                    if c[0] == falsified {
                        c.swap(0, 1);
                    }
                }
                if self.value(self.clauses[ci][0]) == 1 {
                    keep.push(ci);
                    continue;
                }
                // Find a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value(self.clauses[ci][k]) != -1 {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1].negated().code();
                        self.watches[new_watch].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                keep.push(ci);
                let first = self.clauses[ci][0];
                if !self.enqueue(first, ci) {
                    // Conflict: keep remaining watches and bail out.
                    keep.extend_from_slice(&ws[wi + 1..]);
                    conflict = Some(ci);
                    break;
                }
            }
            ws.clear();
            let slot = &mut self.watches[l.code()];
            keep.append(slot);
            *slot = keep;
            if let Some(ci) = conflict {
                return Some(ci);
            }
        }
        None
    }

    fn bump(&mut self, var: u32) {
        let a = &mut self.activity[var as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::new(0, true)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut lit: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut clause = confl;
        loop {
            let start = if lit.is_none() { 0 } else { 1 };
            let lits: Vec<Lit> = self.clauses[clause][start..].to_vec();
            for q in lits {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let p = self.trail[idx];
            seen[p.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                lit = Some(p);
                break;
            }
            clause = self.reason[p.var() as usize];
            lit = Some(p);
            debug_assert_ne!(clause, INVALID);
        }
        learned[0] = lit.unwrap().negated();
        // Backjump level: highest level among the non-asserting literals.
        let bj = learned[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level in watch position 1.
        if learned.len() > 1 {
            let pos = learned[1..]
                .iter()
                .position(|l| self.level[l.var() as usize] == bj)
                .unwrap()
                + 1;
            learned.swap(1, pos);
        }
        (learned, bj)
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                self.assign[l.var() as usize] = 0;
                self.reason[l.var() as usize] = INVALID;
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&self) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == 0 {
                let act = self.activity[v];
                if best.map(|(_, a)| act > a).unwrap_or(true) {
                    best = Some((v as u32, act));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Solves the instance.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (literals forced as the first
    /// decisions). Returns [`SatResult::Unsat`] if the assumptions are
    /// inconsistent with the clauses. Never returns
    /// [`SatResult::Unknown`].
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_budgeted(assumptions, &Budget::unlimited())
    }

    /// Like [`solve_with`](Self::solve_with), but bounded by `budget`.
    ///
    /// The ceilings are checked once per main-loop iteration (i.e. at
    /// propagation/decision granularity), so a search may overshoot a
    /// ceiling by the work of one propagation sweep before stopping.
    /// On exhaustion the trail is cancelled to level 0 and
    /// [`SatResult::Unknown`] carries the reason plus the conflicts,
    /// decisions and propagations this call consumed; learned clauses
    /// are kept, so a retry with a larger budget resumes warm.
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &Budget) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let limited = !budget.is_unlimited();
        let (c0, d0, p0) = (self.conflicts, self.decisions, self.propagations);
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = luby(restart_count) * 128;
        loop {
            if limited {
                let spent = BudgetSpent {
                    conflicts: self.conflicts - c0,
                    decisions: self.decisions - d0,
                    propagations: self.propagations - p0,
                };
                if let Some(reason) = budget.check(spent) {
                    self.cancel_until(0);
                    return SatResult::Unknown { reason, spent };
                }
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                if self.decision_level() == 0 {
                    return SatResult::Unsat;
                }
                // A conflict while only assumption decisions are on the
                // trail is implied by clauses + assumptions alone: the
                // query is UNSAT under these assumptions.
                if self.decision_level() <= assumptions.len() as u32 {
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                let _ = confl;
                let (learned, bj) = self.analyze(confl);
                if self.trace.is_some() {
                    let lbd = self.lbd(&learned);
                    let depth = self.decision_level();
                    if let Some(t) = &mut self.trace {
                        t.note_learned(learned.len(), lbd, depth);
                    }
                }
                let bj = bj.max(assumptions.len() as u32);
                self.cancel_until(bj);
                let assert_lit = learned[0];
                if learned.len() == 1 {
                    if !self.enqueue(assert_lit, INVALID) {
                        return SatResult::Unsat;
                    }
                } else {
                    let ci = self.attach(learned);
                    if !self.enqueue(assert_lit, ci) {
                        return SatResult::Unsat;
                    }
                }
                self.var_inc /= 0.95;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    restart_count += 1;
                    conflicts_until_restart = luby(restart_count) * 128;
                    let at = self.conflicts;
                    if let Some(t) = &mut self.trace {
                        t.note_restart(at);
                    }
                    self.cancel_until(assumptions.len() as u32);
                }
                // Install pending assumptions as decisions.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value(a) {
                        1 => {
                            self.trail_lim.push(self.trail.len());
                        }
                        -1 => return SatResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, INVALID);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        let model = self.assign.iter().map(|&v| v == 1).collect();
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = Lit::new(v, self.phase[v as usize]);
                        self.enqueue(l, INVALID);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, …).
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < (i as u64 + 2) {
        k += 1;
    }
    if (1u64 << k) - 1 == i as u64 + 1 {
        return 1u64 << (k - 1);
    }
    luby(i + 1 - (1 << (k - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(v, pos)
    }

    #[test]
    fn literal_encoding() {
        let l = lit(3, true);
        assert_eq!(l.var(), 3);
        assert!(l.is_pos());
        assert_eq!(l.negated().var(), 3);
        assert!(!l.negated().is_pos());
        assert_eq!(l.negated().negated(), l);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        assert!(s.solve().is_sat());

        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        s.add_clause(&[lit(a, false)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn implication_chain_forces_model() {
        // a, a→b, b→c, c→d : all true.
        let mut s = SatSolver::new();
        let vars: Vec<u32> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(vars[0], true)]);
        for w in vars.windows(2) {
            s.add_clause(&[lit(w[0], false), lit(w[1], true)]);
        }
        let SatResult::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(vars.iter().all(|&v| m[v as usize]));
    }

    #[test]
    fn xor_constraint() {
        // a ⊕ b encoded as (a∨b)(¬a∨¬b), plus a → model must set b=¬a.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        s.add_clause(&[lit(a, false), lit(b, false)]);
        s.add_clause(&[lit(a, true)]);
        let SatResult::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m[a as usize] && !m[b as usize]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = SatSolver::new();
        let mut p = [[0u32; 2]; 3];
        for row in &mut p {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[lit(row[0], true), lit(row[1], true)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[lit(p[i1][j], false), lit(p[i2][j], false)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn assumptions_restrict_models() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        let SatResult::Sat(m) = s.solve_with(&[lit(a, false)]) else {
            panic!()
        };
        assert!(!m[a as usize] && m[b as usize]);
        // Assumptions conflicting with clauses yield UNSAT but the
        // instance stays solvable without them.
        s.add_clause(&[lit(b, false)]);
        assert_eq!(s.solve_with(&[lit(a, false)]), SatResult::Unsat);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(a, true), lit(b, false)]);
        s.add_clause(&[lit(a, true), lit(a, false)]); // tautology, dropped
        assert!(s.solve().is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    fn pigeonhole(s: &mut SatSolver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<u32>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&v| lit(v, true)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                for (&v1, &v2) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause(&[lit(v1, false), lit(v2, false)]);
                }
            }
        }
    }

    #[test]
    fn conflict_budget_yields_unknown_and_solver_stays_usable() {
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 5, 4);
        let budget = Budget::unlimited().with_conflicts(2);
        let r = s.solve_budgeted(&[], &budget);
        let SatResult::Unknown { reason, spent } = r else {
            panic!("expected Unknown, got {r:?}");
        };
        assert_eq!(reason, UnknownReason::Conflicts);
        assert!(spent.conflicts >= 2);
        // Learned clauses are kept; the unlimited retry still decides.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn decision_budget_yields_unknown() {
        let mut s = SatSolver::new();
        // Needs at least one decision: two free vars, one clause.
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[lit(a, true), lit(b, true)]);
        let budget = Budget::unlimited().with_decisions(0);
        match s.solve_budgeted(&[], &budget) {
            SatResult::Unknown { reason, .. } => assert_eq!(reason, UnknownReason::Decisions),
            r => panic!("expected Unknown, got {r:?}"),
        }
        assert!(s.solve().is_sat());
    }

    #[test]
    fn propagation_budget_yields_unknown() {
        let mut s = SatSolver::new();
        // A decision on v0 propagates a chain; the next iteration's
        // check sees the spent propagations before v4 is decided.
        let vars: Vec<u32> = (0..5).map(|_| s.new_var()).collect();
        s.add_clause(&[lit(vars[0], true), lit(vars[1], true)]);
        s.add_clause(&[lit(vars[1], false), lit(vars[2], true)]);
        let budget = Budget::unlimited().with_propagations(1);
        match s.solve_budgeted(&[], &budget) {
            SatResult::Unknown { reason, spent } => {
                assert_eq!(reason, UnknownReason::Propagations);
                assert!(spent.propagations >= 1);
            }
            r => panic!("expected Unknown, got {r:?}"),
        }
        assert!(s.solve().is_sat());
    }

    #[test]
    fn expired_wall_deadline_yields_unknown_deterministically() {
        use std::sync::Arc;
        use symbfuzz_telemetry::{Clock, ManualClock};
        let clock = Arc::new(ManualClock::new());
        clock.set(1000);
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[lit(a, true)]);
        let budget = Budget::unlimited().with_wall_deadline(clock, 500);
        match s.solve_budgeted(&[], &budget) {
            SatResult::Unknown { reason, .. } => assert_eq!(reason, UnknownReason::WallClock),
            r => panic!("expected Unknown, got {r:?}"),
        }
    }

    #[test]
    fn unlimited_budget_matches_solve() {
        let mut s1 = SatSolver::new();
        let mut s2 = SatSolver::new();
        pigeonhole(&mut s1, 4, 3);
        pigeonhole(&mut s2, 4, 3);
        assert_eq!(s1.solve(), s2.solve_budgeted(&[], &Budget::unlimited()));
    }

    #[test]
    fn tracing_is_off_by_default_and_records_learning_when_armed() {
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 5, 4);
        assert!(s.trace().is_none());
        assert!(s.take_trace(4).is_none());
        s.enable_trace();
        assert_eq!(s.solve(), SatResult::Unsat);
        let t = s.take_trace(4).unwrap();
        assert!(t.learned >= 1, "no learned clauses recorded: {t:?}");
        assert_eq!(t.conflicts, t.learned);
        assert!(t.conflict_depth_max >= 1);
        assert!(t.learned_size_hist.iter().sum::<u64>() >= 1);
        assert!(t.lbd_hist.iter().sum::<u64>() >= 1);
        assert!(!t.hot_vars.is_empty());
        assert_eq!(t.hot_vars[0].1, 1000, "hottest var is the scale anchor");
        // take_trace re-arms a fresh trace.
        let fresh = s.trace().unwrap();
        assert_eq!(fresh.learned, 0);
    }

    #[test]
    fn traced_and_untraced_searches_agree() {
        let mut plain = SatSolver::new();
        let mut traced = SatSolver::new();
        pigeonhole(&mut plain, 4, 3);
        pigeonhole(&mut traced, 4, 3);
        traced.enable_trace();
        assert_eq!(plain.solve(), traced.solve());
        assert_eq!(plain.conflicts(), traced.conflicts());
        assert_eq!(plain.decisions(), traced.decisions());
    }

    #[test]
    fn moderately_hard_random_instance() {
        // Deterministic pseudo-random 3-SAT at ratio ~4.0 (40 vars,
        // 160 clauses): solvable either way, must terminate.
        let mut s = SatSolver::new();
        let vars: Vec<u32> = (0..40).map(|_| s.new_var()).collect();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..160 {
            let c: Vec<Lit> = (0..3)
                .map(|_| {
                    let v = vars[(next() % 40) as usize];
                    lit(v, next() % 2 == 0)
                })
                .collect();
            s.add_clause(&c);
        }
        // Just ensure a decision is reached.
        let _ = s.solve();
    }
}
