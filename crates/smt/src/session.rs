//! Assumption-based incremental solving sessions.
//!
//! A [`SolverSession`] keeps one [`BitBlaster`] (and therefore one
//! [`SatSolver`](crate::SatSolver) with its learned clauses) alive
//! across a batch of related queries. Shared structure — the unrolled
//! transition relation of a frame — is asserted once with
//! [`assert_term`](SolverSession::assert_term); each per-goal target is
//! then expressed as an *assumption literal* via
//! [`check_assuming`](SolverSession::check_assuming) instead of a fresh
//! solver instance, so clauses learned refuting one goal prune the
//! search for its siblings.
//!
//! # Soundness
//!
//! Learned clauses are resolvents of the clause database, so they are
//! implied by the asserted formula alone — never by the assumptions of
//! the query that learned them. Retaining them across
//! `check_assuming` calls therefore cannot change any verdict:
//! Sat/Unsat answers are semantic properties of (clauses, assumptions)
//! and match a fresh solver exactly. Only *budgeted* searches may
//! differ, in how much work a verdict costs — which is the point.

use crate::bitblast::{BitBlaster, Cnf};
use crate::budget::{Budget, BudgetSpent};
use crate::sat::{Lit, SatResult};
use crate::term::{TermId, TermPool};
use crate::trace::SolveTrace;

/// One incremental solving session: a term pool plus a warm blaster.
///
/// # Examples
///
/// ```
/// use symbfuzz_smt::{Budget, SatResult, SolverSession};
///
/// let mut sess = SolverSession::new();
/// let a = sess.pool_mut().var("a", 8);
/// let shared = {
///     let p = sess.pool_mut();
///     let c = p.const_u64(8, 10);
///     p.ult(a, c)
/// };
/// sess.assert_term(shared); // a < 10, shared by both goals
/// let g1 = {
///     let p = sess.pool_mut();
///     let c = p.const_u64(8, 7);
///     p.eq(a, c)
/// };
/// let g2 = {
///     let p = sess.pool_mut();
///     let c = p.const_u64(8, 12);
///     p.eq(a, c)
/// };
/// let (r1, _) = sess.check_assuming(&[g1], &Budget::unlimited());
/// assert!(r1.is_sat());
/// let (r2, _) = sess.check_assuming(&[g2], &Budget::unlimited());
/// assert_eq!(r2, SatResult::Unsat); // 12 < 10 is impossible
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverSession {
    pool: TermPool,
    blaster: BitBlaster,
    goals_checked: u64,
    reused_checks: u64,
}

impl SolverSession {
    /// Creates a session with an empty pool and a fresh blaster.
    pub fn new() -> SolverSession {
        SolverSession {
            pool: TermPool::new(),
            blaster: BitBlaster::new(),
            goals_checked: 0,
            reused_checks: 0,
        }
    }

    /// Creates a session over an existing pool (e.g. the symbolic
    /// engine's working pool, already holding the unrolled terms).
    pub fn from_pool(pool: TermPool) -> SolverSession {
        SolverSession {
            pool,
            blaster: BitBlaster::new(),
            goals_checked: 0,
            reused_checks: 0,
        }
    }

    /// The session's term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool (to build frame terms/goals).
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// The embedded blaster (introspection: CNF stats, attribution).
    pub fn blaster(&self) -> &BitBlaster {
        &self.blaster
    }

    /// Permanently asserts a 1-bit term (frame definitions, reset
    /// pins). Asserted terms constrain every later
    /// [`check_assuming`](Self::check_assuming) call.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not one bit wide.
    pub fn assert_term(&mut self, t: TermId) {
        self.blaster.assert_true(&self.pool, t);
    }

    /// Bit-blasts a 1-bit term and returns its literal *without*
    /// asserting it — the Tseitin definition clauses are added, the
    /// root literal stays free for use as an assumption.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not one bit wide.
    pub fn lit_of(&mut self, t: TermId) -> Lit {
        assert_eq!(self.pool.width(t), 1, "assumptions must be one bit wide");
        self.blaster.lits(&self.pool, t)[0]
    }

    /// Arms CDCL introspection on the embedded solver.
    pub fn enable_trace(&mut self) {
        self.blaster.solver_mut().enable_trace();
    }

    /// Takes the accumulated solve trace, if tracing is armed.
    pub fn take_trace(&mut self, k: usize) -> Option<SolveTrace> {
        self.blaster.solver_mut().take_trace(k)
    }

    /// Checks satisfiability of the asserted formula under `targets`
    /// (1-bit terms, conjoined as assumptions), bounded by `budget`.
    ///
    /// Returns the verdict plus the work *this call* consumed. The
    /// embedded solver's counters are cumulative across the session,
    /// so spent figures are delta-counted here — callers accumulate
    /// them exactly as they would for a fresh solver per goal.
    pub fn check_assuming(
        &mut self,
        targets: &[TermId],
        budget: &Budget,
    ) -> (SatResult, BudgetSpent) {
        let assumptions: Vec<Lit> = targets.iter().map(|&t| self.lit_of(t)).collect();
        let s = self.blaster.solver();
        let (c0, d0, p0) = (s.conflicts(), s.decisions(), s.propagations());
        let result = self
            .blaster
            .solver_mut()
            .solve_budgeted(&assumptions, budget);
        let s = self.blaster.solver();
        let spent = BudgetSpent {
            conflicts: s.conflicts() - c0,
            decisions: s.decisions() - d0,
            propagations: s.propagations() - p0,
        };
        if self.goals_checked > 0 {
            self.reused_checks += 1;
        }
        self.goals_checked += 1;
        (result, spent)
    }

    /// Total `check_assuming` calls on this session.
    pub fn goals_checked(&self) -> u64 {
        self.goals_checked
    }

    /// `check_assuming` calls that ran on a warm solver (every call
    /// after the first). `reused / checked` is the session-reuse rate
    /// reported as the `solver_session_reuse_milli` gauge.
    pub fn reused_checks(&self) -> u64 {
        self.reused_checks
    }

    /// Deterministic estimate of the session's memory footprint (see
    /// [`BitBlaster::approx_bytes`]), used for byte-budget eviction.
    pub fn approx_bytes(&self) -> u64 {
        self.blaster.approx_bytes()
    }

    /// CNF size statistics of the embedded blaster.
    pub fn cnf_stats(&self) -> &Cnf {
        self.blaster.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_telemetry::UnknownReason;

    /// Builds `a*b == product` over `w`-bit vars in the given pool.
    fn factor_goal(p: &mut TermPool, w: u32, product: u64) -> TermId {
        let a = p.var("a", w);
        let b = p.var("b", w);
        let m = p.mul(a, b);
        let c = p.const_u64(w, product);
        p.eq(m, c)
    }

    #[test]
    fn session_verdicts_match_fresh_solvers() {
        // Shared structure: a*b over 8 bits. Goals: different products.
        let products = [35u64, 36, 37, 251, 0];
        let mut sess = SolverSession::new();
        let shared_mul = {
            let p = sess.pool_mut();
            let a = p.var("a", 8);
            let b = p.var("b", 8);
            p.mul(a, b)
        };
        for &prod in &products {
            let goal = {
                let p = sess.pool_mut();
                let c = p.const_u64(8, prod);
                p.eq(shared_mul, c)
            };
            let (warm, _) = sess.check_assuming(&[goal], &Budget::unlimited());

            let mut p = TermPool::new();
            let goal = factor_goal(&mut p, 8, prod);
            let mut bb = BitBlaster::new();
            bb.assert_true(&p, goal);
            let fresh = bb.solver_mut().solve();
            assert_eq!(
                warm.is_sat(),
                fresh.is_sat(),
                "verdict mismatch for product {prod}"
            );
        }
        assert_eq!(sess.goals_checked(), products.len() as u64);
        assert_eq!(sess.reused_checks(), products.len() as u64 - 1);
    }

    #[test]
    fn unsat_goal_does_not_poison_the_session() {
        let mut sess = SolverSession::new();
        let a = sess.pool_mut().var("a", 4);
        // Assert a < 8 permanently.
        let cap = {
            let p = sess.pool_mut();
            let c = p.const_u64(4, 8);
            p.ult(a, c)
        };
        sess.assert_term(cap);
        // Goal 1: a == 12 → Unsat under the assertion.
        let g_unsat = {
            let p = sess.pool_mut();
            let c = p.const_u64(4, 12);
            p.eq(a, c)
        };
        let (r, _) = sess.check_assuming(&[g_unsat], &Budget::unlimited());
        assert_eq!(r, SatResult::Unsat);
        // Goal 2: a == 5 → still Sat on the same session.
        let g_sat = {
            let p = sess.pool_mut();
            let c = p.const_u64(4, 5);
            p.eq(a, c)
        };
        let (r, _) = sess.check_assuming(&[g_sat], &Budget::unlimited());
        assert!(r.is_sat());
    }

    #[test]
    fn folded_targets_degenerate_to_pinned_literals() {
        let mut sess = SolverSession::new();
        let t = sess.pool_mut().tru();
        let f = sess.pool_mut().fls();
        let (r, _) = sess.check_assuming(&[t], &Budget::unlimited());
        assert!(r.is_sat());
        let (r, _) = sess.check_assuming(&[f], &Budget::unlimited());
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    fn spent_is_per_call_not_cumulative() {
        let mut sess = SolverSession::new();
        let shared = {
            let p = sess.pool_mut();
            let a = p.var("a", 10);
            let b = p.var("b", 10);
            p.mul(a, b)
        };
        let mut last_spent = None;
        for prod in [391u64, 393, 397] {
            let goal = {
                let p = sess.pool_mut();
                let c = p.const_u64(10, prod);
                p.eq(shared, c)
            };
            let (_, spent) = sess.check_assuming(&[goal], &Budget::unlimited());
            // Delta-counted: per-call spent must not be monotonically
            // absorbing the whole session history.
            let total = sess.blaster().solver().conflicts();
            assert!(spent.conflicts <= total);
            last_spent = Some(spent);
        }
        // The final call's spent is bounded by the cumulative counter.
        assert!(last_spent.unwrap().conflicts <= sess.blaster().solver().conflicts());
    }

    #[test]
    fn budget_exhaustion_reports_this_calls_spent() {
        let mut sess = SolverSession::new();
        // Hard multiplication goal with a tiny conflict budget:
        // factor the prime 65521 with both factors in 2..256, so the
        // 16-bit product cannot wrap and the goal is genuinely UNSAT.
        let goal = {
            let p = sess.pool_mut();
            let a = p.var("a", 16);
            let b = p.var("b", 16);
            let m = p.mul(a, b);
            let one = p.const_u64(16, 1);
            let lim = p.const_u64(16, 256);
            let a_ok = {
                let lo = p.ult(one, a);
                let hi = p.ult(a, lim);
                p.and(lo, hi)
            };
            let b_ok = {
                let lo = p.ult(one, b);
                let hi = p.ult(b, lim);
                p.and(lo, hi)
            };
            let c = p.const_u64(16, 65_521); // prime: no factor pair
            let eq = p.eq(m, c);
            let both = p.and(a_ok, b_ok);
            p.and(eq, both)
        };
        let budget = Budget::unlimited().with_conflicts(3);
        let (r, spent) = sess.check_assuming(&[goal], &budget);
        match r {
            SatResult::Unknown {
                reason,
                spent: inner,
            } => {
                assert_eq!(reason, UnknownReason::Conflicts);
                assert_eq!(spent, inner, "delta counting must match solver's receipt");
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Warm retry on the same session with room to finish.
        let (r, spent2) = sess.check_assuming(&[goal], &Budget::unlimited());
        assert_eq!(r, SatResult::Unsat);
        // The retry's spent excludes the first call's work.
        assert!(spent2.conflicts <= sess.blaster().solver().conflicts() - spent.conflicts);
    }

    #[test]
    fn session_bytes_grow_with_blasting() {
        let mut sess = SolverSession::new();
        let empty = sess.approx_bytes();
        let goal = {
            let p = sess.pool_mut();
            let a = p.var("a", 32);
            let b = p.var("b", 32);
            let m = p.mul(a, b);
            let c = p.const_u64(32, 77);
            p.eq(m, c)
        };
        let _ = sess.lit_of(goal);
        assert!(sess.approx_bytes() > empty);
        assert!(sess.cnf_stats().num_clauses > 0);
    }
}
