//! Parallel portfolio racing of budget profiles.
//!
//! A portfolio poses the same query under several [`Budget`] profiles
//! at once — small-budget/restart-heavy probes alongside the full
//! budget — on scoped threads, and takes the first *definitive* answer.
//! Losers are cancelled cooperatively through the budget's abort flag
//! ([`Budget::with_abort`]).
//!
//! # Determinism
//!
//! The winner is chosen by the **canonical winner rule**: the lowest
//! profile index whose result is definitive at join time, *not* the
//! first to cross the finish line. A runner only raises the abort
//! flags of **higher**-indexed runners, so:
//!
//! * a runner with index `i` can only be aborted by some definitive
//!   runner `j < i` — and any such `j` outranks `i` anyway;
//! * therefore the winner was never aborted, ran its deterministic
//!   budget to its deterministic conclusion, and both the winner's
//!   identity and its result are pure functions of the query — at any
//!   thread count, on any scheduler.
//!
//! Losers above the winner may have been interrupted at an arbitrary
//! point; their results (and any solver state they mutated) must be
//! discarded, never reported.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What a portfolio race produced.
#[derive(Debug)]
pub struct RaceOutcome<R> {
    /// Lowest profile index with a definitive answer, or `None` when
    /// every profile came back indefinite.
    pub winner: Option<usize>,
    /// Every profile's result, by index. `None` only if a runner
    /// panicked.
    pub results: Vec<Option<R>>,
}

/// A runner in a portfolio race: receives its abort flag (to weave
/// into its [`Budget`](crate::Budget) via
/// [`with_abort`](crate::Budget::with_abort)) and returns its result.
pub type Runner<'a, R> = Box<dyn FnOnce(&Arc<AtomicBool>) -> R + Send + 'a>;

/// Races `runners` on scoped threads; `definitive` classifies results.
///
/// When runner `j` finishes with a definitive answer it raises the
/// abort flags of all runners with index `> j`. At join, the winner is
/// the lowest definitive index (see the module docs for why this is
/// deterministic). With a single runner no threads are spawned.
pub fn race<R: Send>(
    runners: Vec<Runner<'_, R>>,
    definitive: impl Fn(&R) -> bool + Sync,
) -> RaceOutcome<R> {
    let n = runners.len();
    if n <= 1 {
        let flag = Arc::new(AtomicBool::new(false));
        let results: Vec<Option<R>> = runners.into_iter().map(|r| Some(r(&flag))).collect();
        let winner = results
            .iter()
            .position(|r| r.as_ref().is_some_and(&definitive));
        return RaceOutcome { winner, results };
    }
    let flags: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for (i, runner) in runners.into_iter().enumerate() {
            let flags = &flags;
            let slots = &slots;
            let definitive = &definitive;
            s.spawn(move || {
                let r = runner(&flags[i]);
                if definitive(&r) {
                    for f in &flags[i + 1..] {
                        f.store(true, Ordering::Relaxed);
                    }
                }
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    let results: Vec<Option<R>> = slots.into_iter().map(|m| m.into_inner().unwrap()).collect();
    let winner = results
        .iter()
        .position(|r| r.as_ref().is_some_and(&definitive));
    RaceOutcome { winner, results }
}

/// The standard budget ladder for an `n`-profile portfolio: profile
/// `i` gets the base counter ceilings divided by `4^(n-1-i)` (minimum
/// 1), so early profiles are cheap restart-heavy probes and the last
/// profile carries the full budget. Structural ceilings (term nodes,
/// unroll depth) and the wall deadline ride along unchanged.
pub fn budget_ladder(base: &crate::Budget, n: u32) -> Vec<crate::Budget> {
    (0..n)
        .map(|i| {
            let div = 4u64.saturating_pow(n - 1 - i);
            let mut b = base.clone();
            if let Some(c) = base.conflicts() {
                b = b.with_conflicts((c / div).max(1));
            }
            if let Some(d) = base.decisions() {
                b = b.with_decisions((d / div).max(1));
            }
            if let Some(p) = base.propagations() {
                b = b.with_propagations((p / div).max(1));
            }
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_winner_is_lowest_definitive_index() {
        // Profile 1 finishes first and definitively, but profile 0 is
        // also definitive: 0 wins at join regardless of timing.
        let runners: Vec<Runner<'_, u32>> = vec![
            Box::new(|_flag| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                10
            }),
            Box::new(|_flag| 11),
        ];
        let out = race(runners, |r| *r < 100);
        assert_eq!(out.winner, Some(0));
        assert_eq!(out.results[0], Some(10));
        assert_eq!(out.results[1], Some(11));
    }

    #[test]
    fn definitive_answer_aborts_higher_profiles_only() {
        // Runner 0 answers definitively at once; runner 1 spins until
        // its abort flag is raised — the race can only terminate if the
        // cancellation actually propagates upward.
        let runners: Vec<Runner<'_, i32>> = vec![
            Box::new(|_flag| 1),
            Box::new(|flag| {
                while !flag.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
                -1 // aborted: indefinite
            }),
        ];
        let out = race(runners, |r| *r > 0);
        assert_eq!(out.winner, Some(0));
        assert_eq!(out.results[1], Some(-1));
    }

    #[test]
    fn all_indefinite_yields_no_winner() {
        let runners: Vec<Runner<'_, i32>> = vec![Box::new(|_| -1), Box::new(|_| -2)];
        let out = race(runners, |r| *r > 0);
        assert_eq!(out.winner, None);
        assert_eq!(out.results, vec![Some(-1), Some(-2)]);
    }

    #[test]
    fn single_runner_races_inline() {
        let runners: Vec<Runner<'_, u8>> = vec![Box::new(|_| 7)];
        let out = race(runners, |r| *r == 7);
        assert_eq!(out.winner, Some(0));
    }

    #[test]
    fn budget_ladder_scales_counters_geometrically() {
        let base = crate::Budget::unlimited()
            .with_conflicts(16_000)
            .with_unroll_depth(8);
        let ladder = budget_ladder(&base, 3);
        assert_eq!(ladder.len(), 3);
        assert_eq!(ladder[0].conflicts(), Some(1_000));
        assert_eq!(ladder[1].conflicts(), Some(4_000));
        assert_eq!(ladder[2].conflicts(), Some(16_000));
        for b in &ladder {
            assert_eq!(b.unroll_depth(), Some(8));
        }
        // An unlimited base stays unlimited at every rung.
        let ladder = budget_ladder(&crate::Budget::unlimited(), 2);
        assert!(ladder.iter().all(|b| b.conflicts().is_none()));
    }
}
