//! Bit-vector SMT solving for SymbFuzz's guidance engine.
//!
//! The paper feeds *dependency equations* — control-register next-state
//! values expressed as functions of input pins (§4.4.2) — to an SMT
//! solver (z3) and turns the models into UVM sequencer constraints.
//! z3 is not available offline, so this crate implements the QF_BV
//! fragment the paper actually needs, the textbook way:
//!
//! * [`TermPool`] — hash-consed bit-vector terms with constant folding
//!   and identity simplification;
//! * [`bitblast`](BitBlaster) — Tseitin transformation of terms into
//!   CNF (ripple-carry adders, shift-and-add multipliers, mux trees);
//! * [`SatSolver`] — a CDCL SAT solver with two-watched-literal
//!   propagation, VSIDS decision ordering, first-UIP clause learning
//!   and Luby restarts;
//! * [`BvSolver`] — the user-facing facade: assert 1-bit terms, check
//!   satisfiability, read back a [`Model`] mapping variables to
//!   concrete [`LogicVec`](symbfuzz_logic::LogicVec) values. Misuse
//!   surfaces as [`SolverError`], never a panic.
//! * [`Budget`] — optional resource ceilings (conflicts, decisions,
//!   propagations, term nodes, unroll depth, opt-in wall clock, and a
//!   cooperative abort flag for portfolio racing) that turn checks
//!   into three-valued results with [`SatOutcome::Unknown`].
//! * [`SolverSession`] — assumption-based incremental solving: one
//!   warm solver shared across related goals, per-goal targets as
//!   assumption literals, learned clauses retained between checks.
//!
//! # Examples
//!
//! Solve the paper's Eqn. 1, `((in1 & in2) + in3) && !in3`:
//!
//! ```
//! use symbfuzz_smt::{BvSolver, SatOutcome, SolverError};
//!
//! # fn main() -> Result<(), SolverError> {
//! let mut s = BvSolver::new();
//! let in1 = s.pool_mut().var("in1", 8);
//! let in2 = s.pool_mut().var("in2", 8);
//! let in3 = s.pool_mut().var("in3", 8);
//! let p = s.pool_mut();
//! let sum = { let a = p.and(in1, in2); p.add(a, in3) };
//! let nonzero = p.red_or(sum);
//! let in3_zero = { let nz = p.red_or(in3); p.not(nz) };
//! let goal = p.and(nonzero, in3_zero);
//! s.assert(goal)?;
//! let SatOutcome::Sat(model) = s.check()? else { panic!("must be satisfiable") };
//! let v3 = model.value("in3").unwrap().to_u64().unwrap();
//! assert_eq!(v3, 0); // in3 must be zero, in1&in2 nonzero
//! # Ok(())
//! # }
//! ```

mod bitblast;
mod budget;
mod portfolio;
mod sat;
mod session;
mod solver;
mod term;
mod trace;

pub use bitblast::{BitBlaster, Cnf};
pub use budget::{Budget, BudgetSpent};
pub use portfolio::{budget_ladder, race, RaceOutcome, Runner};
pub use sat::{Lit, SatResult, SatSolver};
pub use session::SolverSession;
pub use solver::{render_term, BvSolver, Model, SatOutcome, SolverError};
pub use term::{TermId, TermKind, TermPool};
pub use trace::{
    trace_bucket, trace_hist_quantile, SolveTrace, RESTART_TIMELINE_CAP, TRACE_HIST_BUCKETS,
};
