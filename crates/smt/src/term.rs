//! Hash-consed QF_BV terms with constant folding.

use std::collections::{HashMap, HashSet};
use symbfuzz_logic::LogicVec;

/// One FNV-1a step folding `x` into hash state `h`.
fn fnv(h: u64, x: u64) -> u64 {
    let mut h = h;
    for i in 0..8 {
        h ^= (x >> (8 * i)) & 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A stable discriminant per [`TermKind`] for structural hashing
/// (independent of Rust's derived discriminants).
fn kind_tag(k: &TermKind) -> u8 {
    match k {
        TermKind::Const(_) => 0,
        TermKind::Var(..) => 1,
        TermKind::Not(_) => 2,
        TermKind::And(..) => 3,
        TermKind::Or(..) => 4,
        TermKind::Xor(..) => 5,
        TermKind::Add(..) => 6,
        TermKind::Sub(..) => 7,
        TermKind::Mul(..) => 8,
        TermKind::Eq(..) => 9,
        TermKind::Ult(..) => 10,
        TermKind::Ite(..) => 11,
        TermKind::Extract { .. } => 12,
        TermKind::ConcatPair(..) => 13,
        TermKind::ShlConst(..) => 14,
        TermKind::LshrConst(..) => 15,
        TermKind::RedAnd(_) => 16,
        TermKind::RedOr(_) => 17,
        TermKind::RedXor(_) => 18,
    }
}

/// Index of a term in a [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The pool index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shape of a term. All bit-vector values are unsigned; constants
/// are fully defined (`X`/`Z` never enter the solver — the paper's
/// engine "constrains solving undefined pin values" by *choosing*
/// concrete values for them, §3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// A constant (no unknown bits).
    Const(LogicVec),
    /// A free variable with a name and width.
    Var(String, u32),
    /// Bitwise NOT.
    Not(TermId),
    /// Bitwise AND.
    And(TermId, TermId),
    /// Bitwise OR.
    Or(TermId, TermId),
    /// Bitwise XOR.
    Xor(TermId, TermId),
    /// Two's-complement addition (wrapping).
    Add(TermId, TermId),
    /// Two's-complement subtraction (wrapping).
    Sub(TermId, TermId),
    /// Multiplication (wrapping).
    Mul(TermId, TermId),
    /// Equality; 1-bit result.
    Eq(TermId, TermId),
    /// Unsigned less-than; 1-bit result.
    Ult(TermId, TermId),
    /// If-then-else; `cond` is 1 bit.
    Ite(TermId, TermId, TermId),
    /// `arg[lo + width - 1 : lo]`.
    Extract {
        /// Source term.
        arg: TermId,
        /// Low bit.
        lo: u32,
        /// Result width.
        width: u32,
    },
    /// `{hi, lo}` concatenation.
    ConcatPair(TermId, TermId),
    /// Logical shift left by a constant.
    ShlConst(TermId, u32),
    /// Logical shift right by a constant.
    LshrConst(TermId, u32),
    /// AND-reduction; 1-bit result.
    RedAnd(TermId),
    /// OR-reduction; 1-bit result.
    RedOr(TermId),
    /// XOR-reduction; 1-bit result.
    RedXor(TermId),
}

/// A hash-consing arena of terms.
///
/// Construction methods fold constants eagerly and apply cheap identity
/// rewrites (`x & 0 = 0`, `x ^ x = 0`, `ite(c, t, t) = t`, …), so
/// structurally equal terms share a [`TermId`].
#[derive(Debug, Default, Clone)]
pub struct TermPool {
    terms: Vec<(TermKind, u32)>,
    intern: HashMap<TermKind, TermId>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of distinct terms created.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The kind of a term.
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.terms[t.index()].0
    }

    /// The width of a term.
    pub fn width(&self, t: TermId) -> u32 {
        self.terms[t.index()].1
    }

    /// The constant value of a term, if it is a constant.
    pub fn as_const(&self, t: TermId) -> Option<&LogicVec> {
        match self.kind(t) {
            TermKind::Const(v) => Some(v),
            _ => None,
        }
    }

    fn mk(&mut self, kind: TermKind, width: u32) -> TermId {
        if let Some(id) = self.intern.get(&kind) {
            return *id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push((kind.clone(), width));
        self.intern.insert(kind, id);
        id
    }

    /// A constant term.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains `X`/`Z` bits.
    pub fn constant(&mut self, value: LogicVec) -> TermId {
        assert!(
            !value.has_unknown(),
            "SMT constants must be fully defined, got {value}"
        );
        let w = value.width();
        self.mk(TermKind::Const(value), w)
    }

    /// A `width`-bit constant from a `u64`.
    pub fn const_u64(&mut self, width: u32, value: u64) -> TermId {
        self.constant(LogicVec::from_u64(width, value))
    }

    /// The 1-bit constant true.
    pub fn tru(&mut self) -> TermId {
        self.const_u64(1, 1)
    }

    /// The 1-bit constant false.
    pub fn fls(&mut self) -> TermId {
        self.const_u64(1, 0)
    }

    /// A named free variable. Re-using a name with the same width
    /// returns the same term.
    ///
    /// # Panics
    ///
    /// Panics if the name was already used with a different width.
    pub fn var(&mut self, name: impl Into<String>, width: u32) -> TermId {
        let name = name.into();
        let kind = TermKind::Var(name.clone(), width);
        if let Some(id) = self.intern.get(&kind) {
            return *id;
        }
        // Detect width clashes among existing vars of the same name.
        for (k, _) in &self.terms {
            if let TermKind::Var(n, w) = k {
                assert!(
                    *n != name || *w == width,
                    "variable `{name}` redeclared with width {width} (was {w})"
                );
            }
        }
        self.mk(kind, width)
    }

    /// All variables in the pool as `(name, width)`.
    pub fn vars(&self) -> Vec<(String, u32)> {
        self.terms
            .iter()
            .filter_map(|(k, _)| match k {
                TermKind::Var(n, w) => Some((n.clone(), *w)),
                _ => None,
            })
            .collect()
    }

    fn binop_width(&self, a: TermId, b: TermId) -> u32 {
        self.width(a).max(self.width(b))
    }

    /// Zero-extends or truncates `t` to `width`.
    pub fn resize(&mut self, t: TermId, width: u32) -> TermId {
        let w = self.width(t);
        if w == width {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let v = v.resized(width);
            return self.constant(v);
        }
        if width < w {
            return self.extract(t, 0, width);
        }
        let zeros = self.const_u64(width - w, 0);
        self.concat(zeros, t)
    }

    fn fold2(
        &mut self,
        a: TermId,
        b: TermId,
        f: impl Fn(&LogicVec, &LogicVec) -> LogicVec,
    ) -> Option<TermId> {
        let (ca, cb) = (self.as_const(a).cloned(), self.as_const(b).cloned());
        match (ca, cb) {
            (Some(x), Some(y)) => Some(self.constant(f(&x, &y))),
            _ => None,
        }
    }

    /// Bitwise NOT.
    pub fn not(&mut self, t: TermId) -> TermId {
        if let Some(v) = self.as_const(t) {
            let v = !v;
            return self.constant(v);
        }
        if let TermKind::Not(inner) = self.kind(t) {
            return *inner;
        }
        let w = self.width(t);
        self.mk(TermKind::Not(t), w)
    }

    /// Bitwise AND (operands zero-extended to the wider width).
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return a;
        }
        if let Some(t) = self.fold2(a, b, |x, y| x & y) {
            return t;
        }
        for (x, y) in [(a, b), (b, a)] {
            if let Some(v) = self.as_const(x) {
                if v.to_u64() == Some(0) {
                    return x; // x & 0 = 0
                }
                if v.iter_bits().all(|bit| bit == symbfuzz_logic::Bit::One) {
                    return y; // x & 1..1 = x
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::And(a, b), w)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return a;
        }
        if let Some(t) = self.fold2(a, b, |x, y| x | y) {
            return t;
        }
        for (x, y) in [(a, b), (b, a)] {
            if let Some(v) = self.as_const(x) {
                if v.to_u64() == Some(0) {
                    return y; // x | 0 = x
                }
                if v.iter_bits().all(|bit| bit == symbfuzz_logic::Bit::One) {
                    return x; // x | 1..1 = 1..1
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Or(a, b), w)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return self.const_u64(w, 0);
        }
        if let Some(t) = self.fold2(a, b, |x, y| x ^ y) {
            return t;
        }
        for (x, y) in [(a, b), (b, a)] {
            if let Some(v) = self.as_const(x) {
                if v.to_u64() == Some(0) {
                    return y; // x ^ 0 = x
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Xor(a, b), w)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if let Some(t) = self.fold2(a, b, |x, y| x.add(y)) {
            return t;
        }
        for (x, y) in [(a, b), (b, a)] {
            if self.as_const(x).and_then(|v| v.to_u64()) == Some(0) {
                return y;
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Add(a, b), w)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return self.const_u64(w, 0);
        }
        if let Some(t) = self.fold2(a, b, |x, y| x.sub(y)) {
            return t;
        }
        if self.as_const(b).and_then(|v| v.to_u64()) == Some(0) {
            return a;
        }
        self.mk(TermKind::Sub(a, b), w)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if let Some(t) = self.fold2(a, b, |x, y| x.mul(y)) {
            return t;
        }
        for (x, y) in [(a, b), (b, a)] {
            if let Some(c) = self.as_const(x).and_then(|v| v.to_u64()) {
                if c == 0 {
                    return x;
                }
                if c == 1 {
                    return y;
                }
            }
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Mul(a, b), w)
    }

    /// Equality (1-bit result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return self.tru();
        }
        if let Some(t) = self.fold2(a, b, |x, y| {
            LogicVec::from_u64(1, (x.logic_eq(y) == symbfuzz_logic::Bit::One) as u64)
        }) {
            return t;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(TermKind::Eq(a, b), 1)
    }

    /// Disequality (1-bit result).
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.binop_width(a, b);
        let (a, b) = (self.resize(a, w), self.resize(b, w));
        if a == b {
            return self.fls();
        }
        if let Some(t) = self.fold2(a, b, |x, y| {
            LogicVec::from_u64(1, (x.ult(y) == symbfuzz_logic::Bit::One) as u64)
        }) {
            return t;
        }
        self.mk(TermKind::Ult(a, b), 1)
    }

    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not(gt)
    }

    /// If-then-else; branches resized to the wider width.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must be one bit");
        let w = self.binop_width(then, els);
        let (then, els) = (self.resize(then, w), self.resize(els, w));
        if then == els {
            return then;
        }
        if let Some(c) = self.as_const(cond).and_then(|v| v.to_u64()) {
            return if c == 1 { then } else { els };
        }
        self.mk(TermKind::Ite(cond, then, els), w)
    }

    /// Bit extraction `t[lo + width - 1 : lo]`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the operand width.
    pub fn extract(&mut self, t: TermId, lo: u32, width: u32) -> TermId {
        let w = self.width(t);
        assert!(lo + width <= w, "extract [{lo}+:{width}] out of {w} bits");
        if lo == 0 && width == w {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let v = v.slice(lo, width);
            return self.constant(v);
        }
        self.mk(TermKind::Extract { arg: t, lo, width }, width)
    }

    /// Concatenation `{hi, lo}`.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let w = self.width(hi) + self.width(lo);
        if let Some(t) = self.fold2(hi, lo, LogicVec::concat) {
            return t;
        }
        self.mk(TermKind::ConcatPair(hi, lo), w)
    }

    /// Left shift by a constant (width preserved).
    pub fn shl_const(&mut self, t: TermId, amount: u32) -> TermId {
        if amount == 0 {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let v = v.shl(amount);
            return self.constant(v);
        }
        let w = self.width(t);
        self.mk(TermKind::ShlConst(t, amount), w)
    }

    /// Logical right shift by a constant (width preserved).
    pub fn lshr_const(&mut self, t: TermId, amount: u32) -> TermId {
        if amount == 0 {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let v = v.lshr(amount);
            return self.constant(v);
        }
        let w = self.width(t);
        self.mk(TermKind::LshrConst(t, amount), w)
    }

    /// Shift left by a variable amount, lowered to an ite ladder over
    /// the amount's bits.
    pub fn shl(&mut self, t: TermId, amount: TermId) -> TermId {
        self.var_shift(t, amount, true)
    }

    /// Logical shift right by a variable amount.
    pub fn lshr(&mut self, t: TermId, amount: TermId) -> TermId {
        self.var_shift(t, amount, false)
    }

    fn var_shift(&mut self, t: TermId, amount: TermId, left: bool) -> TermId {
        if let Some(a) = self.as_const(amount).and_then(|v| v.to_u64()) {
            let a = a.min(self.width(t) as u64) as u32;
            return if left {
                self.shl_const(t, a)
            } else {
                self.lshr_const(t, a)
            };
        }
        let mut acc = t;
        let aw = self.width(amount).min(16);
        for bit in 0..aw {
            let sel = self.extract(amount, bit, 1);
            let shifted = if left {
                self.shl_const(acc, 1 << bit)
            } else {
                self.lshr_const(acc, 1 << bit)
            };
            acc = self.ite(sel, shifted, acc);
        }
        acc
    }

    /// AND-reduction (1-bit result).
    pub fn red_and(&mut self, t: TermId) -> TermId {
        if self.width(t) == 1 {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let b = v.reduce_and() == symbfuzz_logic::Bit::One;
            return self.const_u64(1, b as u64);
        }
        self.mk(TermKind::RedAnd(t), 1)
    }

    /// OR-reduction (1-bit result) — also the "truthiness" of a vector.
    pub fn red_or(&mut self, t: TermId) -> TermId {
        if self.width(t) == 1 {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let b = v.reduce_or() == symbfuzz_logic::Bit::One;
            return self.const_u64(1, b as u64);
        }
        self.mk(TermKind::RedOr(t), 1)
    }

    /// XOR-reduction (1-bit result).
    pub fn red_xor(&mut self, t: TermId) -> TermId {
        if self.width(t) == 1 {
            return t;
        }
        if let Some(v) = self.as_const(t) {
            let b = v.reduce_xor() == symbfuzz_logic::Bit::One;
            return self.const_u64(1, b as u64);
        }
        self.mk(TermKind::RedXor(t), 1)
    }

    /// Boolean AND over 1-bit terms (alias of [`and`](Self::and)).
    pub fn band(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(a, b)
    }

    /// The direct children of a term, in operand order.
    pub fn children(&self, t: TermId) -> Vec<TermId> {
        match self.kind(t) {
            TermKind::Const(_) | TermKind::Var(..) => Vec::new(),
            TermKind::Not(a)
            | TermKind::ShlConst(a, _)
            | TermKind::LshrConst(a, _)
            | TermKind::RedAnd(a)
            | TermKind::RedOr(a)
            | TermKind::RedXor(a)
            | TermKind::Extract { arg: a, .. } => vec![*a],
            TermKind::And(a, b)
            | TermKind::Or(a, b)
            | TermKind::Xor(a, b)
            | TermKind::Add(a, b)
            | TermKind::Sub(a, b)
            | TermKind::Mul(a, b)
            | TermKind::Eq(a, b)
            | TermKind::Ult(a, b)
            | TermKind::ConcatPair(a, b) => vec![*a, *b],
            TermKind::Ite(c, a, b) => vec![*c, *a, *b],
        }
    }

    /// Pool-independent structural digest of `t`: a post-order FNV-1a
    /// hash over operator tags, widths, constant bits and variable
    /// names. Structurally equal terms hash equally even when they
    /// live in different pools, which is what the cross-goal affinity
    /// analysis compares. `memo` caches per-term digests across calls
    /// against the same pool.
    pub fn structural_hash(&self, t: TermId, memo: &mut HashMap<TermId, u64>) -> u64 {
        if let Some(&h) = memo.get(&t) {
            return h;
        }
        // Explicit post-order stack: unrolled terms nest thousands
        // deep and must not overflow the call stack.
        let mut stack = vec![(t, false)];
        while let Some((n, expanded)) = stack.pop() {
            if memo.contains_key(&n) {
                continue;
            }
            if !expanded {
                stack.push((n, true));
                for c in self.children(n) {
                    if !memo.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let mut h = fnv(0xcbf2_9ce4_8422_2325, kind_tag(self.kind(n)) as u64);
            h = fnv(h, self.width(n) as u64);
            match self.kind(n) {
                TermKind::Const(v) => {
                    for b in v.iter_bits() {
                        h = fnv(h, (b == symbfuzz_logic::Bit::One) as u64);
                    }
                }
                TermKind::Var(name, _) => {
                    for byte in name.bytes() {
                        h = fnv(h, byte as u64);
                    }
                }
                TermKind::Extract { lo, width, .. } => {
                    h = fnv(h, *lo as u64);
                    h = fnv(h, *width as u64);
                }
                TermKind::ShlConst(_, sh) | TermKind::LshrConst(_, sh) => {
                    h = fnv(h, *sh as u64);
                }
                _ => {}
            }
            let mut child_hashes: Vec<u64> = self.children(n).iter().map(|c| memo[c]).collect();
            // Commutative operators are normalised by pool-local id
            // order, which is not pool-independent — hash their
            // children order-insensitively instead.
            if matches!(
                self.kind(n),
                TermKind::And(..)
                    | TermKind::Or(..)
                    | TermKind::Xor(..)
                    | TermKind::Add(..)
                    | TermKind::Mul(..)
                    | TermKind::Eq(..)
            ) {
                child_hashes.sort_unstable();
            }
            for ch in child_hashes {
                h = fnv(h, ch);
            }
            memo.insert(n, h);
        }
        memo[&t]
    }

    /// Structural digests of every subterm reachable from `roots`,
    /// deduplicated. Feeds the affinity sketches of the solver
    /// introspection layer.
    pub fn subterm_digests(&self, roots: &[TermId], memo: &mut HashMap<TermId, u64>) -> Vec<u64> {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut stack: Vec<TermId> = roots.to_vec();
        while let Some(t) = stack.pop() {
            if seen.insert(t) {
                stack.extend(self.children(t));
            }
        }
        let mut out: Vec<u64> = seen
            .into_iter()
            .map(|t| self.structural_hash(t, memo))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluates a term under an assignment of variables to values.
    /// Used for model validation and tests.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env`.
    pub fn eval(&self, t: TermId, env: &HashMap<String, LogicVec>) -> LogicVec {
        match self.kind(t) {
            TermKind::Const(v) => v.clone(),
            TermKind::Var(n, w) => env
                .get(n)
                .unwrap_or_else(|| panic!("missing variable `{n}` in eval env"))
                .resized(*w),
            TermKind::Not(a) => !&self.eval(*a, env),
            TermKind::And(a, b) => &self.eval(*a, env) & &self.eval(*b, env),
            TermKind::Or(a, b) => &self.eval(*a, env) | &self.eval(*b, env),
            TermKind::Xor(a, b) => &self.eval(*a, env) ^ &self.eval(*b, env),
            TermKind::Add(a, b) => self.eval(*a, env).add(&self.eval(*b, env)),
            TermKind::Sub(a, b) => self.eval(*a, env).sub(&self.eval(*b, env)),
            TermKind::Mul(a, b) => self.eval(*a, env).mul(&self.eval(*b, env)),
            TermKind::Eq(a, b) => LogicVec::from_u64(
                1,
                (self.eval(*a, env).logic_eq(&self.eval(*b, env)) == symbfuzz_logic::Bit::One)
                    as u64,
            ),
            TermKind::Ult(a, b) => LogicVec::from_u64(
                1,
                (self.eval(*a, env).ult(&self.eval(*b, env)) == symbfuzz_logic::Bit::One) as u64,
            ),
            TermKind::Ite(c, a, b) => {
                if self.eval(*c, env).to_u64() == Some(1) {
                    self.eval(*a, env)
                } else {
                    self.eval(*b, env)
                }
            }
            TermKind::Extract { arg, lo, width } => self.eval(*arg, env).slice(*lo, *width),
            TermKind::ConcatPair(h, l) => {
                LogicVec::concat(&self.eval(*h, env), &self.eval(*l, env))
            }
            TermKind::ShlConst(a, n) => self.eval(*a, env).shl(*n),
            TermKind::LshrConst(a, n) => self.eval(*a, env).lshr(*n),
            TermKind::RedAnd(a) => LogicVec::from_bit(self.eval(*a, env).reduce_and()),
            TermKind::RedOr(a) => LogicVec::from_bit(self.eval(*a, env).reduce_or()),
            TermKind::RedXor(a) => LogicVec::from_bit(self.eval(*a, env).reduce_xor()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_structure() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let b = p.var("b", 8);
        let t1 = p.and(a, b);
        let t2 = p.and(b, a); // commutative normalisation
        assert_eq!(t1, t2);
        assert_eq!(p.var("a", 8), a);
    }

    #[test]
    fn structural_hash_is_pool_independent() {
        // Same structure built in two pools (in different construction
        // orders, so the TermIds differ) hashes identically.
        let mut p1 = TermPool::new();
        let mut p2 = TermPool::new();
        let t1 = {
            let a = p1.var("a", 8);
            let b = p1.var("b", 8);
            let s = p1.add(a, b);
            p1.red_or(s)
        };
        let t2 = {
            let _pad = p2.var("z", 3); // shift the id space
            let b = p2.var("b", 8);
            let a = p2.var("a", 8);
            let s = p2.add(a, b);
            p2.red_or(s)
        };
        assert_ne!(t1, t2);
        let mut m1 = HashMap::new();
        let mut m2 = HashMap::new();
        assert_eq!(
            p1.structural_hash(t1, &mut m1),
            p2.structural_hash(t2, &mut m2)
        );
        // Different structure hashes differently.
        let t3 = {
            let a = p1.var("a", 8);
            let b = p1.var("b", 8);
            let s = p1.sub(a, b);
            p1.red_or(s)
        };
        assert_ne!(
            p1.structural_hash(t1, &mut m1),
            p1.structural_hash(t3, &mut m1)
        );
    }

    #[test]
    fn subterm_digests_are_shared_between_overlapping_terms() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let b = p.var("b", 8);
        let shared = p.add(a, b);
        let t1 = p.red_or(shared);
        let t2 = p.red_xor(shared);
        let mut memo = HashMap::new();
        let d1 = p.subterm_digests(&[t1], &mut memo);
        let d2 = p.subterm_digests(&[t2], &mut memo);
        let common: Vec<_> = d1.iter().filter(|h| d2.contains(h)).collect();
        // a, b and a+b are shared; the reduction roots are not.
        assert!(common.len() >= 3, "shared subterms not detected");
        assert!(d1.len() > common.len());
    }

    #[test]
    fn deep_terms_hash_without_stack_overflow() {
        let mut p = TermPool::new();
        let mut t = p.var("x", 4);
        for _ in 0..50_000 {
            let one = p.const_u64(4, 1);
            t = p.add(t, one);
        }
        let mut memo = HashMap::new();
        let h = p.structural_hash(t, &mut memo);
        assert_ne!(h, 0);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let five = p.const_u64(8, 5);
        let three = p.const_u64(8, 3);
        let sum = p.add(five, three);
        assert_eq!(p.as_const(sum).unwrap().to_u64(), Some(8));
        let eq = p.eq(sum, five);
        assert_eq!(p.as_const(eq).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn identity_rewrites() {
        let mut p = TermPool::new();
        let a = p.var("a", 4);
        let zero = p.const_u64(4, 0);
        let ones = p.const_u64(4, 0xF);
        assert_eq!(p.and(a, zero), zero);
        assert_eq!(p.and(a, ones), a);
        assert_eq!(p.or(a, zero), a);
        assert_eq!(p.xor(a, a), zero);
        assert_eq!(p.add(a, zero), a);
        assert_eq!(p.mul(a, zero), zero);
        let n = p.not(a);
        assert_eq!(p.not(n), a); // double negation
        let t = p.tru();
        assert_eq!(p.ite(t, a, zero), a);
    }

    #[test]
    fn widths_propagate() {
        let mut p = TermPool::new();
        let a = p.var("a", 4);
        let b = p.var("b", 8);
        let s = p.add(a, b);
        assert_eq!(p.width(s), 8);
        let e = p.eq(a, b);
        assert_eq!(p.width(e), 1);
        let c = p.concat(a, b);
        assert_eq!(p.width(c), 12);
        let x = p.extract(c, 4, 6);
        assert_eq!(p.width(x), 6);
    }

    #[test]
    #[should_panic(expected = "must be fully defined")]
    fn rejects_x_constants() {
        let mut p = TermPool::new();
        p.constant(LogicVec::xes(4));
    }

    #[test]
    fn eval_matches_construction() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let b = p.var("b", 8);
        let expr = {
            let s = p.add(a, b);
            let c = p.const_u64(8, 100);
            p.ult(s, c)
        };
        let mut env = HashMap::new();
        env.insert("a".into(), LogicVec::from_u64(8, 30));
        env.insert("b".into(), LogicVec::from_u64(8, 40));
        assert_eq!(p.eval(expr, &env).to_u64(), Some(1));
        env.insert("b".into(), LogicVec::from_u64(8, 90));
        assert_eq!(p.eval(expr, &env).to_u64(), Some(0)); // 120 < 100 is false
    }

    #[test]
    fn variable_shift_ladder() {
        let mut p = TermPool::new();
        let a = p.var("a", 8);
        let n = p.var("n", 3);
        let sh = p.shl(a, n);
        let mut env = HashMap::new();
        env.insert("a".into(), LogicVec::from_u64(8, 0b11));
        env.insert("n".into(), LogicVec::from_u64(3, 5));
        assert_eq!(p.eval(sh, &env).to_u64(), Some(0b0110_0000));
    }
}
