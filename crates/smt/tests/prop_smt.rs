//! Property tests: the CDCL solver must agree with brute force on small
//! random CNFs, and bit-blasted arithmetic must agree with `u64`
//! semantics.

use proptest::prelude::*;
use symbfuzz_smt::{BvSolver, Lit, SatOutcome, SatResult, SatSolver};

/// Brute-force satisfiability for ≤ 16 variables.
fn brute_force(num_vars: u32, clauses: &[Vec<(u32, bool)>]) -> bool {
    for m in 0u32..(1 << num_vars) {
        let ok = clauses
            .iter()
            .all(|c| c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos));
        if ok {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdcl_agrees_with_brute_force(
        num_vars in 1u32..10,
        clause_data in proptest::collection::vec(
            proptest::collection::vec((0u32..10, any::<bool>()), 1..4), 1..30),
    ) {
        let clauses: Vec<Vec<(u32, bool)>> = clause_data
            .into_iter()
            .map(|c| c.into_iter().map(|(v, p)| (v % num_vars, p)).collect())
            .collect();
        let mut solver = SatSolver::new();
        for _ in 0..num_vars {
            solver.new_var();
        }
        for c in &clauses {
            let lits: Vec<Lit> = c.iter().map(|&(v, p)| Lit::new(v, p)).collect();
            solver.add_clause(&lits);
        }
        let expected = brute_force(num_vars, &clauses);
        match solver.solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                // The model must actually satisfy every clause.
                for c in &clauses {
                    prop_assert!(c.iter().any(|&(v, p)| model[v as usize] == p),
                        "model does not satisfy clause {c:?}");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
            SatResult::Unknown { .. } => prop_assert!(false, "unlimited solve returned Unknown"),
        }
    }

    #[test]
    fn blasted_add_sub_mul_match_u64(a: u64, b: u64, width in 1u32..=10) {
        let m = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        let (a, b) = (a & m, b & m);
        for op in 0..3 {
            let mut s = BvSolver::new();
            let va = s.pool_mut().var("a", width);
            let vb = s.pool_mut().var("b", width);
            let expected = match op {
                0 => a.wrapping_add(b) & m,
                1 => a.wrapping_sub(b) & m,
                _ => a.wrapping_mul(b) & m,
            };
            let goal = {
                let p = s.pool_mut();
                let ca = p.const_u64(width, a);
                let cb = p.const_u64(width, b);
                let ea = p.eq(va, ca);
                let eb = p.eq(vb, cb);
                let r = match op {
                    0 => p.add(va, vb),
                    1 => p.sub(va, vb),
                    _ => p.mul(va, vb),
                };
                let ce = p.const_u64(width, expected);
                let er = p.eq(r, ce);
                let both = p.and(ea, eb);
                p.and(both, er)
            };
            s.assert(goal).unwrap();
            prop_assert!(s.check().unwrap().is_sat(), "op {op}: {a} ? {b} != {expected} at width {width}");
        }
    }

    #[test]
    fn blasted_comparison_matches_u64(a: u64, b: u64, width in 1u32..=12) {
        let m = (1u64 << width) - 1;
        let (a, b) = (a & m, b & m);
        let mut s = BvSolver::new();
        let va = s.pool_mut().var("a", width);
        let goal = {
            let p = s.pool_mut();
            let ca = p.const_u64(width, a);
            let cb = p.const_u64(width, b);
            let ea = p.eq(va, ca);
            let lt = p.ult(va, cb);
            let expect = p.const_u64(1, (a < b) as u64);
            let e = p.eq(lt, expect);
            p.and(ea, e)
        };
        s.assert(goal).unwrap();
        prop_assert!(s.check().unwrap().is_sat());
    }

    #[test]
    fn solved_models_validate_by_evaluation(target: u8, width in 4u32..=8) {
        // Find inputs with (a ^ b) + (a & b) == target (mod 2^w); such
        // inputs always exist (a = target, b = 0).
        let t = target as u64 & ((1u64 << width) - 1);
        let mut s = BvSolver::new();
        let a = s.pool_mut().var("a", width);
        let b = s.pool_mut().var("b", width);
        let goal = {
            let p = s.pool_mut();
            let x = p.xor(a, b);
            let n = p.and(a, b);
            let sum = p.add(x, n);
            let c = p.const_u64(width, t);
            p.eq(sum, c)
        };
        s.assert(goal).unwrap();
        let SatOutcome::Sat(model) = s.check().unwrap() else {
            return Err(TestCaseError::fail("expected SAT"));
        };
        prop_assert!(s.validate(&model));
        let va = model.value("a").unwrap().to_u64().unwrap();
        let vb = model.value("b").unwrap().to_u64().unwrap();
        let m = (1u64 << width) - 1;
        prop_assert_eq!(((va ^ vb) + (va & vb)) & m, t);
    }
}
