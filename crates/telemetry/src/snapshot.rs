//! Mergeable point-in-time snapshots of a collector.
//!
//! Snapshots are plain name/value vectors in a fixed order, so the
//! bench pool can merge per-task snapshots deterministically (fold in
//! task-index order) and serialize them byte-identically at any
//! `--jobs N`.

/// Per-phase statistics inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name ([`crate::Phase::name`]).
    pub phase: String,
    /// Completed spans.
    pub count: u64,
    /// Accumulated self-time (children excluded), clock units.
    pub self_micros: u64,
    /// log₄ inclusive-duration histogram ([`crate::HIST_BUCKETS`] wide).
    pub buckets: Vec<u64>,
}

/// Everything a collector knows, frozen: counters, gauges, per-kind
/// event counts and per-phase timings, each in a fixed schema order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per [`crate::Counter`], in `Counter::ALL` order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per [`crate::Gauge`], in `Gauge::ALL` order.
    pub gauges: Vec<(String, u64)>,
    /// `(kind, count)` per [`crate::Event`] kind, in `Event::KINDS` order.
    pub events: Vec<(String, u64)>,
    /// Per-phase stats, in `Phase::ALL` order.
    pub phases: Vec<PhaseStat>,
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a log₄ duration
/// histogram ([`crate::bucket_of`] layout: bucket `i` holds durations
/// in `[4^i, 4^(i+1))`, bucket 0 starts at 0). Linear interpolation
/// within the crossing bucket; 0 for an empty histogram. Coarse by
/// construction (the buckets are quarter-decades), but monotone in `q`
/// and deterministic, which is what the phase tables need.
pub fn hist_quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    // 1-based rank of the sample the quantile falls on.
    let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if (cum + n) as f64 >= rank {
            let lo = if i == 0 { 0.0 } else { 4f64.powi(i as i32) };
            let hi = 4f64.powi(i as i32 + 1);
            let frac = (rank - cum as f64) / n as f64;
            // Clamp below the exclusive upper bound so the estimate
            // stays inside the bucket that contains the rank.
            return (lo + frac * (hi - lo)).round().min(hi - 1.0) as u64;
        }
        cum += n;
    }
    4f64.powi(buckets.len() as i32) as u64
}

fn merge_pairs(into: &mut Vec<(String, u64)>, from: &[(String, u64)], max: bool) {
    // Uneven inputs are legal: a task that never touched a subsystem
    // (never solved, ran zero vectors) serialises an empty list, which
    // contributes nothing.
    if from.is_empty() {
        return;
    }
    if into.is_empty() {
        into.extend(from.iter().cloned());
        return;
    }
    debug_assert_eq!(into.len(), from.len());
    for (dst, src) in into.iter_mut().zip(from) {
        debug_assert_eq!(dst.0, src.0);
        if max {
            dst.1 = dst.1.max(src.1);
        } else {
            dst.1 += src.1;
        }
    }
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters, event counts,
    /// phase counts/self-times and histogram buckets sum; gauges take
    /// the maximum (high-water mark across tasks). Uneven snapshots
    /// merge gracefully: an empty section on either side defers to the
    /// other, and a phase row missing its histogram widens to the
    /// longer bucket vector.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_pairs(&mut self.counters, &other.counters, false);
        merge_pairs(&mut self.gauges, &other.gauges, true);
        merge_pairs(&mut self.events, &other.events, false);
        if other.phases.is_empty() {
            return;
        }
        if self.phases.is_empty() {
            self.phases = other.phases.clone();
            return;
        }
        debug_assert_eq!(self.phases.len(), other.phases.len());
        for (dst, src) in self.phases.iter_mut().zip(&other.phases) {
            debug_assert_eq!(dst.phase, src.phase);
            dst.count += src.count;
            dst.self_micros += src.self_micros;
            if dst.buckets.len() < src.buckets.len() {
                dst.buckets.resize(src.buckets.len(), 0);
            }
            for (b, s) in dst.buckets.iter_mut().zip(&src.buckets) {
                *b += s;
            }
        }
    }

    /// Sum of phase self-times — the accounted share of wall time.
    pub fn phase_total_micros(&self) -> u64 {
        self.phases.iter().map(|p| p.self_micros).sum()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up an event count by kind name.
    pub fn event_count(&self, kind: &str) -> u64 {
        self.events
            .iter()
            .find(|(n, _)| n == kind)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Number of event kinds observed at least once.
    pub fn distinct_event_kinds(&self) -> usize {
        self.events.iter().filter(|(_, v)| *v > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, Counter, Gauge, Phase};
    use crate::event::Event;

    fn sample(vectors: u64, cache: u64) -> MetricsSnapshot {
        let c = Collector::deterministic();
        c.add(Counter::Vectors, vectors);
        c.set_gauge(Gauge::SnapshotCache, cache);
        c.record(Event::FullReset);
        c.set_time(4);
        {
            let _t = c.phase(Phase::Mutate);
            c.set_time(10);
        }
        c.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = sample(3, 10);
        let b = sample(5, 7);
        a.merge(&b);
        assert_eq!(a.counter("vectors"), 8);
        assert_eq!(
            a.gauges
                .iter()
                .find(|(n, _)| n == "snapshot_cache")
                .unwrap()
                .1,
            10
        );
        assert_eq!(a.event_count("FullReset"), 2);
        let mutate = &a.phases[0];
        assert_eq!(mutate.phase, "mutate");
        assert_eq!(mutate.count, 2);
        assert_eq!(mutate.self_micros, 12);
        assert_eq!(mutate.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = MetricsSnapshot::default();
        let b = sample(2, 1);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_order_insensitive_for_sums() {
        let (x, y, z) = (sample(1, 4), sample(2, 9), sample(3, 2));
        let mut ab = x.clone();
        ab.merge(&y);
        ab.merge(&z);
        let mut ba = z.clone();
        ba.merge(&y);
        ba.merge(&x);
        assert_eq!(ab, ba);
    }

    #[test]
    fn distinct_kinds_counts_nonzero_rows() {
        let s = sample(1, 1);
        assert_eq!(s.distinct_event_kinds(), 1);
        assert_eq!(s.phase_total_micros(), 6);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // Empty histogram → 0 at any quantile.
        assert_eq!(hist_quantile(&[0; 12], 0.5), 0);
        // All mass in one bucket: quantiles stay inside its range.
        let mut h = [0u64; 12];
        h[2] = 100; // durations in [16, 64)
        for q in [0.1, 0.5, 0.9, 0.99] {
            let v = hist_quantile(&h, q);
            assert!((16..64).contains(&v), "q={q} → {v}");
        }
        assert!(hist_quantile(&h, 0.1) < hist_quantile(&h, 0.9));
        // Mass split across buckets: the median lands in the lower
        // bucket, the p99 in the upper.
        let mut h = [0u64; 12];
        h[1] = 90; // [4, 16)
        h[4] = 10; // [256, 1024)
        assert!((4..16).contains(&hist_quantile(&h, 0.5)));
        assert!((256..1024).contains(&hist_quantile(&h, 0.99)));
        // Monotone in q across the whole range.
        let mut prev = 0;
        for i in 0..=20 {
            let v = hist_quantile(&h, i as f64 / 20.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn quantiles_match_collector_buckets() {
        use crate::collector::bucket_of;
        // A duration recorded through the collector's bucketing is
        // recoverable to within its bucket by the estimator.
        let mut h = vec![0u64; crate::HIST_BUCKETS];
        h[bucket_of(500)] += 1;
        let p50 = hist_quantile(&h, 0.5);
        assert_eq!(bucket_of(p50), bucket_of(500));
    }
}
