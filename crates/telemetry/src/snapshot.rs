//! Mergeable point-in-time snapshots of a collector.
//!
//! Snapshots are plain name/value vectors in a fixed order, so the
//! bench pool can merge per-task snapshots deterministically (fold in
//! task-index order) and serialize them byte-identically at any
//! `--jobs N`.

/// Per-phase statistics inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name ([`crate::Phase::name`]).
    pub phase: String,
    /// Completed spans.
    pub count: u64,
    /// Accumulated self-time (children excluded), clock units.
    pub self_micros: u64,
    /// log₄ inclusive-duration histogram ([`crate::HIST_BUCKETS`] wide).
    pub buckets: Vec<u64>,
}

/// Everything a collector knows, frozen: counters, gauges, per-kind
/// event counts and per-phase timings, each in a fixed schema order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per [`crate::Counter`], in `Counter::ALL` order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per [`crate::Gauge`], in `Gauge::ALL` order.
    pub gauges: Vec<(String, u64)>,
    /// `(kind, count)` per [`crate::Event`] kind, in `Event::KINDS` order.
    pub events: Vec<(String, u64)>,
    /// Per-phase stats, in `Phase::ALL` order.
    pub phases: Vec<PhaseStat>,
}

fn merge_pairs(into: &mut Vec<(String, u64)>, from: &[(String, u64)], max: bool) {
    if into.is_empty() {
        into.extend(from.iter().cloned());
        return;
    }
    debug_assert_eq!(into.len(), from.len());
    for (dst, src) in into.iter_mut().zip(from) {
        debug_assert_eq!(dst.0, src.0);
        if max {
            dst.1 = dst.1.max(src.1);
        } else {
            dst.1 += src.1;
        }
    }
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one: counters, event counts,
    /// phase counts/self-times and histogram buckets sum; gauges take
    /// the maximum (high-water mark across tasks).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_pairs(&mut self.counters, &other.counters, false);
        merge_pairs(&mut self.gauges, &other.gauges, true);
        merge_pairs(&mut self.events, &other.events, false);
        if self.phases.is_empty() {
            self.phases = other.phases.clone();
            return;
        }
        debug_assert_eq!(self.phases.len(), other.phases.len());
        for (dst, src) in self.phases.iter_mut().zip(&other.phases) {
            debug_assert_eq!(dst.phase, src.phase);
            dst.count += src.count;
            dst.self_micros += src.self_micros;
            for (b, s) in dst.buckets.iter_mut().zip(&src.buckets) {
                *b += s;
            }
        }
    }

    /// Sum of phase self-times — the accounted share of wall time.
    pub fn phase_total_micros(&self) -> u64 {
        self.phases.iter().map(|p| p.self_micros).sum()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up an event count by kind name.
    pub fn event_count(&self, kind: &str) -> u64 {
        self.events
            .iter()
            .find(|(n, _)| n == kind)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Number of event kinds observed at least once.
    pub fn distinct_event_kinds(&self) -> usize {
        self.events.iter().filter(|(_, v)| *v > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, Counter, Gauge, Phase};
    use crate::event::Event;

    fn sample(vectors: u64, cache: u64) -> MetricsSnapshot {
        let c = Collector::deterministic();
        c.add(Counter::Vectors, vectors);
        c.set_gauge(Gauge::SnapshotCache, cache);
        c.record(Event::FullReset);
        c.set_time(4);
        {
            let _t = c.phase(Phase::Mutate);
            c.set_time(10);
        }
        c.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = sample(3, 10);
        let b = sample(5, 7);
        a.merge(&b);
        assert_eq!(a.counter("vectors"), 8);
        assert_eq!(
            a.gauges
                .iter()
                .find(|(n, _)| n == "snapshot_cache")
                .unwrap()
                .1,
            10
        );
        assert_eq!(a.event_count("FullReset"), 2);
        let mutate = &a.phases[0];
        assert_eq!(mutate.phase, "mutate");
        assert_eq!(mutate.count, 2);
        assert_eq!(mutate.self_micros, 12);
        assert_eq!(mutate.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = MetricsSnapshot::default();
        let b = sample(2, 1);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_order_insensitive_for_sums() {
        let (x, y, z) = (sample(1, 4), sample(2, 9), sample(3, 2));
        let mut ab = x.clone();
        ab.merge(&y);
        ab.merge(&z);
        let mut ba = z.clone();
        ba.merge(&y);
        ba.merge(&x);
        assert_eq!(ab, ba);
    }

    #[test]
    fn distinct_kinds_counts_nonzero_rows() {
        let s = sample(1, 1);
        assert_eq!(s.distinct_event_kinds(), 1);
        assert_eq!(s.phase_total_micros(), 6);
    }
}
