//! Trace sinks: where JSONL records stream while a campaign runs.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives complete JSONL records (no trailing newline).
///
/// The collector holds the sink behind a lock and calls
/// [`TraceSink::enabled`] first, so a disabled sink costs one branch
/// and no formatting.
pub trait TraceSink: Send {
    /// Whether records should be formatted and delivered at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Delivers one record.
    fn write_line(&mut self, line: &str);

    /// Flushes buffered records (best effort).
    fn flush(&mut self) {}
}

/// Discards everything; the default sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn write_line(&mut self, _line: &str) {}
}

/// Streams records to stderr, one per line.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn write_line(&mut self, line: &str) {
        eprintln!("{line}");
    }
}

/// Buffered file sink. Flushed on drop and on [`TraceSink::flush`].
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncates) the trace file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<FileSink> {
        Ok(FileSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl TraceSink for FileSink {
    fn write_line(&mut self, line: &str) {
        let _ = writeln!(self.out, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink over a shared writer, for fanning several collectors (one
/// per pool task) into one trace file. Each record is written under
/// the lock, so lines from concurrent campaigns interleave but never
/// tear; the per-record `task` field keeps them attributable.
pub struct SharedSink<W: Write + Send> {
    out: Arc<Mutex<W>>,
}

impl<W: Write + Send> SharedSink<W> {
    /// Wraps a shared writer.
    pub fn new(out: Arc<Mutex<W>>) -> SharedSink<W> {
        SharedSink { out }
    }
}

impl<W: Write + Send> TraceSink for SharedSink<W> {
    fn write_line(&mut self, line: &str) {
        if let Ok(mut w) = self.out.lock() {
            let _ = writeln!(w, "{line}");
        }
    }

    fn flush(&mut self) {
        if let Ok(mut w) = self.out.lock() {
            let _ = w.flush();
        }
    }
}

/// Collects records into a shared in-memory vector (tests).
#[derive(Debug, Default, Clone)]
pub struct BufferSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// A handle reading the same buffer this sink appends to.
    pub fn handle(&self) -> BufferSink {
        self.clone()
    }

    /// Copies the captured lines out.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

impl TraceSink for BufferSink {
    fn write_line(&mut self, line: &str) {
        if let Ok(mut l) = self.lines.lock() {
            l.push(line.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sink_captures_lines() {
        let sink = BufferSink::new();
        let handle = sink.handle();
        let mut boxed: Box<dyn TraceSink> = Box::new(sink);
        boxed.write_line("{\"a\":1}");
        boxed.write_line("{\"b\":2}");
        assert_eq!(handle.lines(), vec!["{\"a\":1}", "{\"b\":2}"]);
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        assert!(StderrSink.enabled());
    }

    #[test]
    fn shared_sink_appends_newlines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        let mut sink = SharedSink::new(Arc::clone(&buf));
        sink.write_line("x");
        sink.write_line("y");
        sink.flush();
        assert_eq!(&*buf.lock().unwrap(), b"x\ny\n");
    }
}
