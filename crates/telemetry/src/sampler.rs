//! The campaign flight recorder: periodic delta-compressed metric
//! samples, a versioned `flight.jsonl` stream and an atomically
//! rewritten `status.json` heartbeat.
//!
//! A [`Sampler`] sits beside the fuzz loop's [`Collector`] and, every
//! `sample_every` input vectors, freezes the collector into a
//! [`FlightSample`]: the campaign state scalars (vectors, coverage,
//! stagnation) plus *deltas* of every counter, event count and
//! per-phase self-time since the previous sample, with gauges kept
//! absolute. Under the default deterministic
//! [`ManualClock`](crate::ManualClock) the sample stream is a pure
//! function of the campaign seed, so per-task streams merge
//! byte-identically at any parallelism ([`merge_flight`]).
//!
//! Samples are held in a bounded in-memory ring and, when paths are
//! attached, appended live to a `flight.jsonl` file (one
//! [`flight_line`] per sample, `"v"`-tagged with [`FLIGHT_VERSION`])
//! while a `status.json` heartbeat is rewritten atomically
//! (tmp-file + rename) so external tools can poll it mid-run without
//! ever observing a torn write.

use crate::collector::{Collector, Counter};
use crate::snapshot::MetricsSnapshot;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Schema version stamped into every flight record and status
/// heartbeat (`"v"` field). Bump when the sample layout changes.
pub const FLIGHT_VERSION: u64 = 1;

/// Default bound on the in-memory sample ring.
pub const DEFAULT_SAMPLE_RING_CAP: usize = 1024;

/// Campaign state the driver passes into each sampling opportunity —
/// the scalars the collector itself does not own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleState {
    /// Input vectors consumed so far (drives the sampling interval).
    pub vectors: u64,
    /// Coverage points reached.
    pub coverage: u64,
    /// CFG nodes covered.
    pub nodes: u64,
    /// CFG edges covered.
    pub edges: u64,
    /// Consecutive coverage-flat intervals (stagnation depth).
    pub stagnant: u64,
}

/// One delta-compressed flight-recorder sample.
///
/// Vector fields are positional in the fixed schema orders
/// ([`Counter::ALL`], [`crate::Gauge::ALL`], [`crate::Event::KINDS`],
/// [`crate::Phase::ALL`]); the names are not repeated per sample —
/// that is the delta stream's compression. [`flight_line`] renders
/// the canonical JSONL encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSample {
    /// Sample interval index (`vectors / sample_every`).
    pub interval: u64,
    /// Clock reading at sample time (vector count under the
    /// deterministic clock, wall micros under a monotonic one).
    pub t: u64,
    /// Task label of the collector sampled ([`Collector::set_task`]).
    pub task: u64,
    /// Input vectors consumed.
    pub vectors: u64,
    /// Coverage points reached.
    pub coverage: u64,
    /// CFG nodes covered.
    pub nodes: u64,
    /// CFG edges covered.
    pub edges: u64,
    /// Consecutive coverage-flat intervals.
    pub stagnant: u64,
    /// Counter deltas since the previous sample, [`Counter::ALL`] order.
    pub d_counters: Vec<u64>,
    /// Absolute gauge levels, [`crate::Gauge::ALL`] order.
    pub gauges: Vec<u64>,
    /// Event-count deltas since the previous sample,
    /// [`crate::Event::KINDS`] order. Saturating: ring eviction can
    /// shrink a raw count, which clamps to 0 rather than wrapping.
    pub d_events: Vec<u64>,
    /// Phase self-time deltas since the previous sample,
    /// [`crate::Phase::ALL`] order.
    pub d_phase_micros: Vec<u64>,
}

fn push_nums(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Renders one flight record as canonical flat-array JSONL (no
/// trailing newline). Byte-stable: two equal samples always render
/// identically, which is what the `--jobs` byte-identity contract of
/// the merged `flight.jsonl` rests on.
pub fn flight_line(s: &FlightSample) -> String {
    let mut out = format!(
        "{{\"v\":{FLIGHT_VERSION},\"interval\":{},\"t\":{},\"task\":{},\"vectors\":{},\
         \"coverage\":{},\"nodes\":{},\"edges\":{},\"stagnant\":{},\"d_counters\":",
        s.interval, s.t, s.task, s.vectors, s.coverage, s.nodes, s.edges, s.stagnant
    );
    push_nums(&mut out, &s.d_counters);
    out.push_str(",\"gauges\":");
    push_nums(&mut out, &s.gauges);
    out.push_str(",\"d_events\":");
    push_nums(&mut out, &s.d_events);
    out.push_str(",\"d_phase_micros\":");
    push_nums(&mut out, &s.d_phase_micros);
    out.push('}');
    out
}

fn push_pairs(out: &mut String, pairs: &[(String, u64)]) {
    out.push('{');
    for (i, (name, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        crate::event::escape_json_into(name, out);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// Renders the `status.json` heartbeat: the latest sample's state
/// scalars plus the *cumulative* counters/gauges/phase self-times from
/// `snapshot`, and any pre-rendered extra sections (profiler blocks)
/// appended verbatim as `"name": <json>`. The telemetry crate stays
/// dependency-free, so richer sections are composed by the caller.
pub fn status_json(
    latest: &FlightSample,
    snapshot: &MetricsSnapshot,
    extra: &[(String, String)],
) -> String {
    let mut out = format!(
        "{{\"v\":{FLIGHT_VERSION},\"interval\":{},\"t\":{},\"vectors\":{},\"coverage\":{},\
         \"nodes\":{},\"edges\":{},\"stagnant\":{},\"counters\":",
        latest.interval,
        latest.t,
        latest.vectors,
        latest.coverage,
        latest.nodes,
        latest.edges,
        latest.stagnant
    );
    push_pairs(&mut out, &snapshot.counters);
    out.push_str(",\"gauges\":");
    push_pairs(&mut out, &snapshot.gauges);
    out.push_str(",\"events\":");
    push_pairs(&mut out, &snapshot.events);
    out.push_str(",\"phase_self_micros\":");
    let phases: Vec<(String, u64)> = snapshot
        .phases
        .iter()
        .map(|p| (p.phase.clone(), p.self_micros))
        .collect();
    push_pairs(&mut out, &phases);
    for (name, json) in extra {
        out.push_str(",\"");
        crate::event::escape_json_into(name, &mut out);
        out.push_str("\":");
        out.push_str(json);
    }
    out.push('}');
    out
}

/// Writes `contents` to `path` atomically: a sibling `.tmp` file is
/// written, flushed, then renamed over the target, so a concurrent
/// reader sees either the old heartbeat or the new one, never a torn
/// mix.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// The flight recorder: samples a [`Collector`] every `sample_every`
/// vectors into a bounded ring, optionally streaming each sample to a
/// `flight.jsonl` appender and a `status.json` heartbeat.
pub struct Sampler {
    every: u64,
    cap: usize,
    last_interval: Option<u64>,
    prev: Option<MetricsSnapshot>,
    ring: VecDeque<FlightSample>,
    dropped: u64,
    flight: Option<BufWriter<File>>,
    status_path: Option<PathBuf>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("every", &self.every)
            .field("samples", &self.ring.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl Sampler {
    /// A sampler taking one sample per `every` input vectors (floored
    /// at 1), ring-bounded at [`DEFAULT_SAMPLE_RING_CAP`].
    pub fn new(every: u64) -> Sampler {
        Sampler {
            every: every.max(1),
            cap: DEFAULT_SAMPLE_RING_CAP,
            last_interval: None,
            prev: None,
            ring: VecDeque::new(),
            dropped: 0,
            flight: None,
            status_path: None,
        }
    }

    /// Replaces the ring bound (floored at 1).
    pub fn with_ring_cap(mut self, cap: usize) -> Sampler {
        self.cap = cap.max(1);
        self
    }

    /// The sampling interval in input vectors.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Opens (truncates) a `flight.jsonl` file that every subsequent
    /// sample is appended to as it is taken.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn set_flight_path(&mut self, path: &Path) -> io::Result<()> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        self.flight = Some(BufWriter::new(file));
        Ok(())
    }

    /// Sets the `status.json` heartbeat target for [`Sampler::write_status`].
    pub fn set_status_path(&mut self, path: &Path) {
        self.status_path = Some(path.to_path_buf());
    }

    /// Whether a status path is attached.
    pub fn has_status_path(&self) -> bool {
        self.status_path.is_some()
    }

    /// The samples currently held (oldest first).
    pub fn samples(&self) -> impl Iterator<Item = &FlightSample> {
        self.ring.iter()
    }

    /// Samples evicted from the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes a sample if `state.vectors` has crossed into a new
    /// sampling interval since the last one, returning the fresh
    /// sample. Call on every driver tick; off-interval calls are one
    /// integer division.
    ///
    /// The sample freezes the collector ([`Collector::snapshot`]) and
    /// delta-compresses it against the previous sample's snapshot.
    /// When a flight file is attached the sample is appended to it,
    /// and a synthetic flat `Flight` trace record is streamed through
    /// the collector's sink for trace consumers.
    pub fn maybe_sample(&mut self, c: &Collector, state: &SampleState) -> Option<&FlightSample> {
        let interval = state.vectors / self.every;
        if interval == 0 || self.last_interval == Some(interval) {
            return None;
        }
        self.last_interval = Some(interval);
        let snap = c.snapshot();
        let zero = MetricsSnapshot::default();
        let prev = self.prev.as_ref().unwrap_or(&zero);
        let delta = |cur: &[(String, u64)], old: &[(String, u64)]| -> Vec<u64> {
            cur.iter()
                .enumerate()
                .map(|(i, (_, v))| v.saturating_sub(old.get(i).map_or(0, |(_, o)| *o)))
                .collect()
        };
        let sample = FlightSample {
            interval,
            t: c.now_micros(),
            task: c.task(),
            vectors: state.vectors,
            coverage: state.coverage,
            nodes: state.nodes,
            edges: state.edges,
            stagnant: state.stagnant,
            d_counters: delta(&snap.counters, &prev.counters),
            gauges: snap.gauges.iter().map(|(_, v)| *v).collect(),
            d_events: delta(&snap.events, &prev.events),
            d_phase_micros: snap
                .phases
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    p.self_micros
                        .saturating_sub(prev.phases.get(i).map_or(0, |o| o.self_micros))
                })
                .collect(),
        };
        self.prev = Some(snap);
        if let Some(w) = &mut self.flight {
            let _ = writeln!(w, "{}", flight_line(&sample));
            let _ = w.flush();
        }
        // Mirror the headline numbers into the trace stream so a
        // `--trace-out` file narrates the flight without a second
        // artifact (no-op when the collector's sink is disabled).
        c.trace_line(&format!(
            "{{\"t\":{},\"task\":{},\"kind\":\"Flight\",\"interval\":{},\"vectors\":{},\
             \"coverage\":{},\"stagnant\":{},\"d_vectors\":{},\"d_solver_calls\":{},\
             \"d_settle_fast_path\":{},\"d_settle_escapes\":{}}}",
            sample.t,
            sample.task,
            sample.interval,
            sample.vectors,
            sample.coverage,
            sample.stagnant,
            sample.d_counters[counter_index(Counter::Vectors)],
            sample.d_counters[counter_index(Counter::SolverCalls)],
            sample.d_counters[counter_index(Counter::SettleFastPath)],
            sample.d_counters[counter_index(Counter::SettleEscapes)],
        ));
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(sample);
        self.ring.back()
    }

    /// Rewrites the `status.json` heartbeat atomically from the latest
    /// sample and its cumulative snapshot, appending `extra`
    /// pre-rendered sections ([`status_json`]). No-op without a status
    /// path or before the first sample.
    pub fn write_status(&self, extra: &[(String, String)]) {
        let (Some(path), Some(latest), Some(snap)) =
            (&self.status_path, self.ring.back(), &self.prev)
        else {
            return;
        };
        let _ = write_atomic(path, &status_json(latest, snap, extra));
    }

    /// The cumulative snapshot frozen at the latest sample, if any.
    pub fn latest_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.prev.as_ref()
    }
}

fn counter_index(c: Counter) -> usize {
    Counter::ALL.iter().position(|x| *x == c).unwrap()
}

/// Merges per-task flight streams into one campaign-wide stream, by
/// sample interval index: state scalars and deltas sum across tasks,
/// gauges and stagnation keep the maximum, timestamps keep the
/// maximum, and the merged task label is 0. Because each per-task
/// stream is deterministic and tasks are folded in slice order, the
/// merged stream — and therefore its [`flight_line`] rendering — is
/// byte-identical at any `--jobs N`.
pub fn merge_flight(tasks: &[Vec<FlightSample>]) -> Vec<FlightSample> {
    let mut out: Vec<FlightSample> = Vec::new();
    for stream in tasks {
        for s in stream {
            let slot = match out.binary_search_by_key(&s.interval, |m| m.interval) {
                Ok(i) => &mut out[i],
                Err(i) => {
                    out.insert(
                        i,
                        FlightSample {
                            interval: s.interval,
                            t: 0,
                            task: 0,
                            vectors: 0,
                            coverage: 0,
                            nodes: 0,
                            edges: 0,
                            stagnant: 0,
                            d_counters: vec![0; s.d_counters.len()],
                            gauges: vec![0; s.gauges.len()],
                            d_events: vec![0; s.d_events.len()],
                            d_phase_micros: vec![0; s.d_phase_micros.len()],
                        },
                    );
                    &mut out[i]
                }
            };
            slot.t = slot.t.max(s.t);
            slot.vectors += s.vectors;
            slot.coverage += s.coverage;
            slot.nodes += s.nodes;
            slot.edges += s.edges;
            slot.stagnant = slot.stagnant.max(s.stagnant);
            let fold = |dst: &mut Vec<u64>, src: &[u64], max: bool| {
                if dst.len() < src.len() {
                    dst.resize(src.len(), 0);
                }
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = if max { (*d).max(*s) } else { *d + *s };
                }
            };
            fold(&mut slot.d_counters, &s.d_counters, false);
            fold(&mut slot.gauges, &s.gauges, true);
            fold(&mut slot.d_events, &s.d_events, false);
            fold(&mut slot.d_phase_micros, &s.d_phase_micros, false);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, Counter, Gauge, Phase};

    fn state(vectors: u64, coverage: u64) -> SampleState {
        SampleState {
            vectors,
            coverage,
            nodes: coverage / 2,
            edges: coverage / 3,
            stagnant: 0,
        }
    }

    #[test]
    fn samples_fire_once_per_interval_and_delta_compress() {
        let c = Collector::deterministic();
        let mut s = Sampler::new(100);
        c.add(Counter::Vectors, 50);
        c.set_time(50);
        assert!(s.maybe_sample(&c, &state(50, 1)).is_none(), "pre-interval");
        c.add(Counter::Vectors, 50);
        c.set_time(100);
        let first = s.maybe_sample(&c, &state(100, 3)).unwrap().clone();
        assert_eq!(first.interval, 1);
        assert_eq!(first.vectors, 100);
        // First sample's deltas are absolute (previous snapshot empty).
        assert_eq!(first.d_counters[0], 100);
        // Same interval → no second sample.
        assert!(s.maybe_sample(&c, &state(100, 3)).is_none());
        c.add(Counter::Vectors, 100);
        c.add(Counter::SolverCalls, 7);
        c.set_gauge(Gauge::CorpusSeeds, 5);
        c.set_time(200);
        let second = s.maybe_sample(&c, &state(200, 9)).unwrap().clone();
        assert_eq!(second.interval, 2);
        assert_eq!(second.d_counters[0], 100, "delta, not cumulative");
        let solver = Counter::ALL
            .iter()
            .position(|x| *x == Counter::SolverCalls)
            .unwrap();
        assert_eq!(second.d_counters[solver], 7);
        // Gauges stay absolute.
        let seeds = Gauge::ALL
            .iter()
            .position(|g| *g == Gauge::CorpusSeeds)
            .unwrap();
        assert_eq!(second.gauges[seeds], 5);
        assert_eq!(s.samples().count(), 2);
    }

    #[test]
    fn sample_ring_is_bounded() {
        let c = Collector::deterministic();
        let mut s = Sampler::new(1).with_ring_cap(4);
        for v in 1..=10 {
            c.set_time(v);
            assert!(s.maybe_sample(&c, &state(v, 0)).is_some());
        }
        assert_eq!(s.samples().count(), 4);
        assert_eq!(s.dropped(), 6);
        assert_eq!(s.samples().next().unwrap().interval, 7);
    }

    #[test]
    fn phase_deltas_track_self_time() {
        let c = Collector::deterministic();
        let mut s = Sampler::new(10);
        {
            let _t = c.phase(Phase::Mutate);
            c.set_time(6);
        }
        let first = s.maybe_sample(&c, &state(10, 0)).unwrap().clone();
        assert_eq!(first.d_phase_micros[0], 6);
        {
            let _t = c.phase(Phase::Mutate);
            c.set_time(10);
        }
        let second = s.maybe_sample(&c, &state(20, 0)).unwrap().clone();
        assert_eq!(second.d_phase_micros[0], 4, "delta since last sample");
    }

    #[test]
    fn flight_lines_are_canonical_and_versioned() {
        let s = FlightSample {
            interval: 2,
            t: 200,
            task: 1,
            vectors: 200,
            coverage: 9,
            nodes: 4,
            edges: 3,
            stagnant: 1,
            d_counters: vec![100, 2],
            gauges: vec![5],
            d_events: vec![1, 0],
            d_phase_micros: vec![60],
        };
        assert_eq!(
            flight_line(&s),
            "{\"v\":1,\"interval\":2,\"t\":200,\"task\":1,\"vectors\":200,\"coverage\":9,\
             \"nodes\":4,\"edges\":3,\"stagnant\":1,\"d_counters\":[100,2],\"gauges\":[5],\
             \"d_events\":[1,0],\"d_phase_micros\":[60]}"
        );
    }

    #[test]
    fn status_json_carries_cumulative_and_extra_sections() {
        let c = Collector::deterministic();
        c.add(Counter::Vectors, 100);
        c.set_time(100);
        let mut s = Sampler::new(100);
        s.maybe_sample(&c, &state(100, 5)).unwrap();
        let latest = s.samples().last().unwrap();
        let json = status_json(
            latest,
            s.latest_snapshot().unwrap(),
            &[("vm_profile".to_string(), "{\"cones\":[]}".to_string())],
        );
        assert!(json.starts_with("{\"v\":1,"), "{json}");
        assert!(json.contains("\"vectors\":100"));
        assert!(json.contains("\"counters\":{\"vectors\":100,"));
        assert!(json.contains("\"vm_profile\":{\"cones\":[]}"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn merge_is_byte_identical_across_partitions() {
        // Three deterministic per-task streams...
        let task = |task: u64, scale: u64| -> Vec<FlightSample> {
            (1..=4)
                .map(|i| FlightSample {
                    interval: i,
                    t: i * 100,
                    task,
                    vectors: i * 100 * scale,
                    coverage: i * scale,
                    nodes: i,
                    edges: i,
                    stagnant: task,
                    d_counters: vec![100 * scale, scale],
                    gauges: vec![task + i],
                    d_events: vec![scale],
                    d_phase_micros: vec![10 * scale],
                })
                .collect()
        };
        let streams = [task(0, 1), task(1, 2), task(2, 3)];
        // ...merge identically no matter how they are grouped.
        let all = merge_flight(&streams);
        let ab = merge_flight(&[merge_flight(&streams[..2]), merge_flight(&streams[2..])]);
        let lines = |v: &[FlightSample]| -> Vec<String> { v.iter().map(flight_line).collect() };
        assert_eq!(lines(&all), lines(&ab));
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].vectors, 600); // 100 + 200 + 300
        assert_eq!(all[0].gauges[0], 3); // max across tasks
        assert_eq!(all[0].stagnant, 2); // max across tasks
        assert_eq!(all[0].task, 0);
    }

    #[test]
    fn merge_tolerates_uneven_streams() {
        let mk = |interval: u64| FlightSample {
            interval,
            t: interval,
            task: 0,
            vectors: interval * 10,
            coverage: 1,
            nodes: 0,
            edges: 0,
            stagnant: 0,
            d_counters: vec![10],
            gauges: vec![1],
            d_events: vec![],
            d_phase_micros: vec![2],
        };
        // One task sampled twice, one once, one never (zero-vector task).
        let merged = merge_flight(&[vec![mk(1), mk(2)], vec![mk(2)], vec![]]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].interval, 1);
        assert_eq!(merged[0].vectors, 10);
        assert_eq!(merged[1].vectors, 40, "interval 2 sums both tasks");
    }

    #[test]
    fn flight_and_status_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("symbfuzz_sampler_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let flight = dir.join("flight.jsonl");
        let status = dir.join("status.json");
        let c = Collector::deterministic();
        let mut s = Sampler::new(10);
        s.set_flight_path(&flight).unwrap();
        s.set_status_path(&status);
        for v in [10u64, 20, 30] {
            c.add(Counter::Vectors, 10);
            c.set_time(v);
            assert!(s.maybe_sample(&c, &state(v, v / 10)).is_some());
            s.write_status(&[]);
        }
        let text = std::fs::read_to_string(&flight).unwrap();
        assert_eq!(text.lines().count(), 3);
        let expected: String = s.samples().map(|x| flight_line(x) + "\n").collect();
        assert_eq!(text, expected);
        let st = std::fs::read_to_string(&status).unwrap();
        assert!(st.contains("\"vectors\":30"));
        assert!(!status.with_extension("tmp").exists(), "tmp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_trace_records_stream_to_the_sink() {
        use crate::sink::BufferSink;
        let sink = BufferSink::new();
        let handle = sink.handle();
        let c = Collector::deterministic();
        c.set_task(2);
        c.set_sink(Box::new(sink));
        let mut s = Sampler::new(10);
        c.add(Counter::Vectors, 10);
        c.set_time(10);
        s.maybe_sample(&c, &state(10, 1)).unwrap();
        let lines = handle.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"kind\":\"Flight\""), "{}", lines[0]);
        assert!(lines[0].contains("\"task\":2"));
        assert!(lines[0].contains("\"d_vectors\":10"));
    }
}
