//! Time sources for telemetry timestamps.
//!
//! Every timestamp the collector records comes through the [`Clock`]
//! trait, which is the determinism seam of the whole layer: campaigns
//! run with a [`ManualClock`] driven by the input-vector count, so
//! event timestamps and phase durations are pure functions of the
//! campaign seed and merge byte-identically at any parallelism. The
//! bench binaries swap in a [`MonotonicClock`] only when the operator
//! asks for a wall-clock trace (`--trace-out`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond source.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's epoch. With a [`ManualClock`]
    /// the unit is whatever the driver feeds [`Clock::set`] (the fuzz
    /// loop uses input vectors).
    fn now_micros(&self) -> u64;

    /// Advances a settable clock; real clocks ignore this, so callers
    /// can drive the clock unconditionally.
    fn set(&self, _micros: u64) {}
}

/// Wall-clock time relative to construction.
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Starts the clock at zero now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A deterministic clock advanced explicitly by the driver. Never goes
/// backwards: `set` with a smaller value is ignored.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Starts at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn set(&self, micros: u64) {
        self.now.fetch_max(micros, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable_and_monotone() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.set(5);
        assert_eq!(c.now_micros(), 5);
        c.set(3); // never backwards
        assert_eq!(c.now_micros(), 5);
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        c.set(1_000_000_000); // ignored
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(c.now_micros() > a);
    }
}
