//! The campaign event taxonomy and its JSONL encoding.

use std::fmt::Write as _;

/// Outcome of one symbolic-guidance episode (Algorithm 1 lines 13–22).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The solver produced an input sequence and it was installed.
    Solved,
    /// Every tried target was unsatisfiable within the depth bound.
    Unsat,
    /// Guidance ran without consulting the solver (ablation).
    Skipped,
}

impl SolveOutcome {
    /// Stable string used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            SolveOutcome::Solved => "solved",
            SolveOutcome::Unsat => "unsat",
            SolveOutcome::Skipped => "skipped",
        }
    }
}

/// One structured trace event from the fuzz loop.
///
/// Each variant maps to one JSONL record kind; [`Event::kind`] is the
/// schema discriminator and [`Event::KINDS`] the closed set a trace
/// validator checks against (plus the synthetic `Phase` records the
/// collector emits when a [`crate::PhaseTimer`] span ends).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An interval ended with more coverage than the previous one.
    CoverageDelta {
        /// Input vectors consumed so far.
        vectors: u64,
        /// Coverage points after the interval.
        coverage: u64,
        /// Newly covered points this interval.
        delta: u64,
    },
    /// The stagnation threshold was crossed (symbolic guidance fires).
    StagnationEnter {
        /// Input vectors consumed so far.
        vectors: u64,
        /// Consecutive intervals without new coverage.
        intervals: u64,
    },
    /// One rollback-and-solve attempt of the symbolic step.
    SymbolicEpisode {
        /// CFG node rolled back to; `None` = solving from reset state.
        checkpoint: Option<u64>,
        /// Dependency equations in the engine.
        eqns: u64,
        /// Whether the episode installed a solved sequence.
        solve_result: SolveOutcome,
    },
    /// One SMT query (bit-blast + CDCL solve).
    SmtSolve {
        /// Propositional variables in the blasted CNF.
        vars: u64,
        /// CNF clauses.
        clauses: u64,
        /// Satisfiable?
        sat: bool,
        /// Solve latency in clock units.
        micros: u64,
    },
    /// Checkpoint re-entry: snapshot restore (`prefix_len == 0`) or
    /// reset plus replay of a recorded input prefix (§4.5).
    PartialReset {
        /// Input cycles replayed to re-reach the checkpoint.
        prefix_len: u64,
    },
    /// A full DUV reset (campaign start, testcase retirement, or
    /// guidance falling back to the reset state).
    FullReset,
    /// A property violation was recorded for the first time.
    BugFired {
        /// Violated property name.
        property: String,
        /// Input vectors consumed at detection.
        vector: u64,
    },
}

impl Event {
    /// Number of event kinds.
    pub const KIND_COUNT: usize = 7;

    /// Every event kind, in `kind_index` order.
    pub const KINDS: [&'static str; Event::KIND_COUNT] = [
        "CoverageDelta",
        "StagnationEnter",
        "SymbolicEpisode",
        "SmtSolve",
        "PartialReset",
        "FullReset",
        "BugFired",
    ];

    /// The schema discriminator for this event.
    pub fn kind(&self) -> &'static str {
        Event::KINDS[self.kind_index()]
    }

    /// Index into [`Event::KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::CoverageDelta { .. } => 0,
            Event::StagnationEnter { .. } => 1,
            Event::SymbolicEpisode { .. } => 2,
            Event::SmtSolve { .. } => 3,
            Event::PartialReset { .. } => 4,
            Event::FullReset => 5,
            Event::BugFired { .. } => 6,
        }
    }

    /// Renders one JSONL record (no trailing newline): timestamp,
    /// task label, kind, then the variant's fields.
    pub fn to_json_line(&self, t: u64, task: u64) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{t},\"task\":{task},\"kind\":\"{}\"",
            self.kind()
        );
        match self {
            Event::CoverageDelta {
                vectors,
                coverage,
                delta,
            } => {
                let _ = write!(
                    s,
                    ",\"vectors\":{vectors},\"coverage\":{coverage},\"delta\":{delta}"
                );
            }
            Event::StagnationEnter { vectors, intervals } => {
                let _ = write!(s, ",\"vectors\":{vectors},\"intervals\":{intervals}");
            }
            Event::SymbolicEpisode {
                checkpoint,
                eqns,
                solve_result,
            } => {
                match checkpoint {
                    Some(cp) => {
                        let _ = write!(s, ",\"checkpoint\":{cp}");
                    }
                    None => s.push_str(",\"checkpoint\":null"),
                }
                let _ = write!(
                    s,
                    ",\"eqns\":{eqns},\"solve_result\":\"{}\"",
                    solve_result.name()
                );
            }
            Event::SmtSolve {
                vars,
                clauses,
                sat,
                micros,
            } => {
                let _ = write!(
                    s,
                    ",\"vars\":{vars},\"clauses\":{clauses},\"sat\":{sat},\"micros\":{micros}"
                );
            }
            Event::PartialReset { prefix_len } => {
                let _ = write!(s, ",\"prefix_len\":{prefix_len}");
            }
            Event::FullReset => {}
            Event::BugFired { property, vector } => {
                s.push_str(",\"property\":\"");
                escape_json_into(property, &mut s);
                let _ = write!(s, "\",\"vector\":{vector}");
            }
        }
        s.push('}');
        s
    }
}

/// An event plus the timestamp it was recorded at (ring-buffer entry).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Clock reading at record time.
    pub micros: u64,
    /// The event.
    pub event: Event,
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let all = [
            Event::CoverageDelta {
                vectors: 1,
                coverage: 2,
                delta: 1,
            },
            Event::StagnationEnter {
                vectors: 1,
                intervals: 3,
            },
            Event::SymbolicEpisode {
                checkpoint: None,
                eqns: 4,
                solve_result: SolveOutcome::Unsat,
            },
            Event::SmtSolve {
                vars: 10,
                clauses: 20,
                sat: true,
                micros: 5,
            },
            Event::PartialReset { prefix_len: 7 },
            Event::FullReset,
            Event::BugFired {
                property: "p".into(),
                vector: 9,
            },
        ];
        assert_eq!(all.len(), Event::KIND_COUNT);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(e.kind(), Event::KINDS[i]);
        }
    }

    #[test]
    fn json_lines_are_well_formed() {
        let e = Event::SymbolicEpisode {
            checkpoint: Some(5),
            eqns: 12,
            solve_result: SolveOutcome::Solved,
        };
        assert_eq!(
            e.to_json_line(42, 1),
            "{\"t\":42,\"task\":1,\"kind\":\"SymbolicEpisode\",\"checkpoint\":5,\
             \"eqns\":12,\"solve_result\":\"solved\"}"
        );
        let e = Event::FullReset;
        assert_eq!(
            e.to_json_line(0, 0),
            "{\"t\":0,\"task\":0,\"kind\":\"FullReset\"}"
        );
    }

    #[test]
    fn property_names_are_escaped() {
        let e = Event::BugFired {
            property: "a\"b\\c\n".into(),
            vector: 1,
        };
        let line = e.to_json_line(0, 0);
        assert!(line.contains("a\\\"b\\\\c\\n"));
    }
}
