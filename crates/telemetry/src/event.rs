//! The campaign event taxonomy and its JSONL encoding.

use std::fmt::Write as _;

/// Why a budgeted analysis stopped before reaching a verdict.
///
/// Each variant names the ceiling that was hit. The first four are
/// raised by the CDCL core, the last two by the symbolic engine's
/// unroller. `WallClock` is the only non-deterministic reason and is
/// opt-in (see the budget documentation in `symbfuzz-smt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnknownReason {
    /// The conflict ceiling was reached.
    Conflicts,
    /// The decision ceiling was reached.
    Decisions,
    /// The propagation ceiling was reached.
    Propagations,
    /// The wall-clock deadline passed (opt-in, non-deterministic).
    WallClock,
    /// The term-node ceiling was reached while unrolling.
    TermNodes,
    /// The unroll-depth ceiling truncated the search.
    UnrollDepth,
    /// Another portfolio profile answered first and raised the abort
    /// flag (deterministic given the canonical-winner rule: losers'
    /// partial results are discarded, never reported).
    Aborted,
}

impl UnknownReason {
    /// Number of reasons.
    pub const COUNT: usize = 7;

    /// Every reason, in a fixed order.
    pub const ALL: [UnknownReason; UnknownReason::COUNT] = [
        UnknownReason::Conflicts,
        UnknownReason::Decisions,
        UnknownReason::Propagations,
        UnknownReason::WallClock,
        UnknownReason::TermNodes,
        UnknownReason::UnrollDepth,
        UnknownReason::Aborted,
    ];

    /// Stable string used in the JSONL schema and campaign JSON.
    pub fn name(self) -> &'static str {
        match self {
            UnknownReason::Conflicts => "conflicts",
            UnknownReason::Decisions => "decisions",
            UnknownReason::Propagations => "propagations",
            UnknownReason::WallClock => "wall_clock",
            UnknownReason::TermNodes => "term_nodes",
            UnknownReason::UnrollDepth => "unroll_depth",
            UnknownReason::Aborted => "aborted",
        }
    }

    /// Inverse of [`UnknownReason::name`].
    pub fn parse(s: &str) -> Option<UnknownReason> {
        UnknownReason::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl std::fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The one solve outcome shared by every layer (SAT facade, symbolic
/// episodes, campaign JSON, JSONL traces).
///
/// Serialized through [`SolveStatus::serial`] everywhere so the
/// campaign report and the trace stream agree byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// A satisfying assignment / input sequence was produced.
    Sat,
    /// Proved unsatisfiable within the bound.
    Unsat,
    /// The budget ran out before a verdict.
    Unknown(UnknownReason),
    /// The analysis was not consulted at all (ablation).
    Skipped,
}

impl SolveStatus {
    /// Number of distinct serial strings.
    pub const SERIAL_COUNT: usize = 3 + UnknownReason::COUNT;

    /// Every serial string, in tally order: `sat`, `unsat`,
    /// `skipped`, then one `unknown:<reason>` per reason.
    pub const SERIALS: [&'static str; SolveStatus::SERIAL_COUNT] = [
        "sat",
        "unsat",
        "skipped",
        "unknown:conflicts",
        "unknown:decisions",
        "unknown:propagations",
        "unknown:wall_clock",
        "unknown:term_nodes",
        "unknown:unroll_depth",
        "unknown:aborted",
    ];

    /// Stable string used in the JSONL schema and campaign JSON.
    pub fn serial(self) -> &'static str {
        SolveStatus::SERIALS[self.serial_index()]
    }

    /// Index into [`SolveStatus::SERIALS`].
    pub fn serial_index(self) -> usize {
        match self {
            SolveStatus::Sat => 0,
            SolveStatus::Unsat => 1,
            SolveStatus::Skipped => 2,
            SolveStatus::Unknown(r) => 3 + UnknownReason::ALL.iter().position(|x| *x == r).unwrap(),
        }
    }

    /// Inverse of [`SolveStatus::serial`].
    pub fn parse(s: &str) -> Option<SolveStatus> {
        match s {
            "sat" => Some(SolveStatus::Sat),
            "unsat" => Some(SolveStatus::Unsat),
            "skipped" => Some(SolveStatus::Skipped),
            _ => {
                let reason = s.strip_prefix("unknown:")?;
                UnknownReason::parse(reason).map(SolveStatus::Unknown)
            }
        }
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.serial())
    }
}

/// The generating mechanism a coverage point is attributed to — which
/// part of Algorithm 1 produced the input word that earned it.
///
/// Shared by the CFG provenance records, the `covmap` artifact, the
/// campaign JSON and the JSONL trace schema, all through
/// [`Mechanism::name`] so every layer agrees byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Constrained-random stimulus from the UVM sequencer (or a
    /// baseline's mutated testcase).
    ConstrainedRandom,
    /// A solver-produced input sequence installed after a successful
    /// symbolic episode (§4.7); the goal id names the solve attempt.
    SolverGuided,
    /// A recorded input prefix replayed to re-enter a checkpoint after
    /// a partial reset (§4.5).
    ReplayPrefix,
}

impl Mechanism {
    /// Number of mechanisms.
    pub const COUNT: usize = 3;

    /// Every mechanism, in a fixed order.
    pub const ALL: [Mechanism; Mechanism::COUNT] = [
        Mechanism::ConstrainedRandom,
        Mechanism::SolverGuided,
        Mechanism::ReplayPrefix,
    ];

    /// Stable string used in the JSONL schema, `covmap` and campaign
    /// JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::ConstrainedRandom => "random",
            Mechanism::SolverGuided => "solver",
            Mechanism::ReplayPrefix => "replay",
        }
    }

    /// Inverse of [`Mechanism::name`].
    pub fn parse(s: &str) -> Option<Mechanism> {
        Mechanism::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured trace event from the fuzz loop.
///
/// Each variant maps to one JSONL record kind; [`Event::kind`] is the
/// schema discriminator and [`Event::KINDS`] the closed set a trace
/// validator checks against (plus the synthetic `Phase` records the
/// collector emits when a [`crate::PhaseTimer`] span ends).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An interval ended with more coverage than the previous one.
    CoverageDelta {
        /// Input vectors consumed so far.
        vectors: u64,
        /// Coverage points after the interval.
        coverage: u64,
        /// Newly covered points this interval.
        delta: u64,
    },
    /// The stagnation threshold was crossed (symbolic guidance fires).
    StagnationEnter {
        /// Input vectors consumed so far.
        vectors: u64,
        /// Consecutive intervals without new coverage.
        intervals: u64,
    },
    /// One rollback-and-solve attempt of the symbolic step.
    SymbolicEpisode {
        /// CFG node rolled back to; `None` = solving from reset state.
        checkpoint: Option<u64>,
        /// Dependency equations in the engine.
        eqns: u64,
        /// Whether the episode installed a solved sequence.
        solve_result: SolveStatus,
    },
    /// One SMT query (bit-blast + CDCL solve).
    SmtSolve {
        /// Propositional variables in the blasted CNF.
        vars: u64,
        /// CNF clauses.
        clauses: u64,
        /// Satisfiable?
        sat: bool,
        /// Solve latency in clock units.
        micros: u64,
    },
    /// Checkpoint re-entry: snapshot restore (`prefix_len == 0`) or
    /// reset plus replay of a recorded input prefix (§4.5).
    PartialReset {
        /// Input cycles replayed to re-reach the checkpoint.
        prefix_len: u64,
    },
    /// A full DUV reset (campaign start, testcase retirement, or
    /// guidance falling back to the reset state).
    FullReset,
    /// A property violation was recorded for the first time.
    BugFired {
        /// Violated property name.
        property: String,
        /// Input vectors consumed at detection.
        vector: u64,
    },
    /// A budgeted solve stopped at a resource ceiling and the fuzzer
    /// degraded to constrained-random mutation.
    BudgetExhausted {
        /// Ceiling that was hit.
        reason: UnknownReason,
        /// Escalation level the attempt ran at (0 = base budget).
        level: u64,
        /// Conflicts spent by the attempt.
        conflicts: u64,
        /// Decisions spent by the attempt.
        decisions: u64,
        /// Propagations spent by the attempt.
        propagations: u64,
    },
    /// A CFG node was covered for the first time (provenance record).
    NodeCovered {
        /// Dense node id.
        node: u64,
        /// Input vectors consumed when the node was first reached.
        vector: u64,
        /// The mechanism that generated the covering input word.
        mechanism: Mechanism,
        /// Goal id of the solve attempt, for solver-guided words.
        goal: Option<u64>,
        /// Checkpoint node active at the time, if any.
        checkpoint: Option<u64>,
    },
    /// A CFG edge was covered for the first time (provenance record).
    EdgeCovered {
        /// Dense edge id.
        edge: u64,
        /// Source node id.
        src: u64,
        /// Destination node id.
        dst: u64,
        /// Input vectors consumed when the edge was first taken.
        vector: u64,
        /// The mechanism that generated the covering input word.
        mechanism: Mechanism,
    },
    /// Solver introspection: the aggregated CDCL cost of one symbolic
    /// goal's whole depth schedule (emitted once per goal when
    /// introspection is on).
    GoalSolveCost {
        /// Target register the goal drives.
        register: String,
        /// Target value.
        value: u64,
        /// Final verdict of the schedule.
        status: SolveStatus,
        /// Deepest unroll depth attempted.
        depth: u64,
        /// Solver calls the schedule issued.
        calls: u64,
        /// Total CDCL conflicts across the schedule.
        conflicts: u64,
        /// Learned clauses recorded.
        learned: u64,
        /// Restarts performed.
        restarts: u64,
        /// Log₄ histogram of per-call conflict costs (12 buckets),
        /// for p50/p90/p99 quantile rendering in `tracedump`.
        hist: Vec<u64>,
    },
    /// Solver introspection: an assumption-core-lite extraction
    /// attributed a failed goal to a blame set of signals.
    CoreExtracted {
        /// Target register the goal drives.
        register: String,
        /// Target value.
        value: u64,
        /// Assumptions surviving greedy minimization (0 = attribution
        /// fell back to hot-signal blame).
        core: u64,
        /// Signals in the resulting blame set.
        blamed: u64,
    },
}

impl Event {
    /// Number of event kinds.
    pub const KIND_COUNT: usize = 12;

    /// Every event kind, in `kind_index` order (append-only: indices
    /// are part of the trace schema).
    pub const KINDS: [&'static str; Event::KIND_COUNT] = [
        "CoverageDelta",
        "StagnationEnter",
        "SymbolicEpisode",
        "SmtSolve",
        "PartialReset",
        "FullReset",
        "BugFired",
        "BudgetExhausted",
        "NodeCovered",
        "EdgeCovered",
        "GoalSolveCost",
        "CoreExtracted",
    ];

    /// The schema discriminator for this event.
    pub fn kind(&self) -> &'static str {
        Event::KINDS[self.kind_index()]
    }

    /// Index into [`Event::KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Event::CoverageDelta { .. } => 0,
            Event::StagnationEnter { .. } => 1,
            Event::SymbolicEpisode { .. } => 2,
            Event::SmtSolve { .. } => 3,
            Event::PartialReset { .. } => 4,
            Event::FullReset => 5,
            Event::BugFired { .. } => 6,
            Event::BudgetExhausted { .. } => 7,
            Event::NodeCovered { .. } => 8,
            Event::EdgeCovered { .. } => 9,
            Event::GoalSolveCost { .. } => 10,
            Event::CoreExtracted { .. } => 11,
        }
    }

    /// Renders one JSONL record (no trailing newline): timestamp,
    /// task label, kind, then the variant's fields.
    pub fn to_json_line(&self, t: u64, task: u64) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{t},\"task\":{task},\"kind\":\"{}\"",
            self.kind()
        );
        match self {
            Event::CoverageDelta {
                vectors,
                coverage,
                delta,
            } => {
                let _ = write!(
                    s,
                    ",\"vectors\":{vectors},\"coverage\":{coverage},\"delta\":{delta}"
                );
            }
            Event::StagnationEnter { vectors, intervals } => {
                let _ = write!(s, ",\"vectors\":{vectors},\"intervals\":{intervals}");
            }
            Event::SymbolicEpisode {
                checkpoint,
                eqns,
                solve_result,
            } => {
                match checkpoint {
                    Some(cp) => {
                        let _ = write!(s, ",\"checkpoint\":{cp}");
                    }
                    None => s.push_str(",\"checkpoint\":null"),
                }
                let _ = write!(
                    s,
                    ",\"eqns\":{eqns},\"solve_result\":\"{}\"",
                    solve_result.serial()
                );
            }
            Event::SmtSolve {
                vars,
                clauses,
                sat,
                micros,
            } => {
                let _ = write!(
                    s,
                    ",\"vars\":{vars},\"clauses\":{clauses},\"sat\":{sat},\"micros\":{micros}"
                );
            }
            Event::PartialReset { prefix_len } => {
                let _ = write!(s, ",\"prefix_len\":{prefix_len}");
            }
            Event::FullReset => {}
            Event::BugFired { property, vector } => {
                s.push_str(",\"property\":\"");
                escape_json_into(property, &mut s);
                let _ = write!(s, "\",\"vector\":{vector}");
            }
            Event::BudgetExhausted {
                reason,
                level,
                conflicts,
                decisions,
                propagations,
            } => {
                let _ = write!(
                    s,
                    ",\"reason\":\"{}\",\"level\":{level},\"conflicts\":{conflicts},\
                     \"decisions\":{decisions},\"propagations\":{propagations}",
                    reason.name()
                );
            }
            Event::NodeCovered {
                node,
                vector,
                mechanism,
                goal,
                checkpoint,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"vector\":{vector},\"mechanism\":\"{}\"",
                    mechanism.name()
                );
                match goal {
                    Some(g) => {
                        let _ = write!(s, ",\"goal\":{g}");
                    }
                    None => s.push_str(",\"goal\":null"),
                }
                match checkpoint {
                    Some(cp) => {
                        let _ = write!(s, ",\"checkpoint\":{cp}");
                    }
                    None => s.push_str(",\"checkpoint\":null"),
                }
            }
            Event::EdgeCovered {
                edge,
                src,
                dst,
                vector,
                mechanism,
            } => {
                let _ = write!(
                    s,
                    ",\"edge\":{edge},\"src\":{src},\"dst\":{dst},\
                     \"vector\":{vector},\"mechanism\":\"{}\"",
                    mechanism.name()
                );
            }
            Event::GoalSolveCost {
                register,
                value,
                status,
                depth,
                calls,
                conflicts,
                learned,
                restarts,
                hist,
            } => {
                s.push_str(",\"register\":\"");
                escape_json_into(register, &mut s);
                let _ = write!(
                    s,
                    "\",\"value\":{value},\"status\":\"{}\",\"depth\":{depth},\
                     \"calls\":{calls},\"conflicts\":{conflicts},\"learned\":{learned},\
                     \"restarts\":{restarts},\"hist\":[",
                    status.serial()
                );
                for (i, b) in hist.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "{b}");
                }
                s.push(']');
            }
            Event::CoreExtracted {
                register,
                value,
                core,
                blamed,
            } => {
                s.push_str(",\"register\":\"");
                escape_json_into(register, &mut s);
                let _ = write!(
                    s,
                    "\",\"value\":{value},\"core\":{core},\"blamed\":{blamed}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// An event plus the timestamp it was recorded at (ring-buffer entry).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Clock reading at record time.
    pub micros: u64,
    /// The event.
    pub event: Event,
}

/// Appends `s` to `out` with JSON string escaping.
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let all = [
            Event::CoverageDelta {
                vectors: 1,
                coverage: 2,
                delta: 1,
            },
            Event::StagnationEnter {
                vectors: 1,
                intervals: 3,
            },
            Event::SymbolicEpisode {
                checkpoint: None,
                eqns: 4,
                solve_result: SolveStatus::Unsat,
            },
            Event::SmtSolve {
                vars: 10,
                clauses: 20,
                sat: true,
                micros: 5,
            },
            Event::PartialReset { prefix_len: 7 },
            Event::FullReset,
            Event::BugFired {
                property: "p".into(),
                vector: 9,
            },
            Event::BudgetExhausted {
                reason: UnknownReason::Conflicts,
                level: 1,
                conflicts: 100,
                decisions: 200,
                propagations: 300,
            },
            Event::NodeCovered {
                node: 3,
                vector: 40,
                mechanism: Mechanism::SolverGuided,
                goal: Some(2),
                checkpoint: Some(1),
            },
            Event::EdgeCovered {
                edge: 6,
                src: 1,
                dst: 3,
                vector: 40,
                mechanism: Mechanism::ReplayPrefix,
            },
            Event::GoalSolveCost {
                register: "r".into(),
                value: 1,
                status: SolveStatus::Unknown(UnknownReason::Conflicts),
                depth: 4,
                calls: 3,
                conflicts: 99,
                learned: 80,
                restarts: 2,
                hist: vec![0; 12],
            },
            Event::CoreExtracted {
                register: "r".into(),
                value: 1,
                core: 2,
                blamed: 3,
            },
        ];
        assert_eq!(all.len(), Event::KIND_COUNT);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.kind_index(), i);
            assert_eq!(e.kind(), Event::KINDS[i]);
        }
    }

    #[test]
    fn json_lines_are_well_formed() {
        let e = Event::SymbolicEpisode {
            checkpoint: Some(5),
            eqns: 12,
            solve_result: SolveStatus::Sat,
        };
        assert_eq!(
            e.to_json_line(42, 1),
            "{\"t\":42,\"task\":1,\"kind\":\"SymbolicEpisode\",\"checkpoint\":5,\
             \"eqns\":12,\"solve_result\":\"sat\"}"
        );
        let e = Event::FullReset;
        assert_eq!(
            e.to_json_line(0, 0),
            "{\"t\":0,\"task\":0,\"kind\":\"FullReset\"}"
        );
        let e = Event::BudgetExhausted {
            reason: UnknownReason::WallClock,
            level: 2,
            conflicts: 7,
            decisions: 9,
            propagations: 11,
        };
        assert_eq!(
            e.to_json_line(3, 0),
            "{\"t\":3,\"task\":0,\"kind\":\"BudgetExhausted\",\"reason\":\"wall_clock\",\
             \"level\":2,\"conflicts\":7,\"decisions\":9,\"propagations\":11}"
        );
        let e = Event::NodeCovered {
            node: 5,
            vector: 17,
            mechanism: Mechanism::ConstrainedRandom,
            goal: None,
            checkpoint: None,
        };
        assert_eq!(
            e.to_json_line(17, 2),
            "{\"t\":17,\"task\":2,\"kind\":\"NodeCovered\",\"node\":5,\"vector\":17,\
             \"mechanism\":\"random\",\"goal\":null,\"checkpoint\":null}"
        );
        let e = Event::EdgeCovered {
            edge: 2,
            src: 0,
            dst: 5,
            vector: 17,
            mechanism: Mechanism::SolverGuided,
        };
        assert_eq!(
            e.to_json_line(17, 2),
            "{\"t\":17,\"task\":2,\"kind\":\"EdgeCovered\",\"edge\":2,\"src\":0,\"dst\":5,\
             \"vector\":17,\"mechanism\":\"solver\"}"
        );
    }

    #[test]
    fn solver_introspection_lines_are_well_formed() {
        let e = Event::GoalSolveCost {
            register: "state".into(),
            value: 3,
            status: SolveStatus::Unknown(UnknownReason::Conflicts),
            depth: 4,
            calls: 3,
            conflicts: 120,
            learned: 100,
            restarts: 1,
            hist: vec![0, 1, 2],
        };
        assert_eq!(
            e.to_json_line(9, 1),
            "{\"t\":9,\"task\":1,\"kind\":\"GoalSolveCost\",\"register\":\"state\",\
             \"value\":3,\"status\":\"unknown:conflicts\",\"depth\":4,\"calls\":3,\
             \"conflicts\":120,\"learned\":100,\"restarts\":1,\"hist\":[0,1,2]}"
        );
        let e = Event::CoreExtracted {
            register: "lock\"r".into(),
            value: 7,
            core: 2,
            blamed: 2,
        };
        assert_eq!(
            e.to_json_line(1, 0),
            "{\"t\":1,\"task\":0,\"kind\":\"CoreExtracted\",\"register\":\"lock\\\"r\",\
             \"value\":7,\"core\":2,\"blamed\":2}"
        );
    }

    #[test]
    fn mechanism_names_round_trip() {
        for m in Mechanism::ALL {
            assert_eq!(Mechanism::parse(m.name()), Some(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert!(Mechanism::parse("telepathy").is_none());
        assert_eq!(Mechanism::ALL.len(), Mechanism::COUNT);
    }

    #[test]
    fn property_names_are_escaped() {
        let e = Event::BugFired {
            property: "a\"b\\c\n".into(),
            vector: 1,
        };
        let line = e.to_json_line(0, 0);
        assert!(line.contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn solve_status_serials_round_trip() {
        for (i, s) in SolveStatus::SERIALS.iter().enumerate() {
            let parsed = SolveStatus::parse(s).expect("serial parses");
            assert_eq!(parsed.serial(), *s);
            assert_eq!(parsed.serial_index(), i);
        }
        assert!(SolveStatus::parse("maybe").is_none());
        assert!(SolveStatus::parse("unknown:gremlins").is_none());
        for r in UnknownReason::ALL {
            assert_eq!(UnknownReason::parse(r.name()), Some(r));
        }
    }
}
