//! A tiny leveled logger for the bench binaries.
//!
//! Replaces ad-hoc `eprintln!` calls: operator-facing output goes
//! through [`log_at`] (or the [`info!`]/[`debug!`]/[`warn!`] macros)
//! and is filtered by a process-global level set from `--log-level`.

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Problems the operator should see.
    Warn = 1,
    /// Progress and results (the default).
    Info = 2,
    /// Per-campaign detail.
    Debug = 3,
}

impl Level {
    /// Name as accepted by `--log-level` and shown in record prefixes.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "quiet" => Ok(Level::Off),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level `{other}` (expected off|warn|info|debug)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-global log level.
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn log_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether records at `level` currently pass the filter.
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && level <= log_level()
}

/// Emits one record to stderr if `level` passes the filter.
pub fn log_at(level: Level, msg: &str) {
    if log_enabled(level) {
        eprintln!("[{}] {msg}", level.name());
    }
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log_at($crate::Level::Info, &format!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log_at($crate::Level::Warn, &format!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log_at($crate::Level::Debug, &format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("quiet".parse::<Level>().unwrap(), Level::Off);
        assert!("nope".parse::<Level>().is_err());
        assert!(Level::Warn < Level::Info);
    }

    #[test]
    fn filter_respects_global_level() {
        set_log_level(Level::Warn);
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_log_level(Level::Off);
        assert!(!log_enabled(Level::Warn));
        set_log_level(Level::Info);
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
    }
}
