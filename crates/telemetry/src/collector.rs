//! The collector: counters, gauges, phase timers and the event ring.

use crate::clock::{Clock, ManualClock, MonotonicClock};
use crate::event::{Event, TimedEvent};
use crate::sink::{NullSink, TraceSink};
use crate::snapshot::{MetricsSnapshot, PhaseStat};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing work counters. Every counter is a pure
/// function of the campaign's deterministic execution, so snapshots
/// merge byte-identically at any parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Input vectors driven into the DUV.
    Vectors,
    /// Coverage-scan intervals completed.
    Intervals,
    /// Simulator clock cycles stepped.
    SimSteps,
    /// Combinational settle passes executed.
    SettleSweeps,
    /// Simulator snapshots taken.
    SnapshotsTaken,
    /// Simulator snapshot restores.
    SnapshotRestores,
    /// Input cycles replayed during checkpoint re-entry.
    ReplayedCycles,
    /// SMT queries issued (one per exact-depth attempt).
    SolverCalls,
    /// Propositional variables across all blasted CNFs.
    SatVars,
    /// CNF clauses across all blasted CNFs.
    SatClauses,
    /// CDCL decisions across all solves.
    SatDecisions,
    /// CDCL conflicts across all solves.
    SatConflicts,
    /// Events evicted from the bounded ring.
    RingDropped,
    /// Budgeted solves that stopped at a resource ceiling.
    BudgetExhaustions,
    /// Solve goals skipped because the negative cache held them.
    NegCacheHits,
    /// Compiled-settle cone executions that took the packed two-state
    /// fast path (no X/Z bit live in the input cone).
    SettleFastPath,
    /// Compiled-settle cone executions that escaped to the four-state
    /// interpreter (X-island live, or lowering rejected).
    SettleEscapes,
    /// Snapshot pages copied at fork time (content differed from the
    /// tree parent, or the snapshot had no parent).
    SnapshotPagesCopied,
    /// Snapshot pages shared with the tree parent at fork time (content
    /// unchanged since the parent snapshot — the copy-on-write win).
    SnapshotPagesShared,
    /// Snapshots evicted from the byte-budgeted store.
    SnapshotEvictions,
    /// Clauses learned by traced CDCL searches (0 when solver
    /// introspection is off).
    LearnedClauses,
    /// Assumption-core-lite extractions performed on failed goals.
    CoreExtractions,
    /// Unrolled frames served from the solver-session bitblast cache
    /// (the frame's transition-relation CNF was already blasted).
    BitblastCacheHits,
    /// Unrolled frames blasted fresh because the cache had no session
    /// at that depth (or caching is off).
    BitblastCacheMisses,
    /// Portfolio races where a profile returned a definitive verdict
    /// (the canonical winner was Sat or Unsat, not Unknown).
    PortfolioRacesWon,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 25;

    /// All counters in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Vectors,
        Counter::Intervals,
        Counter::SimSteps,
        Counter::SettleSweeps,
        Counter::SnapshotsTaken,
        Counter::SnapshotRestores,
        Counter::ReplayedCycles,
        Counter::SolverCalls,
        Counter::SatVars,
        Counter::SatClauses,
        Counter::SatDecisions,
        Counter::SatConflicts,
        Counter::RingDropped,
        Counter::BudgetExhaustions,
        Counter::NegCacheHits,
        Counter::SettleFastPath,
        Counter::SettleEscapes,
        Counter::SnapshotPagesCopied,
        Counter::SnapshotPagesShared,
        Counter::SnapshotEvictions,
        Counter::LearnedClauses,
        Counter::CoreExtractions,
        Counter::BitblastCacheHits,
        Counter::BitblastCacheMisses,
        Counter::PortfolioRacesWon,
    ];

    /// Stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Vectors => "vectors",
            Counter::Intervals => "intervals",
            Counter::SimSteps => "sim_steps",
            Counter::SettleSweeps => "settle_sweeps",
            Counter::SnapshotsTaken => "snapshots_taken",
            Counter::SnapshotRestores => "snapshot_restores",
            Counter::ReplayedCycles => "replayed_cycles",
            Counter::SolverCalls => "solver_calls",
            Counter::SatVars => "sat_vars",
            Counter::SatClauses => "sat_clauses",
            Counter::SatDecisions => "sat_decisions",
            Counter::SatConflicts => "sat_conflicts",
            Counter::RingDropped => "ring_dropped",
            Counter::BudgetExhaustions => "budget_exhaustions",
            Counter::NegCacheHits => "neg_cache_hits",
            Counter::SettleFastPath => "settle_fast_path",
            Counter::SettleEscapes => "settle_escapes",
            Counter::SnapshotPagesCopied => "snapshot_pages_copied",
            Counter::SnapshotPagesShared => "snapshot_pages_shared",
            Counter::SnapshotEvictions => "snapshot_evictions",
            Counter::LearnedClauses => "learned_clauses",
            Counter::CoreExtractions => "core_extractions",
            Counter::BitblastCacheHits => "bitblast_cache_hits",
            Counter::BitblastCacheMisses => "bitblast_cache_misses",
            Counter::PortfolioRacesWon => "portfolio_races_won",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// Point-in-time levels. Merging takes the maximum, so a merged
/// snapshot reports the high-water mark across tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Cached per-node snapshots held.
    SnapshotCache,
    /// Seed words in the mutation corpus.
    CorpusSeeds,
    /// Multi-cycle testcases in the case corpus.
    CaseCorpus,
    /// Current budget-escalation level (0 = base budget).
    EscalationLevel,
    /// High-water mark of cones that escaped the compiled two-state
    /// fast path within a single settle (the X-island extent).
    XIslandCones,
    /// Unique page bytes held by the snapshot store (what the
    /// checkpoints actually cost in memory after page sharing).
    SnapshotBytes,
    /// Snapshot sharing ratio ×1000: logical deep-copy bytes of the
    /// live snapshots over their unique page bytes (0 when no
    /// snapshots are held; 1000 means no page is shared).
    SnapshotSharing,
    /// Mean adjacent-goal structural affinity ×1000 (shared-subterm
    /// ratio between neighbouring CFG goals at equal unroll depth;
    /// 0 when solver introspection is off or fewer than two goals
    /// were profiled).
    MeanAffinity,
    /// Solver-session reuse ratio ×1000: goals answered by a warm
    /// incremental session over all session-path goals (0 when
    /// incremental solving is off).
    SolverSessionReuse,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 9;

    /// All gauges in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::SnapshotCache,
        Gauge::CorpusSeeds,
        Gauge::CaseCorpus,
        Gauge::EscalationLevel,
        Gauge::XIslandCones,
        Gauge::SnapshotBytes,
        Gauge::SnapshotSharing,
        Gauge::MeanAffinity,
        Gauge::SolverSessionReuse,
    ];

    /// Stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::SnapshotCache => "snapshot_cache",
            Gauge::CorpusSeeds => "corpus_seeds",
            Gauge::CaseCorpus => "case_corpus",
            Gauge::EscalationLevel => "escalation_level",
            Gauge::XIslandCones => "x_island_cones",
            Gauge::SnapshotBytes => "snapshot_bytes",
            Gauge::SnapshotSharing => "snapshot_sharing_milli",
            Gauge::MeanAffinity => "mean_affinity_milli",
            Gauge::SolverSessionReuse => "solver_session_reuse_milli",
        }
    }

    fn index(self) -> usize {
        Gauge::ALL.iter().position(|g| *g == self).unwrap()
    }
}

/// The fixed phase taxonomy the campaign wall-time decomposes into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Input-word generation: sequencer / mutator / testcase refill.
    Mutate,
    /// Driving the DUV: input apply, clock step, combinational settle,
    /// coverage observation and per-strategy feedback.
    Settle,
    /// Property checking and bug recording.
    Props,
    /// The symbolic step (checkpoint selection, engine build) minus
    /// its nested solve/reset children.
    Symbolic,
    /// SMT solving (bit-blast + CDCL).
    Solve,
    /// Full resets and checkpoint re-entry (restore or replay).
    Reset,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// All phases in index order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Mutate,
        Phase::Settle,
        Phase::Props,
        Phase::Symbolic,
        Phase::Solve,
        Phase::Reset,
    ];

    /// Stable lowercase name used in trace records and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mutate => "mutate",
            Phase::Settle => "settle",
            Phase::Props => "props",
            Phase::Symbolic => "symbolic",
            Phase::Solve => "solve",
            Phase::Reset => "reset",
        }
    }

    /// Parses a phase name as rendered by [`Phase::name`].
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == s)
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|p| *p == self).unwrap()
    }
}

/// Number of duration-histogram buckets per phase (log₄ microseconds:
/// bucket `i` holds durations in `[4^i, 4^(i+1))`, the last bucket is
/// open-ended).
pub const HIST_BUCKETS: usize = 12;

/// The histogram bucket a duration falls into: floor(log₄(micros))
/// clamped into the bucket range; 0 → bucket 0. Shared with the
/// quantile estimator and external histogram builders so every layer
/// buckets identically.
pub fn bucket_of(micros: u64) -> usize {
    let bits = 64 - micros.leading_zeros() as usize;
    (bits.saturating_sub(1) / 2).min(HIST_BUCKETS - 1)
}

/// Default bound on the in-memory event ring.
pub const DEFAULT_RING_CAP: usize = 4096;

struct Frame {
    phase: Phase,
    start: u64,
    /// Total (inclusive) time of completed child spans.
    child_micros: u64,
}

/// Cheap campaign-local metrics and tracing hub.
///
/// All recording methods take `&self` (atomics / short critical
/// sections inside), so one collector can be shared via `Arc` between
/// the fuzzer, the simulator and the symbolic engine, and RAII
/// [`PhaseTimer`] spans can nest while other telemetry is recorded.
pub struct Collector {
    clock: Arc<dyn Clock>,
    task: AtomicU64,
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    phase_count: [AtomicU64; Phase::COUNT],
    phase_self_micros: [AtomicU64; Phase::COUNT],
    phase_hist: [[AtomicU64; HIST_BUCKETS]; Phase::COUNT],
    ring: Mutex<VecDeque<TimedEvent>>,
    ring_cap: usize,
    spans: Mutex<Vec<Frame>>,
    sink: Mutex<Box<dyn TraceSink>>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("task", &self.task.load(Ordering::Relaxed))
            .field("vectors", &self.get(Counter::Vectors))
            .field("events", &self.ring.lock().map(|r| r.len()).unwrap_or(0))
            .finish()
    }
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::deterministic()
    }
}

impl Collector {
    /// A collector over an arbitrary clock, with a null sink.
    pub fn with_clock(clock: Box<dyn Clock>) -> Collector {
        Collector {
            clock: Arc::from(clock),
            task: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_count: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_self_micros: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_hist: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            ring: Mutex::new(VecDeque::new()),
            ring_cap: DEFAULT_RING_CAP,
            spans: Mutex::new(Vec::new()),
            sink: Mutex::new(Box::new(NullSink)),
        }
    }

    /// The deterministic default: a [`ManualClock`] the driver advances
    /// (the fuzz loop sets it to the input-vector count), so every
    /// timestamp and duration is reproducible and merge-stable.
    pub fn deterministic() -> Collector {
        Collector::with_clock(Box::new(ManualClock::new()))
    }

    /// Wall-clock collector for operator-facing traces.
    pub fn monotonic() -> Collector {
        Collector::with_clock(Box::new(MonotonicClock::new()))
    }

    /// Labels every trace record from this collector (pool task index).
    pub fn set_task(&self, task: u64) {
        self.task.store(task, Ordering::Relaxed);
    }

    /// The task label trace records carry ([`Collector::set_task`]).
    pub fn task(&self) -> u64 {
        self.task.load(Ordering::Relaxed)
    }

    /// Streams one pre-formatted JSONL record to the sink, if a sink is
    /// attached. The synthetic-record seam for layers (the flight
    /// recorder) that format their own lines; like every record path
    /// this is a no-op on a disabled sink.
    pub fn trace_line(&self, line: &str) {
        let mut sink = self.sink.lock().unwrap();
        if sink.enabled() {
            sink.write_line(line);
        }
    }

    /// Replaces the trace sink.
    pub fn set_sink(&self, sink: Box<dyn TraceSink>) {
        if let Ok(mut s) = self.sink.lock() {
            *s = sink;
        }
    }

    /// Flushes the trace sink.
    pub fn flush(&self) {
        if let Ok(mut s) = self.sink.lock() {
            s.flush();
        }
    }

    /// Current clock reading.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// A shared handle to the collector's clock, so other subsystems
    /// (e.g. solver wall-clock deadlines) observe the same time base.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Drives a settable clock (no-op on wall clocks).
    pub fn set_time(&self, micros: u64) {
        self.clock.set(micros);
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Sets a gauge level.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        self.gauges[g.index()].store(v, Ordering::Relaxed);
    }

    /// Reads a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()].load(Ordering::Relaxed)
    }

    /// Streams one `Metrics` summary record to the sink: the
    /// compiled-settle fast-path counters alongside the settle-sweep
    /// total, so `tracedump` can show the fast-path hit rate per
    /// campaign. Call once at campaign end.
    pub fn emit_settle_metrics(&self) {
        let mut sink = self.sink.lock().unwrap();
        if !sink.enabled() {
            return;
        }
        let t = self.clock.now_micros();
        let line = format!(
            "{{\"t\":{t},\"task\":{},\"kind\":\"Metrics\",\"settle_fast_path\":{},\"settle_escapes\":{},\"x_island_cones\":{},\"settle_sweeps\":{}}}",
            self.task.load(Ordering::Relaxed),
            self.get(Counter::SettleFastPath),
            self.get(Counter::SettleEscapes),
            self.gauge(Gauge::XIslandCones),
            self.get(Counter::SettleSweeps),
        );
        sink.write_line(&line);
    }

    /// Streams one `SolverCache` summary record to the sink: the
    /// bitblast-cache hit/miss counters, the session-reuse gauge and
    /// the portfolio race tallies (`races` races decided, `wins[i]`
    /// won by budget profile `i`), so `tracedump` can report the
    /// cache hit rate and per-profile win columns. Call once at
    /// campaign end; no-op when no sink is attached.
    pub fn emit_solver_cache_metrics(&self, races: u64, wins: &[u64]) {
        let mut sink = self.sink.lock().unwrap();
        if !sink.enabled() {
            return;
        }
        let t = self.clock.now_micros();
        let wins = wins
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let line = format!(
            "{{\"t\":{t},\"task\":{},\"kind\":\"SolverCache\",\"bitblast_cache_hits\":{},\"bitblast_cache_misses\":{},\"session_reuse_milli\":{},\"portfolio_races\":{races},\"portfolio_wins\":[{wins}]}}",
            self.task.load(Ordering::Relaxed),
            self.get(Counter::BitblastCacheHits),
            self.get(Counter::BitblastCacheMisses),
            self.gauge(Gauge::SolverSessionReuse),
        );
        sink.write_line(&line);
    }

    /// Records an event: counts it, appends it to the bounded ring and
    /// streams it to the sink when one is attached.
    pub fn record(&self, event: Event) {
        let t = self.clock.now_micros();
        {
            let mut sink = self.sink.lock().unwrap();
            if sink.enabled() {
                let line = event.to_json_line(t, self.task.load(Ordering::Relaxed));
                sink.write_line(&line);
            }
        }
        let dropped = {
            let mut ring = self.ring.lock().unwrap();
            let dropped = ring.len() >= self.ring_cap;
            if dropped {
                ring.pop_front();
            }
            ring.push_back(TimedEvent { micros: t, event });
            dropped
        };
        if dropped {
            self.add(Counter::RingDropped, 1);
        }
    }

    /// Count of recorded events per kind, in [`Event::KINDS`] order.
    pub fn event_counts(&self) -> [u64; Event::KIND_COUNT] {
        let mut out = [0u64; Event::KIND_COUNT];
        if let Ok(ring) = self.ring.lock() {
            for e in ring.iter() {
                out[e.event.kind_index()] += 1;
            }
        }
        out
    }

    /// Copies the event ring out (oldest first).
    pub fn events(&self) -> Vec<TimedEvent> {
        self.ring
            .lock()
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Opens an RAII phase span. Spans nest: a parent's accumulated
    /// time excludes its children, so summing all phases never exceeds
    /// total wall time.
    pub fn phase(&self, phase: Phase) -> PhaseTimer<'_> {
        let start = self.clock.now_micros();
        self.spans.lock().unwrap().push(Frame {
            phase,
            start,
            child_micros: 0,
        });
        PhaseTimer {
            collector: self,
            phase,
        }
    }

    /// Like [`Collector::phase`], but the guard owns a clone of the
    /// `Arc`, leaving the caller free to mutably borrow itself while
    /// the span is open.
    pub fn phase_owned(self: &Arc<Collector>, phase: Phase) -> OwnedPhaseTimer {
        let start = self.clock.now_micros();
        self.spans.lock().unwrap().push(Frame {
            phase,
            start,
            child_micros: 0,
        });
        OwnedPhaseTimer {
            collector: Arc::clone(self),
            phase,
        }
    }

    fn end_phase(&self, phase: Phase) {
        let end = self.clock.now_micros();
        let (self_micros, inclusive) = {
            let mut spans = self.spans.lock().unwrap();
            // Scoped guards drop LIFO; tolerate a mismatch by popping
            // until this phase's frame is found.
            let mut frame = None;
            while let Some(f) = spans.pop() {
                if f.phase == phase {
                    frame = Some(f);
                    break;
                }
            }
            let Some(f) = frame else { return };
            let inclusive = end.saturating_sub(f.start);
            if let Some(parent) = spans.last_mut() {
                parent.child_micros += inclusive;
            }
            (inclusive.saturating_sub(f.child_micros), inclusive)
        };
        let i = phase.index();
        self.phase_count[i].fetch_add(1, Ordering::Relaxed);
        self.phase_self_micros[i].fetch_add(self_micros, Ordering::Relaxed);
        self.phase_hist[i][bucket_of(inclusive)].fetch_add(1, Ordering::Relaxed);
        let mut sink = self.sink.lock().unwrap();
        if sink.enabled() {
            let line = format!(
                "{{\"t\":{end},\"task\":{},\"kind\":\"Phase\",\"phase\":\"{}\",\"micros\":{self_micros}}}",
                self.task.load(Ordering::Relaxed),
                phase.name()
            );
            sink.write_line(&line);
        }
    }

    /// Total self-time recorded for a phase.
    pub fn phase_self_micros(&self, phase: Phase) -> u64 {
        self.phase_self_micros[phase.index()].load(Ordering::Relaxed)
    }

    /// Completed span count for a phase.
    pub fn phase_count(&self, phase: Phase) -> u64 {
        self.phase_count[phase.index()].load(Ordering::Relaxed)
    }

    /// Snapshots every counter, gauge, event count and phase statistic
    /// into a mergeable, deterministic-ordered value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let events = self.event_counts();
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|c| (c.name().to_string(), self.get(*c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|g| (g.name().to_string(), self.gauge(*g)))
                .collect(),
            events: Event::KINDS
                .iter()
                .enumerate()
                .map(|(i, k)| (k.to_string(), events[i]))
                .collect(),
            phases: Phase::ALL
                .iter()
                .map(|p| PhaseStat {
                    phase: p.name().to_string(),
                    count: self.phase_count(*p),
                    self_micros: self.phase_self_micros(*p),
                    buckets: self.phase_hist[p.index()]
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// RAII span handle from [`Collector::phase`]; records the phase
/// duration on drop.
pub struct PhaseTimer<'a> {
    collector: &'a Collector,
    phase: Phase,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.collector.end_phase(self.phase);
    }
}

/// RAII span handle from [`Collector::phase_owned`]; records the phase
/// duration on drop.
pub struct OwnedPhaseTimer {
    collector: Arc<Collector>,
    phase: Phase,
}

impl Drop for OwnedPhaseTimer {
    fn drop(&mut self) {
        self.collector.end_phase(self.phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SolveStatus;
    use crate::sink::BufferSink;

    #[test]
    fn counters_and_gauges_accumulate() {
        let c = Collector::deterministic();
        c.add(Counter::Vectors, 3);
        c.add(Counter::Vectors, 2);
        c.set_gauge(Gauge::SnapshotCache, 7);
        c.set_gauge(Gauge::SnapshotCache, 4);
        assert_eq!(c.get(Counter::Vectors), 5);
        assert_eq!(c.gauge(Gauge::SnapshotCache), 4);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let c = Collector::deterministic();
        for _ in 0..(DEFAULT_RING_CAP + 10) {
            c.record(Event::FullReset);
        }
        assert_eq!(c.events().len(), DEFAULT_RING_CAP);
        assert_eq!(c.get(Counter::RingDropped), 10);
    }

    #[test]
    fn nested_phases_attribute_self_time() {
        let c = Collector::deterministic();
        {
            let _outer = c.phase(Phase::Symbolic);
            c.set_time(10);
            {
                let _inner = c.phase(Phase::Solve);
                c.set_time(30);
            }
            c.set_time(35);
        }
        // Outer span 0..35 inclusive, child solve took 10..30.
        assert_eq!(c.phase_self_micros(Phase::Solve), 20);
        assert_eq!(c.phase_self_micros(Phase::Symbolic), 15);
        assert_eq!(c.phase_count(Phase::Symbolic), 1);
        assert_eq!(c.phase_count(Phase::Solve), 1);
        // Self times sum to the total elapsed window.
        let total: u64 = Phase::ALL.iter().map(|p| c.phase_self_micros(*p)).sum();
        assert_eq!(total, 35);
    }

    #[test]
    fn events_stream_to_sink_with_task_label() {
        let sink = BufferSink::new();
        let handle = sink.handle();
        let c = Collector::deterministic();
        c.set_task(3);
        c.set_sink(Box::new(sink));
        c.set_time(9);
        c.record(Event::SmtSolve {
            vars: 1,
            clauses: 2,
            sat: false,
            micros: 0,
        });
        {
            let _t = c.phase(Phase::Props);
        }
        let lines = handle.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"task\":3"));
        assert!(lines[0].contains("\"kind\":\"SmtSolve\""));
        assert!(lines[1].contains("\"kind\":\"Phase\""));
        assert!(lines[1].contains("\"phase\":\"props\""));
    }

    #[test]
    fn snapshot_has_fixed_deterministic_order() {
        let c = Collector::deterministic();
        c.record(Event::SymbolicEpisode {
            checkpoint: None,
            eqns: 1,
            solve_result: SolveStatus::Unsat,
        });
        let s = c.snapshot();
        assert_eq!(s.counters.len(), Counter::COUNT);
        assert_eq!(s.counters[0].0, "vectors");
        assert_eq!(s.events.len(), Event::KIND_COUNT);
        assert_eq!(s.phases.len(), Phase::COUNT);
        assert_eq!(s.phases[0].phase, "mutate");
        let again = c.snapshot();
        assert_eq!(s, again);
    }

    #[test]
    fn histogram_buckets_are_log4() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(3), 0);
        assert_eq!(bucket_of(4), 1);
        assert_eq!(bucket_of(15), 1);
        assert_eq!(bucket_of(16), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }
}
