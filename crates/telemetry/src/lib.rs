//! Dependency-free tracing and metrics for SymbFuzz campaigns.
//!
//! The [`Collector`] is shared (via `Arc`) between the fuzz loop, the
//! simulator, the symbolic engine and the SMT backend. It offers three
//! cheap primitives:
//!
//! * **Counters / gauges** — relaxed atomics ([`Counter`], [`Gauge`]).
//! * **Phase spans** — RAII [`PhaseTimer`]s decomposing wall time into
//!   the six [`Phase`]s of Algorithm 1; spans nest, and a parent's
//!   self-time excludes its children, so the per-phase totals sum to
//!   at most the campaign total.
//! * **Events** — the structured [`Event`] taxonomy, appended to a
//!   bounded in-memory ring and optionally streamed as JSONL through a
//!   [`TraceSink`].
//!
//! Timestamps come from a [`Clock`]. The default is the deterministic
//! [`ManualClock`] (driven by the input-vector count), which keeps
//! campaign reports byte-identical across `--jobs` values; wall-clock
//! traces opt in to [`MonotonicClock`] via `--trace-out`.

mod clock;
mod collector;
mod event;
mod log;
mod sampler;
mod sink;
mod snapshot;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use collector::{
    bucket_of, Collector, Counter, Gauge, OwnedPhaseTimer, Phase, PhaseTimer, DEFAULT_RING_CAP,
    HIST_BUCKETS,
};
pub use event::{escape_json_into, Event, Mechanism, SolveStatus, TimedEvent, UnknownReason};
pub use log::{log_at, log_enabled, log_level, set_log_level, Level};
pub use sampler::{
    flight_line, merge_flight, status_json, write_atomic, FlightSample, SampleState, Sampler,
    DEFAULT_SAMPLE_RING_CAP, FLIGHT_VERSION,
};
pub use sink::{BufferSink, FileSink, NullSink, SharedSink, StderrSink, TraceSink};
pub use snapshot::{hist_quantile, MetricsSnapshot, PhaseStat};
