//! Parser for the property language, reusing the HDL lexer.

use crate::ast::{PExpr, Property};
use std::fmt;
use symbfuzz_hdl::{lex, BinaryOp, Token, TokenKind, UnaryOp};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::Design;

/// Error from property parsing or name resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropError {
    msg: String,
}

impl PropError {
    fn new(msg: impl Into<String>) -> PropError {
        PropError { msg: msg.into() }
    }
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "property error: {}", self.msg)
    }
}

impl std::error::Error for PropError {}

impl Property {
    /// Parses and compiles a property against `design`.
    ///
    /// Identifiers resolve first to signals (hierarchical names with
    /// dots are written as-is, e.g. `u0.state`), then to design
    /// constants (enum variants / parameters).
    ///
    /// # Errors
    ///
    /// Returns [`PropError`] for syntax errors, unknown names or
    /// out-of-range selects.
    ///
    /// # Examples
    ///
    /// ```
    /// use symbfuzz_props::Property;
    /// let d = symbfuzz_netlist::elaborate_src(
    ///     "module m(input a, output y); assign y = a; endmodule", "m")?;
    /// let p = Property::parse("p", "y == a", &d)?;
    /// assert_eq!(p.history_depth(), 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(name: &str, source: &str, design: &Design) -> Result<Property, PropError> {
        let tokens = lex(source).map_err(|e| PropError::new(e.to_string()))?;
        let mut p = PParser {
            tokens,
            pos: 0,
            design,
        };
        let first = p.expr()?;
        let (antecedent, consequent) = if p.eat_symbol("|") && p.eat_symbol("->") {
            // `|->` lexes as `|` then `->`.
            (Some(first), p.expr()?)
        } else if p.eat_implication_nonoverlap() {
            // `|=>` lexes as `|` `=` `>`: rewrite a |=> c as $past(a) |-> c.
            (
                Some(PExpr::Past {
                    expr: Box::new(first),
                    depth: 1,
                }),
                p.expr()?,
            )
        } else {
            (None, first)
        };
        if !p.at_eof() {
            return Err(PropError::new(format!(
                "trailing input after property: {}",
                p.peek()
            )));
        }
        Ok(Property::new(
            name.to_string(),
            source.to_string(),
            antecedent,
            consequent,
        ))
    }
}

struct PParser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    design: &'a Design,
}

impl<'a> PParser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(t) if *t == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_implication_nonoverlap(&mut self) -> bool {
        // `|=>` arrives as `|`, `=`, `>` (after `|` failed to pair with `->`).
        let save = self.pos;
        if self.eat_symbol("=") && self.eat_symbol(">") {
            return true;
        }
        self.pos = save;
        // Or the full `|` `=` `>` from the start.
        if matches!(self.peek(), TokenKind::Symbol("|")) {
            let save = self.pos;
            self.bump();
            if self.eat_symbol("=") && self.eat_symbol(">") {
                return true;
            }
            self.pos = save;
        }
        false
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), PropError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(PropError::new(format!(
                "expected `{s}`, found {}",
                self.peek()
            )))
        }
    }

    fn err(&self, msg: impl Into<String>) -> PropError {
        PropError::new(msg)
    }

    // Precedence: ternary > || > && > | > ^ > & > == > rel > shift > add > mul > unary.
    fn expr(&mut self) -> Result<PExpr, PropError> {
        let cond = self.log_or()?;
        if self.eat_symbol("?") {
            let then = self.expr()?;
            self.expect_symbol(":")?;
            let els = self.expr()?;
            return Ok(PExpr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    fn binary_level(
        &mut self,
        ops: &[(&str, BinaryOp)],
        next: fn(&mut Self) -> Result<PExpr, PropError>,
    ) -> Result<PExpr, PropError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (sym, op) in ops {
                // `|` must not consume the `|->` / `|=>` implication.
                if *sym == "|" {
                    if let (TokenKind::Symbol("|"), Some(nt)) =
                        (self.peek(), self.tokens.get(self.pos + 1))
                    {
                        if matches!(nt.kind, TokenKind::Symbol("->") | TokenKind::Symbol("=")) {
                            continue;
                        }
                    }
                }
                if matches!(self.peek(), TokenKind::Symbol(s) if s == sym) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = PExpr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn log_or(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("||", BinaryOp::LogOr)], Self::log_and)
    }

    fn log_and(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("&&", BinaryOp::LogAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("|", BinaryOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("^", BinaryOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("&", BinaryOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(
            &[
                ("===", BinaryOp::CaseEq),
                ("!==", BinaryOp::CaseNe),
                ("==", BinaryOp::Eq),
                ("!=", BinaryOp::Ne),
            ],
            Self::relational,
        )
    }

    fn relational(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(
            &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
            Self::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<PExpr, PropError> {
        self.binary_level(&[("*", BinaryOp::Mul)], Self::unary)
    }

    fn unary(&mut self) -> Result<PExpr, PropError> {
        let ops: &[(&str, UnaryOp)] = &[
            ("!", UnaryOp::LogNot),
            ("~&", UnaryOp::RedNand),
            ("~|", UnaryOp::RedNor),
            ("~", UnaryOp::BitNot),
            ("&", UnaryOp::RedAnd),
            ("|", UnaryOp::RedOr),
            ("^", UnaryOp::RedXor),
            ("-", UnaryOp::Neg),
        ];
        for (sym, op) in ops {
            // `|` as reduction only when not part of an implication.
            if *sym == "|" {
                if let Some(nt) = self.tokens.get(self.pos + 1) {
                    if matches!(nt.kind, TokenKind::Symbol("->") | TokenKind::Symbol("=")) {
                        continue;
                    }
                }
            }
            if matches!(self.peek(), TokenKind::Symbol(s) if s == sym) {
                self.bump();
                let operand = self.unary()?;
                return Ok(PExpr::Unary {
                    op: *op,
                    operand: Box::new(operand),
                });
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<PExpr, PropError> {
        let mut base = self.primary()?;
        while self.eat_symbol("[") {
            let msb = self.const_u32()?;
            if self.eat_symbol(":") {
                let lsb = self.const_u32()?;
                self.expect_symbol("]")?;
                base = PExpr::Slice {
                    base: Box::new(base),
                    msb,
                    lsb,
                };
            } else {
                self.expect_symbol("]")?;
                base = PExpr::Index {
                    base: Box::new(base),
                    bit: msb,
                };
            }
        }
        Ok(base)
    }

    fn const_u32(&mut self) -> Result<u32, PropError> {
        match self.bump() {
            TokenKind::Number(n) => {
                let v = LogicVec::parse_literal(&n).map_err(|e| self.err(e.to_string()))?;
                v.to_u64()
                    .map(|x| x as u32)
                    .ok_or_else(|| self.err("select index must be a defined constant"))
            }
            other => Err(self.err(format!("expected constant index, found {other}"))),
        }
    }

    fn primary(&mut self) -> Result<PExpr, PropError> {
        if self.eat_symbol("(") {
            let e = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(e);
        }
        if self.eat_symbol("{") {
            let mut parts = vec![self.expr()?];
            while self.eat_symbol(",") {
                parts.push(self.expr()?);
            }
            self.expect_symbol("}")?;
            return Ok(PExpr::Concat(parts));
        }
        match self.bump() {
            TokenKind::Number(n) => {
                let v = LogicVec::parse_literal(&n).map_err(|e| self.err(e.to_string()))?;
                Ok(PExpr::Const(v))
            }
            TokenKind::Ident(id) if id.starts_with('$') => {
                self.expect_symbol("(")?;
                let arg = self.expr()?;
                let out = match id.as_str() {
                    "$past" => {
                        let depth = if self.eat_symbol(",") {
                            self.const_u32()?
                        } else {
                            1
                        };
                        if depth == 0 {
                            return Err(self.err("$past depth must be ≥ 1"));
                        }
                        PExpr::Past {
                            expr: Box::new(arg),
                            depth,
                        }
                    }
                    "$isunknown" => PExpr::IsUnknown(Box::new(arg)),
                    "$stable" => PExpr::Stable(Box::new(arg)),
                    "$rose" => PExpr::Rose(Box::new(arg)),
                    "$fell" => PExpr::Fell(Box::new(arg)),
                    other => return Err(self.err(format!("unknown system function `{other}`"))),
                };
                self.expect_symbol(")")?;
                Ok(out)
            }
            TokenKind::Ident(mut id) => {
                // Hierarchical names: a.b.c
                while self.eat_symbol(".") {
                    match self.bump() {
                        TokenKind::Ident(part) => {
                            id.push('.');
                            id.push_str(&part);
                        }
                        other => {
                            return Err(
                                self.err(format!("expected identifier after `.`, found {other}"))
                            )
                        }
                    }
                }
                if let Some(sig) = self.design.signal_by_name(&id) {
                    Ok(PExpr::Sig(sig))
                } else if let Some(v) = self.design.consts.get(&id) {
                    Ok(PExpr::Const(v.clone()))
                } else {
                    Err(self.err(format!("unknown signal or constant `{id}`")))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_netlist::elaborate_src;

    fn design() -> Design {
        elaborate_src(
            "module m(input clk, input rst_n, input [3:0] cmd, output logic [2:0] st, output logic err);
               typedef enum logic [2:0] {IDLE = 0, RUN = 1, DONE = 2} state_t;
               state_t sr;
               always_ff @(posedge clk or negedge rst_n)
                 if (!rst_n) sr <= IDLE;
                 else begin
                   case (sr)
                     IDLE: if (cmd == 4'd5) sr <= RUN;
                     RUN: sr <= DONE;
                     default: sr <= IDLE;
                   endcase
                 end
               always_comb st = sr;
               always_comb err = 1'b0;
             endmodule",
            "m",
        )
        .unwrap()
    }

    #[test]
    fn parses_plain_boolean() {
        let d = design();
        let p = Property::parse("p", "err == 1'b0", &d).unwrap();
        assert_eq!(p.history_depth(), 0);
    }

    #[test]
    fn parses_implication_and_past() {
        let d = design();
        let p = Property::parse("p", "st == RUN |-> $past(cmd) == 4'd5", &d).unwrap();
        assert_eq!(p.history_depth(), 1);
        let p2 = Property::parse("p2", "$past(st, 3) == IDLE |-> 1'b1", &d).unwrap();
        assert_eq!(p2.history_depth(), 3);
    }

    #[test]
    fn nonoverlap_implication_rewrites_to_past() {
        let d = design();
        let p = Property::parse("p", "st == RUN |=> st == DONE", &d).unwrap();
        assert_eq!(p.history_depth(), 1);
    }

    #[test]
    fn enum_constants_resolve() {
        let d = design();
        assert!(Property::parse("p", "st != DONE || err == 1'b0", &d).is_ok());
        assert!(Property::parse("p", "st == NOSUCH", &d).is_err());
    }

    #[test]
    fn system_functions_parse() {
        let d = design();
        for src in [
            "!$isunknown(st)",
            "$rose(err) |-> $past(cmd[3])",
            "$stable(st) || $fell(err)",
            "$past(cmd[3:1], 2) == 3'd0",
        ] {
            Property::parse("p", src, &d).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn rejects_garbage() {
        let d = design();
        assert!(Property::parse("p", "st ==", &d).is_err());
        assert!(Property::parse("p", "st == IDLE extra", &d).is_err());
        assert!(Property::parse("p", "$bogus(st)", &d).is_err());
        assert!(Property::parse("p", "$past(st, 0)", &d).is_err());
    }

    #[test]
    fn reduction_or_vs_implication_disambiguation() {
        let d = design();
        // `|cmd` is a reduction; `cmd |-> x` is an implication.
        assert!(Property::parse("p", "|cmd", &d).is_ok());
        let p = Property::parse("p", "|cmd |-> st == IDLE", &d).unwrap();
        assert!(p.history_depth() == 0);
    }
}
