//! Rolling-history property checker (the UVM-monitor-side scoreboard).

use crate::ast::Property;
use std::collections::VecDeque;
use symbfuzz_logic::LogicVec;

/// A recorded property violation (paper §4.9: "the simulator logs the
/// property name \[and\] simulation timestamp").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated property.
    pub property: String,
    /// Simulation cycle at which it failed.
    pub cycle: u64,
}

/// Checks a set of properties against every sampled cycle.
///
/// Feed one full value frame per clock cycle via
/// [`on_cycle`](Self::on_cycle); the checker keeps just enough history
/// for the deepest `$past` among its properties.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use symbfuzz_props::{Property, PropertyChecker};
/// use symbfuzz_sim::{Reentry, Simulator};
///
/// let d = Arc::new(symbfuzz_netlist::elaborate_src(
///     "module m(input clk, input rst_n, input a, output logic b);
///        always_ff @(posedge clk or negedge rst_n)
///          if (!rst_n) b <= 1'b0; else b <= a;
///      endmodule", "m")?);
/// let p = Property::parse("b_follows_a", "b == $past(a)", &d)?;
/// let mut checker = PropertyChecker::new(vec![p]);
/// let mut sim = Simulator::new(Arc::clone(&d));
/// sim.reenter(Reentry::FullReset { cycles: 1 });
/// let a = d.signal_by_name("a").unwrap();
/// sim.set_input(a, &symbfuzz_logic::LogicVec::from_u64(1, 1))?;
/// sim.settle()?;
/// checker.on_cycle(sim.cycle(), sim.values());
/// for _ in 0..10 {
///     sim.step();
///     checker.on_cycle(sim.cycle(), sim.values());
/// }
/// assert!(checker.violations().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PropertyChecker {
    properties: Vec<Property>,
    history: VecDeque<Vec<LogicVec>>,
    max_depth: usize,
    violations: Vec<Violation>,
    checked_cycles: u64,
}

impl PropertyChecker {
    /// Builds a checker for the given properties.
    pub fn new(properties: Vec<Property>) -> PropertyChecker {
        let max_depth = properties
            .iter()
            .map(|p| p.history_depth() as usize)
            .max()
            .unwrap_or(0);
        PropertyChecker {
            properties,
            history: VecDeque::new(),
            max_depth,
            violations: Vec::new(),
            checked_cycles: 0,
        }
    }

    /// The properties being monitored.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// Violations recorded so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Names of properties that have fired at least once.
    pub fn violated_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .violations
            .iter()
            .map(|v| v.property.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Total cycles checked.
    pub fn checked_cycles(&self) -> u64 {
        self.checked_cycles
    }

    /// Clears history (use after a checkpoint restore so `$past` does
    /// not see across the discontinuity) while keeping violations.
    pub fn reset_history(&mut self) {
        self.history.clear();
    }

    /// Ingests one sampled frame and evaluates every property at this
    /// cycle. Returns the violations detected *this* cycle.
    pub fn on_cycle(&mut self, cycle: u64, values: &[LogicVec]) -> Vec<Violation> {
        self.history.push_back(values.to_vec());
        while self.history.len() > self.max_depth + 1 {
            self.history.pop_front();
        }
        self.checked_cycles += 1;
        let frames: Vec<Vec<LogicVec>> = self.history.iter().cloned().collect();
        let mut new = Vec::new();
        for p in &self.properties {
            if !p.holds(&frames) {
                let v = Violation {
                    property: p.name().to_string(),
                    cycle,
                };
                new.push(v.clone());
                self.violations.push(v);
            }
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use symbfuzz_logic::LogicVec;
    use symbfuzz_netlist::elaborate_src;
    use symbfuzz_sim::{Reentry, Simulator};

    /// A UART-like DUV with the paper's Bug 11: parity error raised
    /// even when parity checking is disabled.
    const BUGGY_UART: &str = "
        module uart_rx(input clk, input rst_n, input [7:0] rx_data,
                       input parity_bit, input parity_enable, input valid,
                       output logic rx_parity_err);
          always_ff @(posedge clk or negedge rst_n)
            if (!rst_n) rx_parity_err <= 1'b0;
            else rx_parity_err <= valid & ((^rx_data) ^ parity_bit);
        endmodule";

    fn uart() -> (Arc<symbfuzz_netlist::Design>, Simulator) {
        let d = Arc::new(elaborate_src(BUGGY_UART, "uart_rx").unwrap());
        let sim = Simulator::new(Arc::clone(&d));
        (d, sim)
    }

    #[test]
    fn catches_the_uart_parity_bug() {
        let (d, mut sim) = uart();
        // Listing 26: rx_parity_err |-> parity_enable.
        let p = Property::parse("uart_parity", "rx_parity_err |-> parity_enable", &d).unwrap();
        let mut checker = PropertyChecker::new(vec![p]);
        sim.reenter(Reentry::FullReset { cycles: 1 });
        // Odd-parity mismatch with parity disabled: the bug fires.
        for (sig, val) in [
            ("rx_data", 0b0000_0001u64),
            ("parity_bit", 0),
            ("parity_enable", 0),
            ("valid", 1),
        ] {
            let s = d.signal_by_name(sig).unwrap();
            sim.set_input(s, &LogicVec::from_u64(d.signal(s).width, val))
                .unwrap();
        }
        sim.step();
        let v = checker.on_cycle(sim.cycle(), sim.values());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].property, "uart_parity");
        assert_eq!(checker.violated_names(), vec!["uart_parity"]);
    }

    #[test]
    fn vacuous_when_antecedent_false() {
        let (d, mut sim) = uart();
        let p = Property::parse("uart_parity", "rx_parity_err |-> parity_enable", &d).unwrap();
        let mut checker = PropertyChecker::new(vec![p]);
        sim.reenter(Reentry::FullReset { cycles: 1 });
        // Matching parity: no error flag, property vacuously true.
        for (sig, val) in [
            ("rx_data", 3u64),
            ("parity_bit", 0),
            ("parity_enable", 0),
            ("valid", 1),
        ] {
            let s = d.signal_by_name(sig).unwrap();
            sim.set_input(s, &LogicVec::from_u64(d.signal(s).width, val))
                .unwrap();
        }
        for _ in 0..5 {
            sim.step();
            checker.on_cycle(sim.cycle(), sim.values());
        }
        assert!(checker.violations().is_empty());
        assert_eq!(checker.checked_cycles(), 5);
    }

    #[test]
    fn isunknown_detects_undefined_fsm_state() {
        // Bug 2 pattern (Listing 7): register left X.
        let d = Arc::new(
            elaborate_src(
                "module m(input clk, input [1:0] d, output logic [1:0] q);
                   always_ff @(posedge clk) q <= d;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let p = Property::parse("defined", "!$isunknown(q)", &d).unwrap();
        let mut checker = PropertyChecker::new(vec![p]);
        let mut sim = Simulator::new(Arc::clone(&d));
        // No reset: q is X on the first sampled cycle.
        checker.on_cycle(sim.cycle(), sim.values());
        assert_eq!(checker.violations().len(), 1);
        // Drive a defined value; violation stops recurring.
        let din = d.signal_by_name("d").unwrap();
        sim.set_input(din, &LogicVec::from_u64(2, 1)).unwrap();
        sim.step();
        checker.on_cycle(sim.cycle(), sim.values());
        assert_eq!(checker.violations().len(), 1);
    }

    #[test]
    fn past_with_history_reset() {
        let d = Arc::new(
            elaborate_src(
                "module m(input clk, input rst_n, input a, output logic b);
                   always_ff @(posedge clk or negedge rst_n)
                     if (!rst_n) b <= 1'b0; else b <= a;
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let p = Property::parse("follow", "b == $past(a)", &d).unwrap();
        let mut checker = PropertyChecker::new(vec![p]);
        let mut sim = Simulator::new(Arc::clone(&d));
        sim.reenter(Reentry::FullReset { cycles: 1 });
        let a = d.signal_by_name("a").unwrap();
        // Hold `a` at a defined constant: `b` samples it at each edge,
        // so b(t) == a(t-1) holds from the second frame on and the
        // first frame is vacuous ($past out of history).
        sim.set_input(a, &LogicVec::from_u64(1, 1)).unwrap();
        sim.settle().unwrap();
        checker.on_cycle(sim.cycle(), sim.values());
        for _ in 0..8u64 {
            sim.step();
            checker.on_cycle(sim.cycle(), sim.values());
        }
        assert!(checker.violations().is_empty());
        // After a snapshot restore, history must be cleared or $past
        // would compare across the discontinuity.
        checker.reset_history();
        checker.on_cycle(sim.cycle(), sim.values());
        assert!(checker.violations().is_empty()); // vacuous on first frame
    }

    #[test]
    fn multiple_properties_tracked_independently() {
        let (d, mut sim) = uart();
        let p1 = Property::parse("parity", "rx_parity_err |-> parity_enable", &d).unwrap();
        let p2 = Property::parse("always_true", "1'b1", &d).unwrap();
        let mut checker = PropertyChecker::new(vec![p1, p2]);
        sim.reenter(Reentry::FullReset { cycles: 1 });
        for (sig, val) in [
            ("rx_data", 1u64),
            ("parity_bit", 0),
            ("parity_enable", 0),
            ("valid", 1),
        ] {
            let s = d.signal_by_name(sig).unwrap();
            sim.set_input(s, &LogicVec::from_u64(d.signal(s).width, val))
                .unwrap();
        }
        sim.step();
        checker.on_cycle(sim.cycle(), sim.values());
        assert_eq!(checker.violated_names(), vec!["parity"]);
    }
}
