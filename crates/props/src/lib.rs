//! Security-property language and runtime checker.
//!
//! SymbFuzz detects bugs not by golden-model comparison but as
//! violations of SystemVerilog-assertion-style *security properties*
//! bound to the design (§4.9). The properties in the paper (Listings
//! 5–32) live in the boolean layer of SVA plus a handful of sampled
//! functions; this crate implements exactly that fragment:
//!
//! * boolean/bit operators, comparisons, ternary, bit/part selects;
//! * overlapping `|->` and non-overlapping `|=>` implication;
//! * `$past(expr[, n])`, `$isunknown(expr)`, `$stable(expr)`,
//!   `$rose(expr)`, `$fell(expr)`;
//! * design constants (enum variants, parameters) by name.
//!
//! A property is checked every clock cycle against a rolling history of
//! sampled signal values; a failure produces a [`Violation`] with the
//! cycle number, which the fuzzer logs into its bug report
//! (Algorithm 1, lines 23–25).
//!
//! A property holds when it evaluates to true *or* is vacuous (an
//! implication whose antecedent is false, or a `$past` reaching before
//! cycle 0). An `X` result is treated as a violation only for
//! properties that demand definedness via `!$isunknown(...)`; plain
//! boolean results of `X` are conservatively reported as violations
//! (four-state pessimism: an assertion that cannot be shown to hold has
//! failed).
//!
//! # Examples
//!
//! ```
//! use symbfuzz_props::Property;
//!
//! let d = symbfuzz_netlist::elaborate_src(
//!     "module m(input clk, input rst_n, input en, output logic busy);
//!        always_ff @(posedge clk or negedge rst_n)
//!          if (!rst_n) busy <= 1'b0; else busy <= en;
//!      endmodule", "m")?;
//! // \"if busy rose, en must have been high on the previous cycle\"
//! let p = Property::parse("busy_cause", "$rose(busy) |-> $past(en)", &d)?;
//! assert_eq!(p.name(), "busy_cause");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod checker;
mod parser;

pub use ast::{PExpr, Property};
pub use checker::{PropertyChecker, Violation};
pub use parser::PropError;
