//! Property AST and per-cycle evaluation.

use symbfuzz_hdl::{BinaryOp, UnaryOp};
use symbfuzz_logic::{Bit, LogicVec};
use symbfuzz_netlist::SignalId;

/// A compiled property expression. Signals are resolved to
/// [`SignalId`]s at parse time, constants are folded to values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PExpr {
    /// A constant value.
    Const(LogicVec),
    /// A sampled signal value.
    Sig(SignalId),
    /// `$past(expr, depth)` — the value `depth` cycles ago.
    Past {
        /// Sampled expression.
        expr: Box<PExpr>,
        /// How many cycles back (≥ 1).
        depth: u32,
    },
    /// `$isunknown(expr)` — 1 iff any bit is `X`/`Z`.
    IsUnknown(Box<PExpr>),
    /// `$stable(expr)` — value identical (case equality) to one cycle ago.
    Stable(Box<PExpr>),
    /// `$rose(expr)` — bit 0 went 0→1 since the previous cycle.
    Rose(Box<PExpr>),
    /// `$fell(expr)` — bit 0 went 1→0 since the previous cycle.
    Fell(Box<PExpr>),
    /// Unary operator (same set as the HDL).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<PExpr>,
    },
    /// Binary operator (same set as the HDL).
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<PExpr>,
        /// Right operand.
        rhs: Box<PExpr>,
    },
    /// `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<PExpr>,
        /// Value when true.
        then: Box<PExpr>,
        /// Value when false.
        els: Box<PExpr>,
    },
    /// `sig[bit]` with a constant index (relative to the signal value).
    Index {
        /// Base expression.
        base: Box<PExpr>,
        /// Bit index.
        bit: u32,
    },
    /// `sig[msb:lsb]` with constant bounds.
    Slice {
        /// Base expression.
        base: Box<PExpr>,
        /// Most significant bit.
        msb: u32,
        /// Least significant bit.
        lsb: u32,
    },
    /// `{a, b, …}` concatenation, element 0 most significant.
    Concat(Vec<PExpr>),
}

/// A named property: optional antecedent `|->` consequent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    name: String,
    source: String,
    /// Antecedent, if the property is an implication.
    pub(crate) antecedent: Option<PExpr>,
    /// The consequent (or the whole expression).
    pub(crate) consequent: PExpr,
    /// Maximum `$past` depth referenced anywhere (history needed).
    pub(crate) depth: u32,
}

impl Property {
    pub(crate) fn new(
        name: String,
        source: String,
        antecedent: Option<PExpr>,
        consequent: PExpr,
    ) -> Property {
        let mut depth = 0;
        if let Some(a) = &antecedent {
            depth = depth.max(max_depth(a));
        }
        depth = depth.max(max_depth(&consequent));
        Property {
            name,
            source,
            antecedent,
            consequent,
            depth,
        }
    }

    /// The property's name (used in violation reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// History depth (cycles of `$past`) this property needs.
    pub fn history_depth(&self) -> u32 {
        self.depth
    }

    /// Evaluates the property at the newest frame of `frames`
    /// (`frames[len-1]` is "now", `frames[len-1-n]` is `$past` by `n`).
    /// Returns `true` when the property holds or is vacuous.
    pub fn holds(&self, frames: &[Vec<LogicVec>]) -> bool {
        let t = frames.len() - 1;
        if let Some(a) = &self.antecedent {
            match eval(a, frames, t) {
                Some(v) if v.to_condition() == Bit::One => {}
                // Antecedent false, X, or out of history: vacuous pass.
                _ => return true,
            }
        }
        match eval(&self.consequent, frames, t) {
            // Out-of-history $past in the consequent: vacuous pass.
            None => true,
            Some(v) => v.to_condition() == Bit::One,
        }
    }
}

fn max_depth(e: &PExpr) -> u32 {
    match e {
        PExpr::Const(_) | PExpr::Sig(_) => 0,
        PExpr::Past { expr, depth } => depth + max_depth(expr),
        PExpr::IsUnknown(a) | PExpr::Unary { operand: a, .. } => max_depth(a),
        PExpr::Stable(a) | PExpr::Rose(a) | PExpr::Fell(a) => 1 + max_depth(a),
        PExpr::Binary { lhs, rhs, .. } => max_depth(lhs).max(max_depth(rhs)),
        PExpr::Ternary { cond, then, els } => {
            max_depth(cond).max(max_depth(then)).max(max_depth(els))
        }
        PExpr::Index { base, .. } | PExpr::Slice { base, .. } => max_depth(base),
        PExpr::Concat(parts) => parts.iter().map(max_depth).max().unwrap_or(0),
    }
}

/// Evaluates at frame index `t`; `None` when `$past` reaches before the
/// first frame (vacuous).
fn eval(e: &PExpr, frames: &[Vec<LogicVec>], t: usize) -> Option<LogicVec> {
    match e {
        PExpr::Const(v) => Some(v.clone()),
        PExpr::Sig(s) => Some(frames[t][s.index()].clone()),
        PExpr::Past { expr, depth } => {
            let d = *depth as usize;
            if t < d {
                return None;
            }
            eval(expr, frames, t - d)
        }
        PExpr::IsUnknown(a) => {
            let v = eval(a, frames, t)?;
            Some(LogicVec::from_u64(1, v.has_unknown() as u64))
        }
        PExpr::Stable(a) => {
            if t < 1 {
                return None;
            }
            let now = eval(a, frames, t)?;
            let before = eval(a, frames, t - 1)?;
            Some(LogicVec::from_u64(1, now.case_eq(&before) as u64))
        }
        PExpr::Rose(a) => {
            if t < 1 {
                return None;
            }
            let now = eval(a, frames, t)?;
            let before = eval(a, frames, t - 1)?;
            Some(LogicVec::from_u64(
                1,
                (before.bit(0) == Bit::Zero && now.bit(0) == Bit::One) as u64,
            ))
        }
        PExpr::Fell(a) => {
            if t < 1 {
                return None;
            }
            let now = eval(a, frames, t)?;
            let before = eval(a, frames, t - 1)?;
            Some(LogicVec::from_u64(
                1,
                (before.bit(0) == Bit::One && now.bit(0) == Bit::Zero) as u64,
            ))
        }
        PExpr::Unary { op, operand } => {
            let v = eval(operand, frames, t)?;
            Some(match op {
                UnaryOp::LogNot => LogicVec::from_bit(!v.to_condition()),
                UnaryOp::BitNot => !&v,
                UnaryOp::RedAnd => LogicVec::from_bit(v.reduce_and()),
                UnaryOp::RedOr => LogicVec::from_bit(v.reduce_or()),
                UnaryOp::RedXor => LogicVec::from_bit(v.reduce_xor()),
                UnaryOp::RedNand => LogicVec::from_bit(!v.reduce_and()),
                UnaryOp::RedNor => LogicVec::from_bit(!v.reduce_or()),
                UnaryOp::Neg => v.neg(),
            })
        }
        PExpr::Binary { op, lhs, rhs } => {
            let a = eval(lhs, frames, t)?;
            let b = eval(rhs, frames, t)?;
            Some(match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::And => &a & &b,
                BinaryOp::Or => &a | &b,
                BinaryOp::Xor => &a ^ &b,
                BinaryOp::LogAnd => LogicVec::from_bit(a.to_condition() & b.to_condition()),
                BinaryOp::LogOr => LogicVec::from_bit(a.to_condition() | b.to_condition()),
                BinaryOp::Eq => LogicVec::from_bit(a.logic_eq(&b)),
                BinaryOp::Ne => LogicVec::from_bit(!a.logic_eq(&b)),
                BinaryOp::CaseEq => LogicVec::from_u64(1, a.case_eq(&b) as u64),
                BinaryOp::CaseNe => LogicVec::from_u64(1, !a.case_eq(&b) as u64),
                BinaryOp::Lt => LogicVec::from_bit(a.ult(&b)),
                BinaryOp::Le => LogicVec::from_bit(a.ule(&b)),
                BinaryOp::Gt => LogicVec::from_bit(b.ult(&a)),
                BinaryOp::Ge => LogicVec::from_bit(b.ule(&a)),
                BinaryOp::Shl => a.shl_vec(&b),
                BinaryOp::Shr => a.lshr_vec(&b),
            })
        }
        PExpr::Ternary { cond, then, els } => {
            let c = eval(cond, frames, t)?;
            match c.to_condition() {
                Bit::One => eval(then, frames, t),
                Bit::Zero => eval(els, frames, t),
                _ => Some(LogicVec::xes(1)),
            }
        }
        PExpr::Index { base, bit } => {
            let v = eval(base, frames, t)?;
            if *bit < v.width() {
                Some(LogicVec::from_bit(v.bit(*bit)))
            } else {
                Some(LogicVec::from_bit(Bit::X))
            }
        }
        PExpr::Slice { base, msb, lsb } => {
            let v = eval(base, frames, t)?;
            if *msb < v.width() && lsb <= msb {
                Some(v.slice(*lsb, msb - lsb + 1))
            } else {
                Some(LogicVec::xes(msb - lsb + 1))
            }
        }
        PExpr::Concat(parts) => {
            let mut out = LogicVec::zeros(0);
            for p in parts {
                let v = eval(p, frames, t)?;
                out = LogicVec::concat(&out, &v);
            }
            Some(out)
        }
    }
}
