//! Criterion microbenchmarks backing the paper's performance claims:
//!
//! * simulator throughput (the substrate for all vector counts);
//! * step and settle throughput under the compiled word-level VM vs
//!   the levelized scheduler vs the original global fixpoint (the
//!   simulation tentpoles' A/B/C);
//! * netlist-to-bytecode compile time (the compiled kernel's one-off
//!   construction cost, paid once per `Simulator::new`);
//! * checkpoint snapshot-restore vs full reset + input replay — the
//!   §5.5.2 claim that "checkpoint replays finish in microseconds,
//!   avoiding full reboots";
//! * SMT solving latency for dependency-equation targets (§4.7);
//! * bit-blasting + CDCL on adder equivalence (solver substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use symbfuzz_designs::processor_benchmarks;
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{comb_schedule, compile, CompileOpts};
use symbfuzz_sim::{Reentry, SettleMode, Simulator};
use symbfuzz_smt::{BvSolver, SatOutcome};
use symbfuzz_symexec::SymbolicEngine;

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for b in processor_benchmarks() {
        let design = b.design().unwrap();
        group.bench_with_input(
            BenchmarkId::new("100_cycles", b.name),
            &design,
            |bench, d| {
                let mut sim = Simulator::new(Arc::clone(d));
                sim.reenter(Reentry::FullReset { cycles: 2 });
                let word = LogicVec::from_u64(d.fuzz_width().max(1), 0x5A5A);
                bench.iter(|| {
                    sim.apply_input_word(&word);
                    for _ in 0..100 {
                        sim.step();
                    }
                    sim.cycle()
                });
            },
        );
    }
    group.finish();
}

/// Tentpole A/B/C: per-step cost (clock + settles) under the compiled
/// word-level VM vs the levelized dirty-set sweep vs the global
/// fixpoint, on every processor design.
fn step_throughput_by_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_throughput");
    for b in processor_benchmarks() {
        let design = b.design().unwrap();
        for (label, mode) in [
            ("compiled", SettleMode::Compiled),
            ("levelized", SettleMode::Levelized),
            ("fixpoint", SettleMode::Fixpoint),
        ] {
            let id = BenchmarkId::new(label, b.name);
            group.bench_with_input(id, &design, |bench, d| {
                let mut sim = Simulator::new(Arc::clone(d));
                sim.set_settle_mode(mode);
                sim.reenter(Reentry::FullReset { cycles: 2 });
                let width = d.fuzz_width().max(1);
                let mut i = 0u64;
                bench.iter(|| {
                    i = i.wrapping_add(0x9E3779B97F4A7C15);
                    sim.apply_input_word(&LogicVec::from_u64(width.min(64), i));
                    sim.step();
                    sim.cycle()
                });
            });
        }
    }
    group.finish();
}

/// Settle-only cost: one input toggle then a combinational settle, the
/// unit the dirty-set skipping optimises hardest (few units re-run).
fn settle_throughput_by_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("settle_throughput");
    for b in processor_benchmarks() {
        let design = b.design().unwrap();
        for (label, mode) in [
            ("compiled", SettleMode::Compiled),
            ("levelized", SettleMode::Levelized),
            ("fixpoint", SettleMode::Fixpoint),
        ] {
            let id = BenchmarkId::new(label, b.name);
            group.bench_with_input(id, &design, |bench, d| {
                let mut sim = Simulator::new(Arc::clone(d));
                sim.set_settle_mode(mode);
                sim.reenter(Reentry::FullReset { cycles: 2 });
                let width = d.fuzz_width().max(1);
                let mut i = 0u64;
                bench.iter(|| {
                    i = i.wrapping_add(1);
                    sim.apply_input_word(&LogicVec::from_u64(width.min(64), i));
                    sim.settle().is_ok()
                });
            });
        }
    }
    group.finish();
}

/// The compiled kernel's one-off construction cost: lowering the
/// elaborated netlist + levelized schedule into word bytecode. Paid
/// once per `Simulator::new`, so it only has to be small next to a
/// campaign, not next to a step.
fn bytecode_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("bytecode_compile");
    for b in processor_benchmarks() {
        let design = b.design().unwrap();
        let sched = comb_schedule(&design);
        group.bench_with_input(BenchmarkId::new("compile", b.name), &design, |bench, d| {
            bench.iter(|| compile(d, &sched, CompileOpts::default()).stats.total_ops)
        });
    }
    group.finish();
}

/// Per-dispatch cost of one settled process: the VM executing word
/// bytecode vs the interpreter walking the statement tree, isolated
/// from clocking by re-settling a single toggled cone.
fn vm_dispatch(c: &mut Criterion) {
    let b = &processor_benchmarks()[0];
    let design = b.design().unwrap();
    let mut group = c.benchmark_group("vm_dispatch");
    for (label, mode) in [
        ("compiled_vm", SettleMode::Compiled),
        ("interpreted", SettleMode::Levelized),
    ] {
        group.bench_function(label, |bench| {
            let mut sim = Simulator::new(Arc::clone(&design));
            sim.set_settle_mode(mode);
            sim.reenter(Reentry::FullReset { cycles: 2 });
            let width = design.fuzz_width().max(1);
            let mut i = 0u64;
            bench.iter(|| {
                i = i.wrapping_add(1);
                sim.apply_input_word(&LogicVec::from_u64(width.min(64), i));
                sim.settle().is_ok()
            });
        });
    }
    group.finish();
}

/// §5.5.2: snapshot restore must be dramatically cheaper than reset +
/// replaying the recorded input path.
fn checkpoint_reentry(c: &mut Criterion) {
    let b = &processor_benchmarks()[0];
    let design = b.design().unwrap();
    let mut sim = Simulator::new(Arc::clone(&design));
    sim.reenter(Reentry::FullReset { cycles: 2 });
    // Walk 200 cycles into the design and checkpoint.
    let path: Vec<LogicVec> = (0..200u64)
        .map(|i| LogicVec::from_u64(design.fuzz_width().max(1), i.wrapping_mul(0x9E37)))
        .collect();
    for w in &path {
        sim.apply_input_word(w);
        sim.step();
    }
    let mut store = sim.snapshot_store(u64::MAX);
    let snap = sim.fork(&mut store, None);

    let mut group = c.benchmark_group("checkpoint_reentry");
    group.bench_function("snapshot_enter", |bench| {
        bench.iter(|| {
            sim.enter(&store, snap.id);
            sim.cycle()
        });
    });
    group.bench_function("full_reset_plus_replay", |bench| {
        bench.iter(|| {
            sim.reenter(Reentry::FullReset { cycles: 2 });
            for w in &path {
                sim.apply_input_word(w);
                sim.step();
            }
            sim.cycle()
        });
    });
    group.finish();
}

fn symbolic_solving(c: &mut Criterion) {
    let b = &processor_benchmarks()[0];
    let design = b.design().unwrap();
    let engine = SymbolicEngine::new(Arc::clone(&design));
    let state: Vec<LogicVec> = design
        .signals
        .iter()
        .map(|s| LogicVec::zeros(s.width))
        .collect();
    let target = design.signal_by_name("if_state").unwrap();
    let mut group = c.benchmark_group("symbolic_guidance");
    group.bench_function("solve_step_ibex_state", |bench| {
        bench.iter(|| engine.solve_step(&state, &[(target, LogicVec::from_u64(3, 1))]))
    });
    group.bench_function("build_engine_ibex", |bench| {
        bench.iter(|| SymbolicEngine::new(Arc::clone(&design)).num_equations())
    });
    group.finish();
}

fn sat_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("smt");
    group.bench_function("adder_equation_16bit", |bench| {
        bench.iter(|| {
            let mut s = BvSolver::new();
            let a = s.pool_mut().var("a", 16);
            let b = s.pool_mut().var("b", 16);
            let goal = {
                let p = s.pool_mut();
                let sum = p.add(a, b);
                let c1 = p.const_u64(16, 0xBEEF);
                let e1 = p.eq(sum, c1);
                let c2 = p.const_u64(16, 0x1234);
                let e2 = p.eq(a, c2);
                p.and(e1, e2)
            };
            s.assert(goal).unwrap();
            matches!(s.check().unwrap(), SatOutcome::Sat(_))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    sim_throughput,
    step_throughput_by_mode,
    settle_throughput_by_mode,
    bytecode_compile,
    vm_dispatch,
    checkpoint_reentry,
    symbolic_solving,
    sat_solver
);
criterion_main!(benches);
