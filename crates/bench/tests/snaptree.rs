//! A/B acceptance for the snapshot-tree scheduler: nearest-ancestor
//! re-entry must be *coverage-equivalent* to the legacy
//! reset-plus-full-replay path it replaces (`use_ancestor_reentry:
//! false` replicates the pre-snapshot-tree fuzzer exactly), while the
//! cost columns — replayed cycles, full resets — are precisely where
//! the two arms are allowed to differ. Also pins down determinism of
//! byte-budgeted (evicting) campaigns, including at `--jobs 1` vs
//! `--jobs 4`.

use std::sync::Arc;
use symbfuzz_core::{CampaignResult, FuzzConfig, PropertySpec, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;
use symbfuzz_netlist::Design;

const BUDGET_BYTES: u64 = 4 * 1024; // tight: forces evictions on ibex_like

fn run_arm(
    design: &Arc<Design>,
    props: &[PropertySpec],
    strategy: Strategy,
    ancestor: bool,
) -> CampaignResult {
    let config = FuzzConfig {
        interval: 100,
        threshold: 2,
        max_vectors: 4_000,
        seed: 0x51AB,
        snapshot_mem_budget: BUDGET_BYTES,
        use_ancestor_reentry: ancestor,
        ..FuzzConfig::default()
    };
    let mut fuzzer =
        SymbFuzz::new(Arc::clone(design), strategy, config, props).expect("properties compile");
    fuzzer.run()
}

/// The bug list modulo detection *cycle*: re-entering through a
/// snapshot skips the replay cycles the legacy arm burns, so absolute
/// cycle stamps legitimately differ while everything identifying the
/// bug must not.
fn bug_keys(r: &CampaignResult) -> Vec<(String, u64, Option<u64>, String)> {
    r.bugs
        .iter()
        .map(|b| (b.property.clone(), b.vectors, b.node, b.mechanism.clone()))
        .collect()
}

/// Acceptance: campaign-equivalence of the two re-entry arms on
/// `ibex_like`, across all five strategies.
///
/// The four baselines never roll back, so their entire serialized
/// results must be byte-identical. SymbFuzz rolls back constantly:
/// there the coverage semantics (vectors, points, node/edge sets,
/// series, bugs, solver outcomes) must match while the resource
/// accounting shows the ancestor arm replaying strictly fewer cycles.
#[test]
fn ancestor_reentry_is_campaign_equivalent_to_full_replay() {
    let b = &processor_benchmarks()[0];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    for strategy in Strategy::all() {
        let on = run_arm(&design, &props, strategy, true);
        let off = run_arm(&design, &props, strategy, false);
        if strategy == Strategy::SymbFuzz {
            assert_eq!(on.vectors, off.vectors, "vectors");
            assert_eq!(on.coverage_points, off.coverage_points, "coverage");
            assert_eq!(on.nodes, off.nodes, "nodes");
            assert_eq!(on.edges, off.edges, "edges");
            assert_eq!(on.node_coverage_ratio, off.node_coverage_ratio);
            assert_eq!(on.edge_coverage_ratio, off.edge_coverage_ratio);
            assert_eq!(on.series, off.series, "coverage series");
            assert_eq!(on.solve_outcomes, off.solve_outcomes, "solver outcomes");
            assert_eq!(bug_keys(&on), bug_keys(&off), "bugs");
            assert_eq!(on.resources.rollbacks, off.resources.rollbacks);
            // The whole point of the tree: a rollback whose target was
            // evicted re-enters the nearest live ancestor (and then
            // re-caches the target) instead of replaying the full path
            // from reset, forever, like the legacy arm does.
            assert!(
                off.resources.full_resets > on.resources.full_resets,
                "legacy arm should full-reset more ({} vs {})",
                off.resources.full_resets,
                on.resources.full_resets
            );
            let replayed = |r: &CampaignResult| {
                r.telemetry
                    .counters
                    .iter()
                    .find(|(k, _)| k == "replayed_cycles")
                    .map_or(0, |(_, v)| *v)
            };
            assert!(
                replayed(&off) > replayed(&on),
                "legacy arm should replay more cycles ({} vs {})",
                replayed(&off),
                replayed(&on)
            );
        } else {
            // Baselines never call the re-entry scheduler: the knob
            // must be completely inert, byte for byte.
            assert_eq!(
                serde_json::to_string(&on).unwrap(),
                serde_json::to_string(&off).unwrap(),
                "{} diverged under an inert knob",
                strategy.name()
            );
        }
    }
}

/// A byte-budgeted campaign (evictions firing) is a pure function of
/// its config: two runs produce byte-identical reports, and the store
/// respects its budget.
#[test]
fn budgeted_eviction_campaign_is_deterministic() {
    let b = &processor_benchmarks()[0];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let first = run_arm(&design, &props, Strategy::SymbFuzz, true);
    let second = run_arm(&design, &props, Strategy::SymbFuzz, true);
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap(),
        "budgeted campaign must be deterministic"
    );
    assert!(
        first.resources.snapshot_evictions > 0,
        "budget of {BUDGET_BYTES} bytes should evict on ibex_like"
    );
    assert!(first.resources.peak_snapshot_bytes > 0);
    // The peak is recorded after each fork's eviction pass, which
    // drains the store back inside its byte budget (or down to a
    // single snapshot, far smaller than the budget here).
    assert!(
        first.resources.peak_snapshot_bytes <= BUDGET_BYTES,
        "peak {} exceeds budget {}",
        first.resources.peak_snapshot_bytes,
        BUDGET_BYTES
    );
    // Sharing must actually happen for the ratio gauge to mean
    // anything: logical bytes strictly exceed unique bytes.
    assert!(
        first.resources.snapshot_pages_shared > 0,
        "tree forks should share unchanged pages"
    );
}

/// Full campaign reports — snapshot counters included — are
/// byte-identical at `--jobs 1` vs `--jobs 4`.
#[test]
fn budgeted_campaigns_are_byte_identical_across_job_counts() {
    use symbfuzz_bench::experiments::{resource_profile, set_snapshot_budget};
    set_snapshot_budget(BUDGET_BYTES);
    let serial = resource_profile(0, 1_500, 1);
    let wide = resource_profile(0, 1_500, 4);
    for ((n1, r1), (n4, r4)) in serial.iter().zip(&wide) {
        assert_eq!(n1, n4);
        assert_eq!(
            serde_json::to_string(r1).unwrap(),
            serde_json::to_string(r4).unwrap(),
            "{n1} campaign differs between job counts"
        );
    }
}
