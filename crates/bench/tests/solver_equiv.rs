//! Incremental-vs-fresh solver equivalence, goal by goal.
//!
//! The frame cache ([`SymbolicEngine::set_solver_cache`]) is only an
//! optimisation if it is *observably identical* to the fresh-solver
//! path it replaces: the same Sat / Unsat / Unknown-reason verdict for
//! every `(state, goal, depth)` query, with the same shortest plan
//! length on Sat (models may legitimately differ — warm sessions carry
//! learned clauses that steer CDCL to a different witness). That must
//! hold through mid-campaign session resets (the portfolio racer drops
//! loser state) and under a starvation-level byte budget that evicts
//! every session between queries.
//!
//! Swept deterministically over the toy ALU, the goal-dense fabric and
//! a Table-1 bug benchmark, then property-tested on the toy ALU with
//! proptest-chosen states and goal values.

use std::sync::Arc;
use symbfuzz_designs::{bug_benchmarks, goal_fabric, toy_alu};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{Design, SignalId};
use symbfuzz_sim::{Reentry, Simulator};
use symbfuzz_smt::Budget;
use symbfuzz_symexec::{ReachOutcome, SymbolicEngine};

/// Deterministic input-word generator (64-bit LCG, chunked to width).
fn next_word(width: u32, state: &mut u64) -> LogicVec {
    let mut out = LogicVec::zeros(0);
    let mut remaining = width;
    while remaining > 0 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let take = remaining.min(64);
        out = LogicVec::concat(&LogicVec::from_u64(take, *state), &out);
        remaining -= take;
    }
    out
}

/// Reachable states to pose goals from: the post-reset state plus
/// snapshots after a few cycles of deterministic random stimulus.
fn sample_states(design: &Arc<Design>, seed: u64) -> Vec<Vec<LogicVec>> {
    let mut sim = Simulator::new(Arc::clone(design));
    sim.reenter(Reentry::FullReset { cycles: 2 });
    let mut states = vec![sim.values().to_vec()];
    let width = design.fuzz_width();
    let mut lcg = seed;
    for cycle in 0..5u32 {
        let word = next_word(width, &mut lcg);
        sim.apply_input_word(&word);
        sim.step();
        if cycle == 1 || cycle == 4 {
            states.push(sim.values().to_vec());
        }
    }
    states
}

/// Narrow registers make good goals: wide ones (the fabric's 24-bit
/// product) turn a verdict check into a multiplier-UNSAT endurance run.
fn goal_registers(design: &Arc<Design>, max_width: u32, cap: usize) -> Vec<SignalId> {
    let mut regs: Vec<SignalId> = design
        .signals
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_register && s.width <= max_width)
        .map(|(i, _)| SignalId(i as u32))
        .collect();
    regs.truncate(cap);
    regs
}

/// Poses one query against both engines and asserts verdict (and, on
/// Sat, shortest-plan-length) equality.
fn assert_same_verdict(
    fresh: &SymbolicEngine,
    warm: &SymbolicEngine,
    state: &[LogicVec],
    goal: (SignalId, LogicVec),
    max_steps: u32,
    budget: &Budget,
    what: &str,
) {
    let name = &fresh.design().signal(goal.0).name;
    let f = fresh
        .solve_reach_budgeted(state, &[(goal.0, goal.1.clone())], max_steps, budget)
        .unwrap_or_else(|e| panic!("{what}: fresh solve of {name} failed: {e}"));
    let w = warm
        .solve_reach_budgeted(state, &[(goal.0, goal.1.clone())], max_steps, budget)
        .unwrap_or_else(|e| panic!("{what}: warm solve of {name} failed: {e}"));
    assert_eq!(
        f.status(),
        w.status(),
        "{what}: verdict diverges on goal {name} == {:?}",
        goal.1.to_u64()
    );
    if let (ReachOutcome::Reached(fs), ReachOutcome::Reached(ws)) = (&f, &w) {
        assert_eq!(
            fs.len(),
            ws.len(),
            "{what}: shortest plan length diverges on goal {name}"
        );
    }
}

/// Full deterministic sweep of one design: every sampled state crossed
/// with every goal, under an unlimited budget and an unroll-depth
/// ceiling, with a session reset halfway through.
fn sweep_design(design: Arc<Design>, label: &str, cache_budget: u64) -> SymbolicEngine {
    let fresh = SymbolicEngine::new(Arc::clone(&design));
    let mut warm = SymbolicEngine::new(Arc::clone(&design));
    warm.set_solver_cache(Some(cache_budget));
    let states = sample_states(&design, 0x5EED ^ label.len() as u64);
    let regs = goal_registers(&design, 8, 5);
    assert!(!regs.is_empty(), "{label}: no narrow registers to target");
    let unlimited = Budget::unlimited();
    let shallow = Budget::unlimited().with_unroll_depth(1);
    let mut queries = 0u32;
    for (si, state) in states.iter().enumerate() {
        for &reg in &regs {
            let w = design.signal(reg).width;
            let mut values = vec![0u64, 1, (1u64 << w.min(63)) - 1];
            values.dedup();
            for v in values {
                let goal = (reg, LogicVec::from_u64(w, v));
                assert_same_verdict(
                    &fresh,
                    &warm,
                    state,
                    goal.clone(),
                    3,
                    &unlimited,
                    &format!("{label} state {si} unlimited"),
                );
                assert_same_verdict(
                    &fresh,
                    &warm,
                    state,
                    goal,
                    3,
                    &shallow,
                    &format!("{label} state {si} depth-1"),
                );
                queries += 1;
                if queries == 8 {
                    // The portfolio racer drops loser sessions
                    // mid-campaign; equivalence must survive it.
                    warm.reset_solver_cache();
                }
            }
        }
    }
    warm
}

#[test]
fn incremental_matches_fresh_on_toy_alu() {
    let warm = sweep_design(toy_alu(), "toy_alu", 1 << 20);
    let stats = warm.cache_stats();
    assert!(stats.goals > 0, "cache never consulted: {stats:?}");
    assert!(
        stats.reused_goals > 0,
        "no goal ever reused a warm session: {stats:?}"
    );
    assert!(
        stats.frame_hits > 0,
        "no frame ever reused a warm unroll: {stats:?}"
    );
}

#[test]
fn incremental_matches_fresh_on_goal_fabric() {
    let warm = sweep_design(goal_fabric(), "goalfabric", 1 << 20);
    let stats = warm.cache_stats();
    assert!(stats.reused_goals > 0, "fabric sweep never warm: {stats:?}");
}

#[test]
fn incremental_matches_fresh_on_bug_benchmark() {
    let bug = &bug_benchmarks()[0];
    let design = bug.design().expect("bug benchmark elaborates");
    sweep_design(design, bug.name, 1 << 20);
}

#[test]
fn incremental_matches_fresh_under_starvation_eviction() {
    // A one-byte budget evicts every session as soon as the sweep runs:
    // verdicts must still match even though nothing ever stays warm.
    let warm = sweep_design(toy_alu(), "toy_alu/starved", 1);
    let stats = warm.cache_stats();
    assert!(
        stats.evictions > 0,
        "starvation budget never evicted: {stats:?}"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Arbitrary stimulus seeds and goal values on the toy ALU:
        /// the warm engine's verdict always matches the fresh one.
        #[test]
        fn toy_alu_verdicts_match(seed in any::<u64>(), raw in any::<u64>(), depth in 1u32..4) {
            let design = toy_alu();
            let fresh = SymbolicEngine::new(Arc::clone(&design));
            let mut warm = SymbolicEngine::new(Arc::clone(&design));
            warm.set_solver_cache(Some(1 << 20));
            let states = sample_states(&design, seed);
            let regs = goal_registers(&design, 8, 4);
            let budget = Budget::unlimited();
            for state in &states {
                for &reg in &regs {
                    let w = design.signal(reg).width;
                    let v = raw & ((1u64 << w.min(63)) - 1);
                    let goal = (reg, LogicVec::from_u64(w, v));
                    assert_same_verdict(
                        &fresh, &warm, state, goal, depth, &budget, "proptest",
                    );
                }
            }
        }
    }
}
