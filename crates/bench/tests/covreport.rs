//! Acceptance tests for the coverage-provenance report: the JSON and
//! HTML artifacts are byte-identical at any `--jobs` count, the JSON
//! validates against its schema checker, and the attribution joins
//! line up with the underlying covmaps.

use symbfuzz_bench::covreport::{build_report, render_html, validate_covmap, validate_report};
use symbfuzz_bench::experiments::resource_profile;
use symbfuzz_bench::pool::merge_covmap_counts;
use symbfuzz_telemetry::Mechanism;

const BENCH: usize = 0; // ibex_like
const BUDGET: u64 = 1_500;

/// The PR's acceptance scenario: covmap and report bytes identical for
/// `--jobs 1` vs `--jobs 4` on `ibex_like`.
#[test]
fn report_and_covmaps_are_byte_identical_across_job_counts() {
    let serial = resource_profile(BENCH, BUDGET, 1);
    let wide = resource_profile(BENCH, BUDGET, 4);
    for ((n1, r1), (n4, r4)) in serial.iter().zip(&wide) {
        assert_eq!(n1, n4);
        assert_eq!(
            serde_json::to_string_pretty(&r1.covmap).unwrap(),
            serde_json::to_string_pretty(&r4.covmap).unwrap(),
            "covmap for {n1} differs between job counts"
        );
    }
    let report1 = build_report("ibex_like", BUDGET, &serial);
    let report4 = build_report("ibex_like", BUDGET, &wide);
    assert_eq!(
        serde_json::to_string_pretty(&report1).unwrap(),
        serde_json::to_string_pretty(&report4).unwrap()
    );
    assert_eq!(render_html(&report1), render_html(&report4));
}

#[test]
fn generated_artifacts_pass_their_schema_checkers() {
    let results = resource_profile(BENCH, BUDGET, 4);
    for (name, r) in &results {
        let covmap_json = serde_json::to_string_pretty(&r.covmap).unwrap();
        let m = validate_covmap(&covmap_json).unwrap_or_else(|e| panic!("{name} covmap: {e}"));
        assert_eq!(m.fuzzer, *name);
        assert_eq!(m.nodes.len() as u64, r.nodes);
        assert_eq!(m.edges.len() as u64, r.edges);
    }
    let report = build_report("ibex_like", BUDGET, &results);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back = validate_report(&json).expect("report validates");
    assert_eq!(back.strategies.len(), results.len());
    assert_eq!(back.design, "ibex_like");

    // The HTML is self-contained and carries every section.
    let html = render_html(&report);
    for heading in [
        "Coverage over time",
        "Mechanism attribution",
        "Bugs and their provenance chains",
        "Checkpoint and partial-reset savings",
        "Uncovered frontier",
    ] {
        assert!(html.contains(heading), "missing section `{heading}`");
    }
    assert!(!html.contains("<script"));
}

#[test]
fn attribution_joins_line_up_with_covmaps() {
    let results = resource_profile(BENCH, BUDGET, 4);
    let report = build_report("ibex_like", BUDGET, &results);
    // Per-strategy mechanism tallies account for every node and edge.
    for (s, (_, r)) in report.strategies.iter().zip(&results) {
        assert_eq!(s.mechanisms.iter().map(|m| m.nodes).sum::<u64>(), r.nodes);
        assert_eq!(s.mechanisms.iter().map(|m| m.edges).sum::<u64>(), r.edges);
    }
    // The pool merge folds the same tallies across all campaigns.
    let merged = merge_covmap_counts(results.iter().map(|(_, r)| &r.covmap));
    for (i, m) in Mechanism::ALL.iter().enumerate() {
        assert_eq!(merged[i].0, m.name());
        let total: u64 = report
            .strategies
            .iter()
            .map(|s| s.mechanisms[i].nodes)
            .sum();
        assert_eq!(merged[i].1, total);
    }
    // Baselines never carry solver or replay attribution.
    for s in &report.strategies {
        if s.strategy != "SymbFuzz" {
            assert_eq!(s.mechanisms[1].nodes, 0, "{}", s.strategy);
            assert_eq!(s.mechanisms[2].nodes, 0, "{}", s.strategy);
        }
    }
}
