//! Three-way A/B/C equivalence of the settle engines — compiled
//! bytecode VM vs levelized sweep vs global fixpoint — exercised on
//! every design shipped in `crates/designs`.
//!
//! The levelized sweep and the compiled word-level VM are only
//! optimisations if they are *observably identical* to the fixpoint
//! they replace: same signal values every cycle (including
//! X-propagation from the all-X power-up state, with no reset
//! applied — the compiled VM must escape to the four-state interpreter
//! for exactly those cones), same set of exercised branch outcomes,
//! same campaign coverage series, and the same `CombLoop` error on
//! genuinely cyclic designs.

use std::collections::BTreeSet;
use std::sync::Arc;
use symbfuzz_core::{FuzzConfig, SettlePolicy, Strategy, SymbFuzz};
use symbfuzz_designs::{bug_benchmarks, processor_benchmarks};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{elaborate_src, BranchId, Design};
use symbfuzz_sim::{Reentry, SettleMode, SimError, Simulator};

/// Deterministic input-word generator (64-bit LCG, chunked to width).
fn next_word(width: u32, state: &mut u64) -> LogicVec {
    let mut out = LogicVec::zeros(0);
    let mut remaining = width;
    while remaining > 0 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let take = remaining.min(64);
        out = LogicVec::concat(&LogicVec::from_u64(take, *state), &out);
        remaining -= take;
    }
    out
}

/// The set of `(branch, outcome)` pairs with a nonzero hit counter.
fn toggled_set(sim: &Simulator) -> BTreeSet<(usize, usize)> {
    let mut set = BTreeSet::new();
    for (bi, _) in sim.design().branches.iter().enumerate() {
        for (oi, &hits) in sim.branch_hits(BranchId(bi as u32)).iter().enumerate() {
            if hits > 0 {
                set.insert((bi, oi));
            }
        }
    }
    set
}

/// Runs compiled, levelized and fixpoint simulators in lockstep on one
/// design and asserts bit-identical signal values at every observation
/// point.
fn assert_lockstep(design: &Arc<Design>, name: &str, cycles: u32) {
    let mut cmp = Simulator::new(Arc::clone(design));
    assert_eq!(cmp.settle_mode(), SettleMode::Compiled);
    let mut lev = Simulator::new(Arc::clone(design));
    lev.set_settle_mode(SettleMode::Levelized);
    let mut fix = Simulator::new(Arc::clone(design));
    fix.set_settle_mode(SettleMode::Fixpoint);
    fix.settle().expect("acyclic design settles under fixpoint");
    lev.settle().expect("acyclic design settles levelized");
    assert_eq!(
        cmp.values(),
        fix.values(),
        "{name}: initial all-X settle differs (compiled vs fixpoint)"
    );
    assert_eq!(lev.values(), fix.values(), "{name}: initial all-X settle");

    let check = |cmp: &Simulator, lev: &Simulator, fix: &Simulator, what: &str| {
        assert_eq!(
            cmp.values(),
            fix.values(),
            "{name}: {what} (compiled vs fixpoint)"
        );
        assert_eq!(
            lev.values(),
            fix.values(),
            "{name}: {what} (levelized vs fixpoint)"
        );
    };

    // X-propagation phase: clock the un-reset design so register Xes
    // flow through the combinational logic in all three engines (the
    // compiled VM escapes per cone here).
    for c in 0..4 {
        cmp.step();
        lev.step();
        fix.step();
        check(&cmp, &lev, &fix, &format!("un-reset cycle {c}"));
    }

    cmp.reenter(Reentry::FullReset { cycles: 2 });
    lev.reenter(Reentry::FullReset { cycles: 2 });
    fix.reenter(Reentry::FullReset { cycles: 2 });
    check(&cmp, &lev, &fix, "post-reset state");

    let width = design.fuzz_width();
    let mut state = 0x5EED_0BAD ^ name.len() as u64;
    let mut store_cmp = cmp.snapshot_store(u64::MAX);
    let mut store_lev = lev.snapshot_store(u64::MAX);
    let mut store_fix = fix.snapshot_store(u64::MAX);
    let mut snaps = None;
    for c in 0..cycles {
        let word = next_word(width, &mut state);
        cmp.apply_input_word(&word);
        lev.apply_input_word(&word);
        fix.apply_input_word(&word);
        cmp.step();
        lev.step();
        fix.step();
        check(&cmp, &lev, &fix, &format!("cycle {c}"));
        if c == cycles / 2 {
            snaps = Some((
                cmp.fork(&mut store_cmp, None).id,
                lev.fork(&mut store_lev, None).id,
                fix.fork(&mut store_fix, None).id,
            ));
        }
    }

    // Re-enter the mid-run checkpoints and diverge identically again.
    let (cs, ls, fs) = snaps.expect("snapshot taken");
    cmp.enter(&store_cmp, cs);
    lev.enter(&store_lev, ls);
    fix.enter(&store_fix, fs);
    for c in 0..8 {
        let word = next_word(width, &mut state);
        cmp.apply_input_word(&word);
        lev.apply_input_word(&word);
        fix.apply_input_word(&word);
        cmp.step();
        lev.step();
        fix.step();
        check(&cmp, &lev, &fix, &format!("post-restore cycle {c}"));
    }

    // Branch-outcome parity: the fixpoint re-executes settled processes
    // while iterating, so raw hit *counters* legitimately differ, but
    // every outcome any engine exercises must be exercised by all.
    let toggled = toggled_set(&fix);
    assert_eq!(
        toggled_set(&cmp),
        toggled,
        "{name}: toggled sets differ (compiled vs fixpoint)"
    );
    assert_eq!(
        toggled_set(&lev),
        toggled,
        "{name}: toggled sets differ (levelized vs fixpoint)"
    );
}

#[test]
fn bug_designs_match_fixpoint_bit_for_bit() {
    for b in bug_benchmarks() {
        let design = b.design().expect("benchmark elaborates");
        assert_lockstep(&design, b.name, 120);
    }
}

#[test]
fn processor_designs_match_fixpoint_bit_for_bit() {
    for b in processor_benchmarks() {
        let design = b.design().expect("benchmark elaborates");
        assert!(
            Simulator::new(Arc::clone(&design)).schedule().is_acyclic(),
            "{}: processor schedule unexpectedly cyclic",
            b.name
        );
        assert_lockstep(&design, b.name, 200);
    }
}

#[test]
fn comb_loop_reported_under_all_modes() {
    let design = Arc::new(
        elaborate_src(
            "module m(input a, output y);
               wire t;
               assign t = a ? !y : 1'b0;
               assign y = t;
             endmodule",
            "m",
        )
        .unwrap(),
    );
    for mode in [
        SettleMode::Compiled,
        SettleMode::Levelized,
        SettleMode::Fixpoint,
    ] {
        let mut s = Simulator::new(Arc::clone(&design));
        s.set_settle_mode(mode);
        let a = s.design().signal_by_name("a").unwrap();
        s.set_input(a, &LogicVec::from_u64(1, 0)).unwrap();
        s.settle().unwrap();
        s.set_input(a, &LogicVec::from_u64(1, 1)).unwrap();
        assert_eq!(s.settle(), Err(SimError::CombLoop), "{mode:?}");
        assert!(s.comb_unstable(), "{mode:?}");
    }
}

/// Full-campaign A/B/C: the fuzzer observes signal values and toggled
/// outcomes, so a whole campaign — coverage series included — must be
/// identical under every settling strategy, for every fuzzing
/// strategy.
///
/// The only sanctioned divergence is the settle-engine's own
/// telemetry: `settle_fast_path` / `settle_escapes` counters and the
/// `x_island_cones` gauge describe *how* the engine settled, not what
/// the design did, so they are zeroed before comparison (the same
/// carve-out the once-per-settle `settle_sweeps` invariant covers by
/// construction).
#[test]
fn campaign_coverage_series_match_across_modes() {
    let run = |policy: SettlePolicy, design: &Arc<Design>, props: &[_], strategy| {
        let config = FuzzConfig {
            interval: 100,
            threshold: 2,
            max_vectors: 2_000,
            seed: 0xAB,
            settle_policy: policy,
            ..FuzzConfig::default()
        };
        let mut fuzzer =
            SymbFuzz::new(Arc::clone(design), strategy, config, props).expect("properties compile");
        let mut result = fuzzer.run();
        for (name, v) in result
            .telemetry
            .counters
            .iter_mut()
            .chain(result.telemetry.gauges.iter_mut())
        {
            if matches!(
                name.as_str(),
                "settle_fast_path" | "settle_escapes" | "x_island_cones"
            ) {
                *v = 0;
            }
        }
        result
    };
    let procs = processor_benchmarks();
    let b = &procs[0];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    for strategy in Strategy::all() {
        let cmp = run(SettlePolicy::Compiled, &design, &props, strategy);
        let lev = run(SettlePolicy::Levelized, &design, &props, strategy);
        let fix = run(SettlePolicy::Fixpoint, &design, &props, strategy);
        let cmp_json = serde_json::to_string(&cmp).unwrap();
        assert_eq!(
            cmp_json,
            serde_json::to_string(&lev).unwrap(),
            "campaign diverged compiled vs levelized for {}",
            strategy.name()
        );
        assert_eq!(
            cmp_json,
            serde_json::to_string(&fix).unwrap(),
            "campaign diverged compiled vs fixpoint for {}",
            strategy.name()
        );
    }
}
