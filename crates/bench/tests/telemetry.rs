//! Cross-layer telemetry acceptance tests: merge determinism across
//! job counts, JSONL schema round-trips, and phase-time accounting
//! under a wall clock.

use std::sync::Arc;
use std::time::Instant;
use symbfuzz_bench::experiments::resource_profile;
use symbfuzz_bench::pool::merge_telemetry;
use symbfuzz_bench::trace::{parse_line, phase_table, PHASE_KIND};
use symbfuzz_core::{FuzzConfig, PropertySpec, Strategy, SymbFuzz};
use symbfuzz_netlist::elaborate_src;
use symbfuzz_telemetry::{BufferSink, Collector, Phase};

/// A two-step combination lock: random fuzzing stalls in state 0, so a
/// short campaign exercises stagnation, symbolic episodes, SMT solves,
/// rollbacks and finally the planted bug — every event kind.
const LOCK: &str = "
    module lock(input clk, input rst_n, input [15:0] code,
                output logic [1:0] st, output logic open);
      always_ff @(posedge clk or negedge rst_n) begin
        if (!rst_n) st <= 2'd0;
        else begin
          case (st)
            2'd0: if (code == 16'hBEEF) st <= 2'd1;
            2'd1: if (code == 16'hCAFE) st <= 2'd2; else st <= 2'd0;
            default: st <= 2'd2;
          endcase
        end
      end
      always_comb open = st == 2'd2;
    endmodule";

fn lock_fuzzer(max_vectors: u64) -> SymbFuzz {
    let design = Arc::new(elaborate_src(LOCK, "lock").unwrap());
    let props = vec![PropertySpec::assertion_only("never_open", "open == 1'b0")];
    let config = FuzzConfig {
        interval: 32,
        threshold: 1,
        max_vectors,
        ..FuzzConfig::default()
    };
    SymbFuzz::new(design, Strategy::SymbFuzz, config, &props).unwrap()
}

/// The tentpole acceptance: merged metrics snapshots (and the whole
/// campaign report embedding them) are byte-identical at any `--jobs`.
#[test]
fn merged_telemetry_is_byte_identical_across_job_counts() {
    let serial = resource_profile(1, 2_000, 1);
    let wide = resource_profile(1, 2_000, 4);
    let merged_serial = merge_telemetry(serial.iter().map(|(_, r)| &r.telemetry));
    let merged_wide = merge_telemetry(wide.iter().map(|(_, r)| &r.telemetry));
    assert_eq!(
        serde_json::to_string(&merged_serial).unwrap(),
        serde_json::to_string(&merged_wide).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&serial).unwrap(),
        serde_json::to_string(&wide).unwrap()
    );
    // The merged block saw real work from all five strategies.
    let snap = merged_serial.to_snapshot();
    assert_eq!(snap.counter("vectors"), 5 * 2_000);
    assert!(snap.counter("sim_steps") >= snap.counter("vectors"));
}

/// Every JSONL line a traced campaign streams passes the schema
/// parser, and the stream covers at least six event kinds plus phase
/// spans — the PR's "rich trace" acceptance.
#[test]
fn traced_campaign_round_trips_through_schema_parser() {
    let mut fuzzer = lock_fuzzer(20_000);
    let sink = BufferSink::new();
    let handle = sink.handle();
    fuzzer.telemetry().set_sink(Box::new(sink));
    let result = fuzzer.run();
    let lines = handle.lines();
    assert!(lines.len() > 50, "only {} trace lines", lines.len());
    let mut kinds = std::collections::BTreeSet::new();
    for line in &lines {
        let rec = parse_line(line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        if rec.kind != PHASE_KIND {
            kinds.insert(rec.kind.clone());
        }
    }
    assert!(
        kinds.len() >= 6,
        "expected >= 6 distinct event kinds, got {kinds:?}"
    );
    // The ring-derived report agrees with what streamed out.
    let streamed_bugs = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"BugFired\""))
        .count();
    assert_eq!(streamed_bugs, result.bugs.len());
    // And the rendered phase table accounts for every phase span.
    let records: Vec<_> = lines.iter().map(|l| parse_line(l).unwrap()).collect();
    let table = phase_table(&records);
    assert!(table.contains("| mutate |"));
    assert!(table.contains("100.0%"));
}

/// Under a wall clock, nested phase self-times sum to no more than the
/// campaign's elapsed time — and a traced campaign accounts for most
/// of it (the acceptance budget is ≥95%; the test uses a safety margin
/// for noisy CI machines).
#[test]
fn phase_self_times_sum_within_wall_time() {
    let mut fuzzer = lock_fuzzer(20_000);
    let collector = Arc::new(Collector::monotonic());
    fuzzer.install_telemetry(Arc::clone(&collector));
    let start = Instant::now();
    fuzzer.run();
    let wall = start.elapsed().as_micros() as u64;
    let snap = collector.snapshot();
    let accounted = snap.phase_total_micros();
    assert!(
        accounted <= wall,
        "phases sum to {accounted}µs > wall {wall}µs"
    );
    assert!(
        accounted * 10 >= wall * 7,
        "phases cover only {accounted}/{wall}µs (< 70%)"
    );
    for p in Phase::ALL {
        assert!(
            snap.phases
                .iter()
                .any(|s| s.phase == p.name() && s.count > 0),
            "phase {} never closed a span",
            p.name()
        );
    }
}
