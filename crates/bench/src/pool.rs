//! Deterministic scoped-thread campaign pool.
//!
//! Campaigns are embarrassingly parallel: each one is a pure function
//! of `(design, strategy, budget, seed)`. The pool fans a fixed item
//! list across `jobs` worker threads pulling from an atomic work-queue
//! index, collects `(index, result)` pairs, and re-sorts by index — so
//! the merged output is byte-identical no matter how many workers ran
//! or in which order they finished. The only nondeterminism any
//! experiment report retains is wall-clock latency (Table 3's
//! `latency_s`), which is documented as such.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use symbfuzz_core::{CovMap, TelemetryBlock};
use symbfuzz_telemetry::{Mechanism, MetricsSnapshot};

/// Number of workers to use when `--jobs` is not given: all available
/// cores (reports are deterministic regardless, see [`run_pool`]).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(index, &items[index])` for every item, fanning the work
/// across up to `jobs` scoped threads, and returns the results in item
/// order. With `jobs <= 1` (or a single item) everything runs on the
/// calling thread; output is identical either way.
pub fn run_pool<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// Splits `--jobs N` / `--jobs=N` / `-j N` / `-jN` out of an argument
/// list, returning the remaining positional arguments and the job
/// count (defaulting to [`default_jobs`], floored at 1).
pub fn split_jobs<A: Iterator<Item = String>>(args: A) -> (Vec<String>, usize) {
    let mut jobs = default_jobs();
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                jobs = v;
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(v) = v.parse() {
                jobs = v;
            }
        } else if let Some(v) = a.strip_prefix("-j") {
            if let Ok(v) = v.parse() {
                jobs = v;
            }
        } else {
            rest.push(a);
        }
    }
    (rest, jobs.max(1))
}

/// [`split_jobs`] over the process arguments (program name skipped).
pub fn parse_jobs() -> (Vec<String>, usize) {
    split_jobs(std::env::args().skip(1))
}

/// Merges per-task telemetry blocks into one campaign-wide block,
/// folding in task-index order. Counters, event counts and phase
/// statistics sum; gauges keep the high-water mark. Because every
/// per-task block is deterministic (the default [`symbfuzz_telemetry::ManualClock`])
/// and [`run_pool`] returns results in item order, the merged block is
/// byte-identical at any `--jobs N`.
pub fn merge_telemetry<'a, I>(blocks: I) -> TelemetryBlock
where
    I: IntoIterator<Item = &'a TelemetryBlock>,
{
    let mut acc = MetricsSnapshot::default();
    for b in blocks {
        acc.merge(&b.to_snapshot());
    }
    TelemetryBlock::from(acc)
}

/// Folds the per-mechanism attribution tallies of several campaigns'
/// covmap artifacts into one `(mechanism, nodes, edges)` list in
/// [`Mechanism::ALL`] order, folding in iteration (task) order. Node
/// ids are campaign-local, so covmaps merge as tallies, not as maps;
/// like [`merge_telemetry`] the result is byte-identical at any
/// `--jobs N` because [`run_pool`] returns campaigns in item order.
pub fn merge_covmap_counts<'a, I>(maps: I) -> Vec<(String, u64, u64)>
where
    I: IntoIterator<Item = &'a CovMap>,
{
    let mut acc: Vec<(String, u64, u64)> = Mechanism::ALL
        .iter()
        .map(|m| (m.name().to_string(), 0, 0))
        .collect();
    for m in maps {
        for (i, (_, nodes, edges)) in m.mechanism_counts().into_iter().enumerate() {
            acc[i].1 += nodes;
            acc[i].2 += edges;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = run_pool(&items, 8, |i, &x| {
            // Uneven per-item work so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros((x % 5) * 100));
            (i as u64, x * x)
        });
        for (i, &(idx, sq)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(sq, (i * i) as u64);
        }
    }

    #[test]
    fn pool_is_identical_across_job_counts() {
        let items: Vec<u32> = (0..23).collect();
        let f = |i: usize, x: &u32| format!("{i}:{}", x.wrapping_mul(2654435761));
        let serial = run_pool(&items, 1, f);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(run_pool(&items, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn pool_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_pool(&empty, 8, |_, &x| x).is_empty());
        let one = [7u8];
        assert_eq!(run_pool(&one, 64, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn covmap_counts_merge_in_mechanism_order() {
        use symbfuzz_core::{NodeCov, ProvenanceRecord};
        let rec = |mechanism: &str, goal| ProvenanceRecord {
            vector: 1,
            mechanism: mechanism.into(),
            goal,
            checkpoint: None,
        };
        let mut a = CovMap::empty("SymbFuzz", "d");
        a.nodes.push(NodeCov {
            id: 0,
            first_cycle: 1,
            provenance: rec("random", None),
        });
        let mut b = CovMap::empty("SymbFuzz", "d");
        b.nodes.push(NodeCov {
            id: 0,
            first_cycle: 2,
            provenance: rec("solver", Some(0)),
        });
        let merged = merge_covmap_counts([&a, &b]);
        assert_eq!(merged[0], ("random".to_string(), 1, 0));
        assert_eq!(merged[1], ("solver".to_string(), 1, 0));
        assert_eq!(merged[2], ("replay".to_string(), 0, 0));
    }

    #[test]
    fn split_jobs_accepts_all_spellings() {
        let split = |s: &str| split_jobs(s.split_whitespace().map(String::from));
        assert_eq!(split("5000 --jobs 4"), (vec!["5000".into()], 4));
        assert_eq!(
            split("--jobs=2 5000 1"),
            (vec!["5000".into(), "1".into()], 2)
        );
        assert_eq!(split("-j 8"), (Vec::<String>::new(), 8));
        assert_eq!(split("-j3 42"), (vec!["42".into()], 3));
        assert_eq!(split("--jobs 0").1, 1);
        let (rest, jobs) = split("1000 2000");
        assert_eq!(rest, vec!["1000".to_string(), "2000".to_string()]);
        assert!(jobs >= 1);
    }
}
