//! Deterministic scoped-thread campaign pool.
//!
//! Campaigns are embarrassingly parallel: each one is a pure function
//! of `(design, strategy, budget, seed)`. The pool fans a fixed item
//! list across `jobs` worker threads pulling from an atomic work-queue
//! index, collects `(index, result)` pairs, and re-sorts by index — so
//! the merged output is byte-identical no matter how many workers ran
//! or in which order they finished. The only nondeterminism any
//! experiment report retains is wall-clock latency (Table 3's
//! `latency_s`), which is documented as such.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use symbfuzz_core::{
    CovMap, FlightRow, PortfolioBlock, SolverCacheBlock, SolverProfileBlock, SolverScopeBlock,
    TelemetryBlock, VmProfileBlock, SOLVERSCOPE_VERSION,
};
use symbfuzz_telemetry::{merge_flight, FlightSample, Mechanism, MetricsSnapshot};

/// Number of workers to use when `--jobs` is not given: all available
/// cores (reports are deterministic regardless, see [`run_pool`]).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(index, &items[index])` for every item, fanning the work
/// across up to `jobs` scoped threads, and returns the results in item
/// order. With `jobs <= 1` (or a single item) everything runs on the
/// calling thread; output is identical either way.
pub fn run_pool<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap();
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// Splits `--jobs N` / `--jobs=N` / `-j N` / `-jN` out of an argument
/// list, returning the remaining positional arguments and the job
/// count (defaulting to [`default_jobs`], floored at 1).
pub fn split_jobs<A: Iterator<Item = String>>(args: A) -> (Vec<String>, usize) {
    let mut jobs = default_jobs();
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                jobs = v;
            }
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            if let Ok(v) = v.parse() {
                jobs = v;
            }
        } else if let Some(v) = a.strip_prefix("-j") {
            if let Ok(v) = v.parse() {
                jobs = v;
            }
        } else {
            rest.push(a);
        }
    }
    (rest, jobs.max(1))
}

/// [`split_jobs`] over the process arguments (program name skipped).
pub fn parse_jobs() -> (Vec<String>, usize) {
    split_jobs(std::env::args().skip(1))
}

/// Merges per-task telemetry blocks into one campaign-wide block,
/// folding in task-index order. Counters, event counts and phase
/// statistics sum; gauges keep the high-water mark. Because every
/// per-task block is deterministic (the default [`symbfuzz_telemetry::ManualClock`])
/// and [`run_pool`] returns results in item order, the merged block is
/// byte-identical at any `--jobs N`.
pub fn merge_telemetry<'a, I>(blocks: I) -> TelemetryBlock
where
    I: IntoIterator<Item = &'a TelemetryBlock>,
{
    let mut acc = MetricsSnapshot::default();
    for b in blocks {
        acc.merge(&b.to_snapshot());
    }
    TelemetryBlock::from(acc)
}

/// Folds the per-mechanism attribution tallies of several campaigns'
/// covmap artifacts into one `(mechanism, nodes, edges)` list in
/// [`Mechanism::ALL`] order, folding in iteration (task) order. Node
/// ids are campaign-local, so covmaps merge as tallies, not as maps;
/// like [`merge_telemetry`] the result is byte-identical at any
/// `--jobs N` because [`run_pool`] returns campaigns in item order.
pub fn merge_covmap_counts<'a, I>(maps: I) -> Vec<(String, u64, u64)>
where
    I: IntoIterator<Item = &'a CovMap>,
{
    let mut acc: Vec<(String, u64, u64)> = Mechanism::ALL
        .iter()
        .map(|m| (m.name().to_string(), 0, 0))
        .collect();
    for m in maps {
        for (i, (_, nodes, edges)) in m.mechanism_counts().into_iter().enumerate() {
            acc[i].1 += nodes;
            acc[i].2 += edges;
        }
    }
    acc
}

/// Merges per-task flight recordings into one canonical stream, sample
/// by sample keyed on the interval index (see
/// [`symbfuzz_telemetry::merge_flight`]): monotone fields sum, gauges
/// keep the elementwise high-water mark, `task` collapses to 0. Uneven
/// streams are fine — an interval present in only some tasks merges
/// what exists. Because every per-task stream is deterministic under
/// the vector-count clock and [`run_pool`] returns results in item
/// order, the merged stream — and therefore the rendered
/// `flight.jsonl` — is byte-identical at any `--jobs N`.
pub fn merge_flight_rows<'a, I>(streams: I) -> Vec<FlightRow>
where
    I: IntoIterator<Item = &'a [FlightRow]>,
{
    let streams: Vec<Vec<FlightSample>> = streams
        .into_iter()
        .map(|rows| rows.iter().map(FlightRow::to_sample).collect())
        .collect();
    merge_flight(&streams).iter().map(FlightRow::from).collect()
}

/// Merges per-task VM-profiler blocks: cone rows fold by
/// `(proc_index, label)` with all tallies summed, then re-sort
/// hottest-first (op units descending, process index breaking ties);
/// op-class histograms fold by class name in first-seen order; design
/// totals sum. `None` inputs (campaigns run with the recorder off)
/// contribute nothing; the merge is `None` only when every input is.
pub fn merge_vm_profiles<'a, I>(blocks: I) -> Option<VmProfileBlock>
where
    I: IntoIterator<Item = Option<&'a VmProfileBlock>>,
{
    let mut acc: Option<VmProfileBlock> = None;
    for b in blocks.into_iter().flatten() {
        let acc = acc.get_or_insert_with(VmProfileBlock::default);
        for row in &b.rows {
            match acc
                .rows
                .iter_mut()
                .find(|r| r.proc_index == row.proc_index && r.label == row.label)
            {
                Some(r) => {
                    r.execs += row.execs;
                    r.fast += row.fast;
                    r.escaped_x += row.escaped_x;
                    r.escaped_uncompiled += row.escaped_uncompiled;
                    r.escaped_cyclic += row.escaped_cyclic;
                    r.op_units += row.op_units;
                }
                None => acc.rows.push(row.clone()),
            }
        }
        for (class, n) in &b.op_classes {
            match acc.op_classes.iter_mut().find(|(c, _)| c == class) {
                Some((_, m)) => *m += n,
                None => acc.op_classes.push((class.clone(), *n)),
            }
        }
        acc.total_execs += b.total_execs;
        acc.total_fast += b.total_fast;
        acc.total_escaped += b.total_escaped;
    }
    if let Some(acc) = &mut acc {
        acc.rows.sort_by(|a, b| {
            b.op_units
                .cmp(&a.op_units)
                .then(a.proc_index.cmp(&b.proc_index))
        });
    }
    acc
}

/// Merges per-task solver-profiler blocks: goal rows fold by
/// `(register, value)` — cumulative tallies sum, `deepest_unroll`
/// keeps the maximum, escalation histories concatenate in task order —
/// then re-sort hardest-first (cumulative conflicts, then decisions,
/// then first-seen order, matching
/// [`symbfuzz_symexec::SolveProfiler::sorted_rows`]). A task that
/// never solved contributes an empty block and vanishes in the merge.
pub fn merge_solver_profiles<'a, I>(blocks: I) -> SolverProfileBlock
where
    I: IntoIterator<Item = &'a SolverProfileBlock>,
{
    let mut acc = SolverProfileBlock::default();
    for b in blocks {
        for g in &b.goals {
            match acc
                .goals
                .iter_mut()
                .find(|r| r.register == g.register && r.value == g.value)
            {
                Some(r) => {
                    r.attempts += g.attempts;
                    r.sat += g.sat;
                    r.unsat += g.unsat;
                    r.exhausted += g.exhausted;
                    r.neg_cache_hits += g.neg_cache_hits;
                    r.conflicts += g.conflicts;
                    r.decisions += g.decisions;
                    r.propagations += g.propagations;
                    r.solver_calls += g.solver_calls;
                    r.deepest_unroll = r.deepest_unroll.max(g.deepest_unroll);
                    r.escalations.extend_from_slice(&g.escalations);
                }
                None => acc.goals.push(g.clone()),
            }
        }
        acc.total_attempts += b.total_attempts;
        acc.total_neg_cache_hits += b.total_neg_cache_hits;
    }
    acc.goals.sort_by_key(|g| {
        (
            std::cmp::Reverse(g.conflicts),
            std::cmp::Reverse(g.decisions),
        )
    });
    acc
}

/// Merges per-task solver-introspection blocks: goal rows fold by
/// `(register, value)` in first-seen task order (see
/// [`symbfuzz_core::ScopeGoalRow::merge`] for the per-field rules),
/// then the affinity matrix and adjacent-affinity mean are recomputed
/// from the merged sketches — so the result describes the merged goal
/// order and is byte-identical at any `--jobs N`. Returns `None` when
/// every input is `None` (introspection was off).
pub fn merge_solver_scopes<'a, I>(blocks: I) -> Option<SolverScopeBlock>
where
    I: IntoIterator<Item = Option<&'a SolverScopeBlock>>,
{
    let mut acc: Option<SolverScopeBlock> = None;
    for b in blocks.into_iter().flatten() {
        let acc = acc.get_or_insert_with(|| SolverScopeBlock {
            version: SOLVERSCOPE_VERSION,
            ..SolverScopeBlock::default()
        });
        for g in &b.goals {
            match acc
                .goals
                .iter_mut()
                .find(|r| r.register == g.register && r.value == g.value)
            {
                Some(r) => r.merge(g),
                None => acc.goals.push(g.clone()),
            }
        }
    }
    if let Some(acc) = &mut acc {
        acc.recompute_affinity();
    }
    acc
}

/// Merges per-task bitblast-cache blocks: all tallies sum, then the
/// session-reuse rate is recomputed from the merged totals (a mean of
/// per-task permille rates would weight idle campaigns equally with
/// busy ones). `None` inputs (campaigns run without
/// `incremental_solving`) contribute nothing; the merge is `None`
/// only when every input is.
pub fn merge_solver_caches<'a, I>(blocks: I) -> Option<SolverCacheBlock>
where
    I: IntoIterator<Item = Option<&'a SolverCacheBlock>>,
{
    let mut acc: Option<SolverCacheBlock> = None;
    for b in blocks.into_iter().flatten() {
        let acc = acc.get_or_insert_with(SolverCacheBlock::default);
        acc.frame_hits += b.frame_hits;
        acc.frame_misses += b.frame_misses;
        acc.evictions += b.evictions;
        acc.goals += b.goals;
        acc.reused_goals += b.reused_goals;
    }
    if let Some(acc) = &mut acc {
        acc.reuse_milli = (acc.reused_goals * 1000)
            .checked_div(acc.goals)
            .unwrap_or(0);
    }
    acc
}

/// Merges per-task portfolio blocks (races and per-profile wins sum,
/// width keeps the maximum — see [`PortfolioBlock::merge`]). `None`
/// inputs (campaigns run without racing) contribute nothing; the
/// merge is `None` only when every input is.
pub fn merge_portfolios<'a, I>(blocks: I) -> Option<PortfolioBlock>
where
    I: IntoIterator<Item = Option<&'a PortfolioBlock>>,
{
    let mut acc: Option<PortfolioBlock> = None;
    for b in blocks.into_iter().flatten() {
        acc.get_or_insert_with(PortfolioBlock::default).merge(b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_core::GoalRow;

    #[test]
    fn pool_preserves_item_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = run_pool(&items, 8, |i, &x| {
            // Uneven per-item work so completion order scrambles.
            std::thread::sleep(std::time::Duration::from_micros((x % 5) * 100));
            (i as u64, x * x)
        });
        for (i, &(idx, sq)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(sq, (i * i) as u64);
        }
    }

    #[test]
    fn pool_is_identical_across_job_counts() {
        let items: Vec<u32> = (0..23).collect();
        let f = |i: usize, x: &u32| format!("{i}:{}", x.wrapping_mul(2654435761));
        let serial = run_pool(&items, 1, f);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(run_pool(&items, jobs, f), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn pool_handles_empty_and_oversubscribed() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_pool(&empty, 8, |_, &x| x).is_empty());
        let one = [7u8];
        assert_eq!(run_pool(&one, 64, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn solver_caches_merge_and_recompute_reuse() {
        let a = SolverCacheBlock {
            frame_hits: 6,
            frame_misses: 2,
            evictions: 1,
            goals: 10,
            reused_goals: 8,
            reuse_milli: 800,
        };
        let b = SolverCacheBlock {
            frame_hits: 0,
            frame_misses: 2,
            evictions: 0,
            goals: 10,
            reused_goals: 0,
            reuse_milli: 0,
        };
        let merged = merge_solver_caches([Some(&a), None, Some(&b)]).unwrap();
        assert_eq!(merged.frame_hits, 6);
        assert_eq!(merged.frame_misses, 4);
        assert_eq!(merged.evictions, 1);
        assert_eq!(merged.goals, 20);
        // Recomputed from the merged totals (8/20), not averaged
        // per-task (which would read 400 here too — but only by luck;
        // an idle task must not drag the pooled rate down).
        assert_eq!(merged.reuse_milli, 400);
        assert!(merge_solver_caches([None, None]).is_none());
    }

    #[test]
    fn portfolios_merge_by_profile_index() {
        let a = PortfolioBlock {
            width: 2,
            races: 3,
            wins: vec![2, 1],
        };
        let b = PortfolioBlock {
            width: 3,
            races: 4,
            wins: vec![1, 0, 3],
        };
        let merged = merge_portfolios([Some(&a), Some(&b), None]).unwrap();
        assert_eq!(merged.width, 3);
        assert_eq!(merged.races, 7);
        assert_eq!(merged.wins, vec![3, 1, 3]);
        assert!(merge_portfolios([None]).is_none());
    }

    #[test]
    fn covmap_counts_merge_in_mechanism_order() {
        use symbfuzz_core::{NodeCov, ProvenanceRecord};
        let rec = |mechanism: &str, goal| ProvenanceRecord {
            vector: 1,
            mechanism: mechanism.into(),
            goal,
            checkpoint: None,
        };
        let mut a = CovMap::empty("SymbFuzz", "d");
        a.nodes.push(NodeCov {
            id: 0,
            first_cycle: 1,
            provenance: rec("random", None),
        });
        let mut b = CovMap::empty("SymbFuzz", "d");
        b.nodes.push(NodeCov {
            id: 0,
            first_cycle: 2,
            provenance: rec("solver", Some(0)),
        });
        let merged = merge_covmap_counts([&a, &b]);
        assert_eq!(merged[0], ("random".to_string(), 1, 0));
        assert_eq!(merged[1], ("solver".to_string(), 1, 0));
        assert_eq!(merged[2], ("replay".to_string(), 0, 0));
    }

    #[test]
    fn merge_telemetry_tolerates_uneven_blocks() {
        use symbfuzz_core::PhaseBlock;
        // A full task, a never-solved task whose mutate row is missing
        // its histogram, and a zero-vector task that serialised an
        // entirely empty block.
        let full = TelemetryBlock {
            counters: vec![("vectors".into(), 100), ("solver_calls".into(), 3)],
            gauges: vec![("escalation_level".into(), 2)],
            events: vec![("BugFound".into(), 1)],
            phases: vec![PhaseBlock {
                phase: "mutate".into(),
                count: 4,
                self_micros: 40,
                buckets: vec![1, 2, 0],
            }],
        };
        let never_solved = TelemetryBlock {
            counters: vec![("vectors".into(), 50), ("solver_calls".into(), 0)],
            gauges: vec![("escalation_level".into(), 0)],
            events: vec![("BugFound".into(), 0)],
            phases: vec![PhaseBlock {
                phase: "mutate".into(),
                count: 2,
                self_micros: 10,
                buckets: Vec::new(),
            }],
        };
        let zero_vectors = TelemetryBlock::default();
        let merged = merge_telemetry([&full, &never_solved, &zero_vectors]);
        assert_eq!(merged.counters[0], ("vectors".to_string(), 150));
        assert_eq!(merged.counters[1], ("solver_calls".to_string(), 3));
        assert_eq!(merged.gauges[0].1, 2, "gauges keep the high-water mark");
        assert_eq!(merged.events[0].1, 1);
        assert_eq!(merged.phases.len(), 1);
        assert_eq!(merged.phases[0].count, 6);
        assert_eq!(merged.phases[0].self_micros, 50);
        assert_eq!(merged.phases[0].buckets, vec![1, 2, 0]);
        // Merging in the opposite order widens the short histogram
        // instead of truncating the long one.
        let flipped = merge_telemetry([&zero_vectors, &never_solved, &full]);
        assert_eq!(flipped.phases[0].buckets, vec![1, 2, 0]);
        assert_eq!(flipped, merged, "merge is order-insensitive here");
    }

    #[test]
    fn flight_rows_merge_by_interval_across_uneven_streams() {
        let row = |interval: u64, task: u64, vectors: u64, gauge: u64| FlightRow {
            interval,
            t: interval * 10 + task,
            task,
            vectors,
            coverage: vectors / 10,
            nodes: 1,
            edges: 1,
            stagnant: task,
            d_counters: vec![vectors, 1],
            gauges: vec![gauge],
            d_events: vec![1],
            d_phase_micros: vec![5],
        };
        // Task 0 sampled intervals 1–3; task 1 started later and only
        // has 2–4 (uneven streams are the norm: campaigns end at
        // different vector counts).
        let a = vec![row(1, 0, 100, 3), row(2, 0, 100, 4), row(3, 0, 100, 2)];
        let b = vec![row(2, 1, 80, 9), row(3, 1, 80, 1), row(4, 1, 80, 1)];
        let merged = merge_flight_rows([a.as_slice(), b.as_slice()]);
        assert_eq!(
            merged.iter().map(|r| r.interval).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        for r in &merged {
            assert_eq!(r.task, 0, "merged stream is task-anonymous");
        }
        let at = |i: u64| merged.iter().find(|r| r.interval == i).unwrap();
        assert_eq!(at(1).vectors, 100);
        assert_eq!(at(2).vectors, 180, "overlapping intervals sum");
        assert_eq!(at(2).d_counters, vec![180, 2]);
        assert_eq!(at(2).gauges, vec![9], "gauges keep the elementwise max");
        assert_eq!(at(2).stagnant, 1, "stagnation keeps the max");
        assert_eq!(at(4).vectors, 80);
        // Identical regardless of stream order.
        let swapped = merge_flight_rows([b.as_slice(), a.as_slice()]);
        assert_eq!(swapped, merged);
    }

    #[test]
    fn vm_profiles_merge_and_resort() {
        use symbfuzz_core::ConeRow;
        let cone = |proc_index: u64, label: &str, execs: u64, fast: u64, op_units: u64| ConeRow {
            proc_index,
            label: label.into(),
            execs,
            fast,
            escaped_x: execs - fast,
            escaped_uncompiled: 0,
            escaped_cyclic: 0,
            op_units,
        };
        let a = VmProfileBlock {
            rows: vec![cone(0, "alu", 10, 8, 100), cone(1, "pc", 10, 10, 50)],
            op_classes: vec![("binary".into(), 40), ("store".into(), 10)],
            total_execs: 20,
            total_fast: 18,
            total_escaped: 2,
        };
        let b = VmProfileBlock {
            rows: vec![cone(1, "pc", 30, 30, 300)],
            op_classes: vec![("binary".into(), 60)],
            total_execs: 30,
            total_fast: 30,
            total_escaped: 0,
        };
        // A recorder-off campaign contributes None and disappears.
        let merged = merge_vm_profiles([Some(&a), None, Some(&b)]).unwrap();
        assert_eq!(merged.rows.len(), 2);
        assert_eq!(merged.rows[0].label, "pc", "resorted hottest-first");
        assert_eq!(merged.rows[0].execs, 40);
        assert_eq!(merged.rows[0].op_units, 350);
        assert_eq!(merged.rows[1].label, "alu");
        assert_eq!(
            merged.op_classes,
            vec![("binary".into(), 100), ("store".into(), 10)]
        );
        assert_eq!(merged.total_execs, 50);
        assert!((merged.hit_rate() - 48.0 / 50.0).abs() < 1e-12);
        assert!(merge_vm_profiles([None, None]).is_none());
    }

    #[test]
    fn solver_profiles_merge_hardest_first() {
        let goal = |register: &str, conflicts: u64, escalations: Vec<u32>| GoalRow {
            register: register.into(),
            value: 1,
            attempts: escalations.len() as u64,
            sat: 1,
            unsat: 0,
            exhausted: 0,
            neg_cache_hits: 2,
            conflicts,
            decisions: conflicts * 2,
            propagations: conflicts * 10,
            solver_calls: 3,
            deepest_unroll: escalations.len() as u32,
            escalations,
        };
        let a = SolverProfileBlock {
            goals: vec![goal("easy", 5, vec![0]), goal("hard", 100, vec![0, 1])],
            total_attempts: 3,
            total_neg_cache_hits: 4,
        };
        let b = SolverProfileBlock {
            goals: vec![goal("hard", 50, vec![2])],
            total_attempts: 1,
            total_neg_cache_hits: 2,
        };
        // A task that never solved contributes an empty default block.
        let merged = merge_solver_profiles([&a, &b, &SolverProfileBlock::default()]);
        assert_eq!(merged.goals.len(), 2);
        assert_eq!(merged.goals[0].register, "hard", "hardest goal first");
        assert_eq!(merged.goals[0].conflicts, 150);
        assert_eq!(merged.goals[0].attempts, 3);
        assert_eq!(merged.goals[0].deepest_unroll, 2);
        assert_eq!(
            merged.goals[0].escalations,
            vec![0, 1, 2],
            "escalation history concatenates in task order"
        );
        assert_eq!(merged.goals[1].register, "easy");
        assert_eq!(merged.total_attempts, 4);
        assert_eq!(merged.total_neg_cache_hits, 6);
    }

    #[test]
    fn solver_scopes_merge_and_recompute_affinity() {
        use symbfuzz_core::ScopeGoalRow;
        let row = |register: &str, value: u64, sketch: Vec<u64>, blame: Vec<&str>| ScopeGoalRow {
            register: register.into(),
            value,
            attempts: 1,
            conflicts: 10,
            learned: 5,
            restarts: 1,
            learned_size_hist: vec![0; 12],
            lbd_hist: vec![0; 12],
            call_conflict_hist: vec![1; 12],
            restart_timeline: vec![4],
            conflict_depth_sum: 30,
            conflict_depth_max: 6,
            hot_signals: vec![("k".into(), 700)],
            blame: blame.into_iter().map(String::from).collect(),
            sketch,
            depth: 2,
        };
        let a = SolverScopeBlock {
            version: SOLVERSCOPE_VERSION,
            goals: vec![
                row("st", 1, (0..100).collect(), vec!["st"]),
                row("st", 2, (50..150).collect(), vec![]),
            ],
            affinity: Vec::new(),
            mean_adjacent_affinity_milli: 0,
        };
        let b = SolverScopeBlock {
            version: SOLVERSCOPE_VERSION,
            goals: vec![row("st", 1, (0..100).collect(), vec!["lock"])],
            affinity: Vec::new(),
            mean_adjacent_affinity_milli: 0,
        };
        // A task with introspection off contributes None and vanishes.
        let merged = merge_solver_scopes([Some(&a), None, Some(&b)]).unwrap();
        assert_eq!(merged.goals.len(), 2);
        assert_eq!(merged.goals[0].attempts, 2, "same goal folds");
        assert_eq!(merged.goals[0].conflicts, 20);
        assert_eq!(
            merged.goals[0].blame,
            vec!["lock".to_string(), "st".to_string()],
            "blame sets union in name order"
        );
        assert_eq!(merged.affinity.len(), 2);
        assert_eq!(merged.affinity[0][0], 1000);
        assert!(merged.mean_adjacent_affinity_milli > 0);
        // Task order alone decides row order; merging is associative
        // over the same task sequence, so jobs-splits agree.
        let again = merge_solver_scopes([Some(&a), Some(&b), None]).unwrap();
        assert_eq!(again, merged);
        assert!(merge_solver_scopes([None, None]).is_none());
    }

    #[test]
    fn split_jobs_accepts_all_spellings() {
        let split = |s: &str| split_jobs(s.split_whitespace().map(String::from));
        assert_eq!(split("5000 --jobs 4"), (vec!["5000".into()], 4));
        assert_eq!(
            split("--jobs=2 5000 1"),
            (vec!["5000".into(), "1".into()], 2)
        );
        assert_eq!(split("-j 8"), (Vec::<String>::new(), 8));
        assert_eq!(split("-j3 42"), (vec!["42".into()], 3));
        assert_eq!(split("--jobs 0").1, 1);
        let (rest, jobs) = split("1000 2000");
        assert_eq!(rest, vec!["1000".to_string(), "2000".to_string()]);
        assert!(jobs >= 1);
    }
}
