//! Markdown rendering and JSON persistence for experiment results.

use crate::experiments::*;
use crate::pool::{merge_flight_rows, merge_solver_profiles, merge_telemetry, merge_vm_profiles};
use serde::Serialize;
use std::fs;
use std::path::Path;
use symbfuzz_core::CampaignResult;
use symbfuzz_telemetry::{flight_line, status_json, write_atomic};

/// Writes `value` as pretty JSON under `results/<name>.json` (relative
/// to the workspace root when run via `cargo run`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(
        path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
}

/// Writes the canonical post-pool flight-recorder artifacts: every
/// campaign's per-task sample stream merged by interval index
/// ([`merge_flight_rows`]) into one `flight.jsonl`, and one
/// `status.json` heartbeat built from the last merged sample, the
/// merged telemetry block and the merged profiler sections. Because
/// the merge folds deterministic per-task streams in item order, both
/// artifacts are byte-identical at any `--jobs N` — this is the file
/// CI `cmp`s across job counts. No-op when the recorder was off
/// (nothing sampled) or when neither path is given; the `status.json`
/// rewrite is atomic, so a concurrently polling `monitor` never sees a
/// torn file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_flight_artifacts(
    results: &[&CampaignResult],
    flight_path: Option<&Path>,
    status_path: Option<&Path>,
) -> std::io::Result<()> {
    let merged = merge_flight_rows(results.iter().map(|r| r.flight.as_slice()));
    let Some(last) = merged.last() else {
        return Ok(());
    };
    if let Some(path) = flight_path {
        let mut text = String::new();
        for row in &merged {
            text.push_str(&flight_line(&row.to_sample()));
            text.push('\n');
        }
        fs::write(path, text)?;
    }
    if let Some(path) = status_path {
        let telemetry = merge_telemetry(results.iter().map(|r| &r.telemetry));
        let mut extra = Vec::new();
        if let Some(vm) = merge_vm_profiles(results.iter().map(|r| r.vm_profile.as_ref())) {
            extra.push((
                "vm_profile".to_string(),
                serde_json::to_string(&vm).expect("serializable"),
            ));
        }
        let solver = merge_solver_profiles(results.iter().map(|r| &r.solver_profile));
        extra.push((
            "solver_profile".to_string(),
            serde_json::to_string(&solver).expect("serializable"),
        ));
        write_atomic(
            path,
            &status_json(&last.to_sample(), &telemetry.to_snapshot(), &extra),
        )?;
    }
    Ok(())
}

fn check(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

/// Renders Table 1 as Markdown.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "| Bug | Sub-module | CWE | paper vectors | measured vectors |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:02}. {} | {} | {} | {:.2e} | {} |\n",
            r.id,
            r.description,
            r.submodule,
            r.cwe,
            r.paper_vectors,
            r.measured_vectors
                .map(|v| v.to_string())
                .unwrap_or_else(|| "not found".into())
        ));
    }
    out
}

/// Renders the coverage-vs-budget profile as Markdown.
pub fn render_budget_profile(rows: &[BudgetProfileRow]) -> String {
    let mut out = String::from(
        "| design | conflict budget | vectors | coverage | exhaustions | \
         neg-cache hits | cache h/m | reuse | portfolio wins | outcomes |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let outcomes = r
            .solve_outcomes
            .iter()
            .map(|(s, n)| format!("{s}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let cache_total = r.bitblast_cache_hits + r.bitblast_cache_misses;
        let (cache, reuse) = if cache_total == 0 {
            ("-".to_string(), "-".to_string())
        } else {
            (
                format!("{}/{}", r.bitblast_cache_hits, r.bitblast_cache_misses),
                format!("{:.3}", r.session_reuse_milli as f64 / 1000.0),
            )
        };
        let wins = if r.portfolio_wins.is_empty() {
            "-".to_string()
        } else {
            r.portfolio_wins
                .iter()
                .enumerate()
                .map(|(i, w)| format!("P{i}:{w}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {cache} | {reuse} | {wins} | {} |\n",
            r.design,
            r.solver_budget,
            r.vectors,
            r.coverage_points,
            r.budget_exhaustions,
            r.neg_cache_hits,
            outcomes
        ));
    }
    out
}

/// Renders the incremental-solver A/B as Markdown: the geomean
/// conflicts-to-verdict headline per design plus the hardest joined
/// goals.
pub fn render_solvercache_profile(rows: &[SolverCacheResult]) -> String {
    let mut out = String::from(
        "| design | goals | cold confl/verdict | warm confl/verdict | geomean ratio | \
         cache h/m | reuse | portfolio wins |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let wins = match &r.portfolio {
            Some(p) => p
                .wins
                .iter()
                .enumerate()
                .map(|(i, w)| format!("P{i}:{w}"))
                .collect::<Vec<_>>()
                .join(" "),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.3}× | {}/{} | {:.3} | {wins} |\n",
            r.design,
            r.goals.len(),
            r.cold_conflicts_per_verdict_milli as f64 / 1000.0,
            r.warm_conflicts_per_verdict_milli as f64 / 1000.0,
            r.geomean_conflict_ratio_milli as f64 / 1000.0,
            r.cache.frame_hits,
            r.cache.frame_misses,
            r.cache.reuse_milli as f64 / 1000.0,
        ));
    }
    out.push('\n');
    for r in rows {
        for g in r.goals.iter().take(3) {
            out.push_str(&format!(
                "* {}: `{}` = {} — {} conflicts over {} verdicts cold vs {} over {} warm \
                 ({:.3}× cheaper)\n",
                r.design,
                g.register,
                g.value,
                g.cold_conflicts,
                g.cold_verdicts,
                g.warm_conflicts,
                g.warm_verdicts,
                g.ratio_milli as f64 / 1000.0,
            ));
        }
    }
    out
}

/// Renders Table 2 as Markdown, paper values in parentheses.
pub fn render_table2(m: &DetectionMatrix) -> String {
    let mut out =
        String::from("| Bug | SymbFuzz | RFuzz | DifuzzRTL | HWFP |\n|---|---|---|---|---|\n");
    for r in &m.rows {
        out.push_str(&format!(
            "| {:02}. {} | {} (✓) | {} ({}) | {} ({}) | {} ({}) |\n",
            r.id,
            r.name,
            check(r.symbfuzz),
            check(r.rfuzz),
            check(r.paper.0),
            check(r.difuzz),
            check(r.paper.1),
            check(r.hwfp),
            check(r.paper.2),
        ));
    }
    let (s, rf, df, hw) = m.missed();
    out.push_str(&format!(
        "\nmissed: SymbFuzz {s}, RFuzz {rf}, DifuzzRTL {df}, HWFP {hw} (paper: 0, 12, 6, 8)\n"
    ));
    out
}

/// Renders Table 3 as Markdown.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "| Benchmark | LoC | ctrl regs | CFG nodes (paper) | CFG edges (paper) | dep. eqns (paper) | constraints (paper) | latency |\n|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} (for {}) | {} | {} | {} ({}) | {} ({}) | {} ({}–{}) | {} (≈{}) | {:.2}s |\n",
            r.name,
            r.paper_counterpart,
            r.loc,
            r.control_registers,
            r.cfg_nodes,
            r.paper.0,
            r.cfg_edges,
            r.paper.1,
            r.dependency_eqns,
            r.paper.2,
            r.paper.3,
            r.constraints,
            r.paper.4,
            r.latency_s,
        ));
    }
    out
}

/// Renders Figure 4a data as CSV (`vectors,<strategy...>` columns).
pub fn render_fig4a_csv(race: &RaceResult) -> String {
    let mut out = String::from("vectors");
    for (name, _) in &race.curves {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    let nrows = race.curves.iter().map(|(_, s)| s.len()).min().unwrap_or(0);
    for i in 0..nrows {
        out.push_str(&race.curves[0].1[i].vectors.to_string());
        for (_, samples) in &race.curves {
            out.push(',');
            out.push_str(&samples[i].coverage.to_string());
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 4b data as CSV.
pub fn render_fig4b_csv(points: &[VariancePoint]) -> String {
    let mut out = String::from("strategy,vectors,mean,variance\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{:.2},{:.2}\n",
            p.strategy, p.vectors, p.mean, p.variance
        ));
    }
    out
}

/// Renders the speed-up table as Markdown.
pub fn render_speedup(s: &SpeedupResult) -> String {
    let mut out = format!(
        "UVM random saturates at {} coverage points on `{}` (paper: 6.8× speed-up for SymbFuzz).\n\n| Strategy | vectors to match | speed-up vs random |\n|---|---|---|\n",
        s.random_saturation, s.design
    );
    for (name, v, ratio) in &s.rows {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            name,
            v.map(|v| v.to_string()).unwrap_or_else(|| "—".into()),
            ratio
                .map(|r| format!("{r:.2}×"))
                .unwrap_or_else(|| "—".into())
        ));
    }
    out
}

/// Renders the resource profile as Markdown (relative to SymbFuzz = 1.0).
pub fn render_resources(rows: &[(String, CampaignResult)]) -> String {
    let base = rows
        .iter()
        .find(|(n, _)| n == "SymbFuzz")
        .map(|(_, r)| r.resources)
        .unwrap_or_default();
    let base_mem = base.peak_state_bytes.max(1) as f64;
    let base_cpu = base.cycles.max(1) as f64;
    let mut out = String::from(
        "| Strategy | cycles | solver calls | rollbacks | snapshots | mem vs SymbFuzz | cpu vs SymbFuzz |\n|---|---|---|---|---|---|---|\n",
    );
    for (name, r) in rows {
        let res = r.resources;
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2}× | {:.2}× |\n",
            name,
            res.cycles,
            res.solver_calls,
            res.rollbacks,
            res.peak_snapshots,
            res.peak_state_bytes as f64 / base_mem,
            res.cycles as f64 / base_cpu,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_core::CoverageSample;

    #[test]
    fn table_renderers_emit_markdown() {
        let row = Table1Row {
            id: 1,
            name: "x".into(),
            description: "desc".into(),
            submodule: "sub".into(),
            cwe: "CWE-1".into(),
            paper_vectors: 1e6,
            measured_vectors: Some(123),
        };
        let md = render_table1(&[row]);
        assert!(md.contains("| 01. desc | sub | CWE-1 |"));
        assert!(md.contains("| 123 |"));
    }

    #[test]
    fn fig4a_csv_has_header_and_rows() {
        let race = RaceResult {
            design: "d".into(),
            curves: vec![
                (
                    "A".into(),
                    vec![CoverageSample {
                        vectors: 10,
                        coverage: 5,
                    }],
                ),
                (
                    "B".into(),
                    vec![CoverageSample {
                        vectors: 10,
                        coverage: 7,
                    }],
                ),
            ],
        };
        let csv = render_fig4a_csv(&race);
        assert_eq!(csv.lines().next(), Some("vectors,A,B"));
        assert_eq!(csv.lines().nth(1), Some("10,5,7"));
    }

    #[test]
    fn budget_and_solvercache_renderers_show_cache_columns() {
        let row = BudgetProfileRow {
            design: "goalfabric".into(),
            solver_budget: 500,
            vectors: 400,
            coverage_points: 30,
            budget_exhaustions: 0,
            neg_cache_hits: 1,
            bitblast_cache_hits: 9,
            bitblast_cache_misses: 3,
            session_reuse_milli: 750,
            portfolio_wins: vec![2, 1],
            solve_outcomes: vec![("sat".into(), 4)],
        };
        let md = render_budget_profile(&[row]);
        assert!(md.contains("| 9/3 | 0.750 | P0:2 P1:1 |"), "{md}");

        let ab = SolverCacheResult {
            design: "goalfabric".into(),
            solver_budget: 500,
            goals: vec![SolverCacheRow {
                register: "l0".into(),
                value: 1,
                cold_conflicts: 60,
                warm_conflicts: 10,
                cold_verdicts: 2,
                warm_verdicts: 2,
                ratio_milli: 5167,
            }],
            cold_conflicts_per_verdict_milli: 30_000,
            warm_conflicts_per_verdict_milli: 5_000,
            geomean_conflict_ratio_milli: 5167,
            cache: symbfuzz_core::SolverCacheBlock {
                frame_hits: 9,
                frame_misses: 3,
                evictions: 0,
                goals: 12,
                reused_goals: 9,
                reuse_milli: 750,
            },
            portfolio: None,
        };
        let md = render_solvercache_profile(&[ab]);
        assert!(
            md.contains("| 30.000 | 5.000 | 5.167× | 9/3 | 0.750 | - |"),
            "{md}"
        );
        assert!(md.contains("`l0` = 1"), "{md}");
    }

    #[test]
    fn detection_matrix_renders_with_paper_reference() {
        let m = DetectionMatrix {
            rows: vec![DetectionRow {
                id: 4,
                name: "aes_key_leak".into(),
                symbfuzz: true,
                rfuzz: true,
                difuzz: false,
                hwfp: false,
                paper: (true, false, false),
            }],
        };
        let md = render_table2(&m);
        assert!(md.contains("✓ (✓)"));
        assert!(md.contains("✗ (✗)"));
    }
}
