//! JSONL trace parsing, schema validation and rendering.
//!
//! The telemetry layer hand-rolls its JSONL records (it is
//! dependency-free), so this module is the matching consumer: a small
//! flat-object JSON parser, a per-kind schema check against the closed
//! [`Event::KINDS`] taxonomy (plus the synthetic `Phase` spans the
//! collector emits), and the renderers behind the `tracedump` binary —
//! a per-phase time table and a coverage/stagnation timeline.

use symbfuzz_smt::trace_hist_quantile;
use symbfuzz_telemetry::{
    bucket_of, escape_json_into, hist_quantile, Event, Mechanism, Phase, SolveStatus,
    UnknownReason, HIST_BUCKETS,
};

/// One scalar value in a flat trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// Unsigned integer (every numeric trace field is one).
    Num(u64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// `null` (only `checkpoint` uses it).
    Null,
    /// Array of unsigned integers (only the solver-cost `hist` field
    /// uses it — the one non-scalar in the trace schema).
    Arr(Vec<u64>),
}

impl JsonVal {
    fn type_name(&self) -> &'static str {
        match self {
            JsonVal::Num(_) => "number",
            JsonVal::Str(_) => "string",
            JsonVal::Bool(_) => "bool",
            JsonVal::Null => "null",
            JsonVal::Arr(_) => "array",
        }
    }
}

/// One parsed and schema-validated trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Timestamp (clock units; wall-clock micros under `--trace-out`).
    pub t: u64,
    /// Pool task index the record came from.
    pub task: u64,
    /// Record kind: an [`Event::KINDS`] entry or `"Phase"`.
    pub kind: String,
    /// The kind-specific fields, in record order.
    pub fields: Vec<(String, JsonVal)>,
}

impl TraceRecord {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&JsonVal> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// A numeric field, or 0 when absent / non-numeric.
    pub fn num(&self, name: &str) -> u64 {
        match self.field(name) {
            Some(JsonVal::Num(n)) => *n,
            _ => 0,
        }
    }

    /// A string field, or "" when absent / non-string.
    pub fn str(&self, name: &str) -> &str {
        match self.field(name) {
            Some(JsonVal::Str(s)) => s,
            _ => "",
        }
    }

    /// A numeric-array field, or the empty slice when absent.
    pub fn arr(&self, name: &str) -> &[u64] {
        match self.field(name) {
            Some(JsonVal::Arr(a)) => a,
            _ => &[],
        }
    }
}

// --- flat JSON parsing ---------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                b => {
                    // Multi-byte UTF-8 continuation bytes pass through.
                    out.push(b as char);
                    if b >= 0x80 {
                        // Re-decode from the original slice for non-ASCII.
                        out.pop();
                        let start = self.pos - 1;
                        let s =
                            std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.literal("null", JsonVal::Null),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(items));
                }
                loop {
                    match self.value()? {
                        JsonVal::Num(n) => items.push(n),
                        v => {
                            return Err(format!("arrays hold numbers only, got {}", v.type_name()))
                        }
                    }
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonVal::Arr(items));
                        }
                        other => return Err(format!("expected `,` or `]`, got {other:?}")),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap()
                    .parse()
                    .map(JsonVal::Num)
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str, val: JsonVal) -> Result<JsonVal, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object (`{"k": scalar, ...}` — the entire
/// trace schema; nested containers are rejected).
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.expect(b'{')?;
    let mut fields = Vec::new();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            let key = c.string()?;
            c.expect(b':')?;
            let val = c.value()?;
            if fields.iter().any(|(k, _): &(String, _)| *k == key) {
                return Err(format!("duplicate key `{key}`"));
            }
            fields.push((key, val));
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(format!("trailing garbage at byte {}", c.pos));
    }
    Ok(fields)
}

// --- schema validation ---------------------------------------------------

/// Kind of the synthetic per-span records the collector emits.
pub const PHASE_KIND: &str = "Phase";

/// Kind of the once-per-campaign settle-engine summary record
/// (`Collector::emit_settle_metrics`).
pub const METRICS_KIND: &str = "Metrics";

/// Kind of the flight-recorder heartbeat records the sampler mirrors
/// into the trace stream (`Sampler::maybe_sample`).
pub const FLIGHT_KIND: &str = "Flight";

/// Kind of the once-per-campaign incremental-solver summary record
/// (`Collector::emit_solver_cache_metrics`): bitblast-cache counters,
/// session-reuse gauge and per-profile portfolio win tallies.
pub const SOLVER_CACHE_KIND: &str = "SolverCache";

/// The `(field, expected type)` schema of each record kind, beyond the
/// common `t`/`task`/`kind` header. A `checkpoint` may be number or
/// null; `solve_result` and `phase` are closed string enums checked
/// separately.
fn kind_schema(kind: &str) -> Option<&'static [(&'static str, &'static str)]> {
    match kind {
        "CoverageDelta" => Some(&[
            ("vectors", "number"),
            ("coverage", "number"),
            ("delta", "number"),
        ]),
        "StagnationEnter" => Some(&[("vectors", "number"), ("intervals", "number")]),
        "SymbolicEpisode" => Some(&[
            ("checkpoint", "number|null"),
            ("eqns", "number"),
            ("solve_result", "string"),
        ]),
        "SmtSolve" => Some(&[
            ("vars", "number"),
            ("clauses", "number"),
            ("sat", "bool"),
            ("micros", "number"),
        ]),
        "PartialReset" => Some(&[("prefix_len", "number")]),
        "FullReset" => Some(&[]),
        "BugFired" => Some(&[("property", "string"), ("vector", "number")]),
        "NodeCovered" => Some(&[
            ("node", "number"),
            ("vector", "number"),
            ("mechanism", "string"),
            ("goal", "number|null"),
            ("checkpoint", "number|null"),
        ]),
        "EdgeCovered" => Some(&[
            ("edge", "number"),
            ("src", "number"),
            ("dst", "number"),
            ("vector", "number"),
            ("mechanism", "string"),
        ]),
        "BudgetExhausted" => Some(&[
            ("reason", "string"),
            ("level", "number"),
            ("conflicts", "number"),
            ("decisions", "number"),
            ("propagations", "number"),
        ]),
        "GoalSolveCost" => Some(&[
            ("register", "string"),
            ("value", "number"),
            ("status", "string"),
            ("depth", "number"),
            ("calls", "number"),
            ("conflicts", "number"),
            ("learned", "number"),
            ("restarts", "number"),
            ("hist", "array"),
        ]),
        "CoreExtracted" => Some(&[
            ("register", "string"),
            ("value", "number"),
            ("core", "number"),
            ("blamed", "number"),
        ]),
        PHASE_KIND => Some(&[("phase", "string"), ("micros", "number")]),
        METRICS_KIND => Some(&[
            ("settle_fast_path", "number"),
            ("settle_escapes", "number"),
            ("x_island_cones", "number"),
            ("settle_sweeps", "number"),
        ]),
        FLIGHT_KIND => Some(&[
            ("interval", "number"),
            ("vectors", "number"),
            ("coverage", "number"),
            ("stagnant", "number"),
            ("d_vectors", "number"),
            ("d_solver_calls", "number"),
            ("d_settle_fast_path", "number"),
            ("d_settle_escapes", "number"),
        ]),
        SOLVER_CACHE_KIND => Some(&[
            ("bitblast_cache_hits", "number"),
            ("bitblast_cache_misses", "number"),
            ("session_reuse_milli", "number"),
            ("portfolio_races", "number"),
            ("portfolio_wins", "array"),
        ]),
        _ => None,
    }
}

fn type_matches(val: &JsonVal, expected: &str) -> bool {
    expected.split('|').any(|t| t == val.type_name())
}

/// Parses and schema-checks one trace line.
///
/// # Errors
///
/// Returns a description of the first syntax or schema violation.
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let mut fields = parse_flat_object(line)?;
    let take_num = |fields: &mut Vec<(String, JsonVal)>, name: &str| -> Result<u64, String> {
        let i = fields
            .iter()
            .position(|(n, _)| n == name)
            .ok_or(format!("missing `{name}`"))?;
        match fields.remove(i).1 {
            JsonVal::Num(n) => Ok(n),
            v => Err(format!("`{name}` must be a number, got {}", v.type_name())),
        }
    };
    let t = take_num(&mut fields, "t")?;
    let task = take_num(&mut fields, "task")?;
    let i = fields
        .iter()
        .position(|(n, _)| n == "kind")
        .ok_or("missing `kind`".to_string())?;
    let kind = match fields.remove(i).1 {
        JsonVal::Str(s) => s,
        v => return Err(format!("`kind` must be a string, got {}", v.type_name())),
    };
    let schema = kind_schema(&kind).ok_or(format!(
        "unknown kind `{kind}` (expected one of {:?}, `{PHASE_KIND}`, `{METRICS_KIND}`, \
         `{FLIGHT_KIND}` or `{SOLVER_CACHE_KIND}`)",
        Event::KINDS
    ))?;
    if fields.len() != schema.len() {
        return Err(format!(
            "`{kind}` expects fields {:?}, got {:?}",
            schema.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            fields.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
        ));
    }
    for (name, expected) in schema {
        let val = fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or(format!("`{kind}` is missing `{name}`"))?;
        if !type_matches(val, expected) {
            return Err(format!(
                "`{kind}.{name}` must be {expected}, got {}",
                val.type_name()
            ));
        }
    }
    let rec = TraceRecord {
        t,
        task,
        kind,
        fields,
    };
    if rec.kind == "SymbolicEpisode" && SolveStatus::parse(rec.str("solve_result")).is_none() {
        return Err(format!(
            "unknown solve_result `{}` (expected one of {:?})",
            rec.str("solve_result"),
            SolveStatus::SERIALS
        ));
    }
    if rec.kind == "GoalSolveCost" && SolveStatus::parse(rec.str("status")).is_none() {
        return Err(format!(
            "unknown status `{}` (expected one of {:?})",
            rec.str("status"),
            SolveStatus::SERIALS
        ));
    }
    if rec.kind == "BudgetExhausted" && UnknownReason::parse(rec.str("reason")).is_none() {
        return Err(format!("unknown budget reason `{}`", rec.str("reason")));
    }
    if rec.kind == PHASE_KIND && Phase::parse(rec.str("phase")).is_none() {
        return Err(format!("unknown phase `{}`", rec.str("phase")));
    }
    if matches!(rec.kind.as_str(), "NodeCovered" | "EdgeCovered")
        && Mechanism::parse(rec.str("mechanism")).is_none()
    {
        return Err(format!(
            "unknown mechanism `{}` (expected one of {:?})",
            rec.str("mechanism"),
            Mechanism::ALL.map(|m| m.name())
        ));
    }
    Ok(rec)
}

/// Parses a whole JSONL trace, reporting the first bad line by number.
///
/// # Errors
///
/// Returns `"line N: <why>"` for the first syntax or schema violation.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

// --- rendering -----------------------------------------------------------

fn fmt_micros(micros: u64) -> String {
    if micros >= 1_000_000 {
        format!("{:.2}s", micros as f64 / 1e6)
    } else if micros >= 1_000 {
        format!("{:.2}ms", micros as f64 / 1e3)
    } else {
        format!("{micros}µs")
    }
}

/// Renders the per-phase time table: span counts, self-time and share
/// of the total accounted time per [`Phase`], plus p50/p90/p99 span
/// durations estimated from the fixed log₄ histogram buckets each
/// span's `micros` falls into (see
/// [`symbfuzz_telemetry::hist_quantile`] — bucket-resolution estimates,
/// deterministic and merge-stable, not exact order statistics).
pub fn phase_table(records: &[TraceRecord]) -> String {
    let mut count = [0u64; Phase::COUNT];
    let mut micros = [0u64; Phase::COUNT];
    let mut buckets = [[0u64; HIST_BUCKETS]; Phase::COUNT];
    for r in records.iter().filter(|r| r.kind == PHASE_KIND) {
        if let Some(p) = Phase::parse(r.str("phase")) {
            let i = Phase::ALL.iter().position(|q| *q == p).unwrap();
            count[i] += 1;
            micros[i] += r.num("micros");
            buckets[i][bucket_of(r.num("micros"))] += 1;
        }
    }
    let total: u64 = micros.iter().sum();
    let quantiles = |b: &[u64]| {
        format!(
            "{} | {} | {}",
            fmt_micros(hist_quantile(b, 0.50)),
            fmt_micros(hist_quantile(b, 0.90)),
            fmt_micros(hist_quantile(b, 0.99))
        )
    };
    let mut out = String::from(
        "| Phase | spans | self time | share | p50 | p90 | p99 |\n|---|---|---|---|---|---|---|\n",
    );
    for (i, p) in Phase::ALL.iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {} |\n",
            p.name(),
            count[i],
            fmt_micros(micros[i]),
            100.0 * micros[i] as f64 / total.max(1) as f64,
            quantiles(&buckets[i])
        ));
    }
    let mut all = [0u64; HIST_BUCKETS];
    for b in &buckets {
        for (dst, src) in all.iter_mut().zip(b) {
            *dst += src;
        }
    }
    out.push_str(&format!(
        "| **total** | {} | {} | 100.0% | {} |\n",
        count.iter().sum::<u64>(),
        fmt_micros(total),
        quantiles(&all)
    ));
    out
}

/// Renders the compiled-settle engine mix: per-task fast-path vs
/// escaped process executions from the once-per-campaign `Metrics`
/// records, with the hit rate the fast path achieved, plus a totals
/// row. Empty when the trace predates the compiled kernel (no
/// `Metrics` records).
pub fn settle_mix_table(records: &[TraceRecord]) -> String {
    let metrics: Vec<&TraceRecord> = records.iter().filter(|r| r.kind == METRICS_KIND).collect();
    if metrics.is_empty() {
        return String::new();
    }
    let rate = |fast: u64, escapes: u64| -> String {
        let total = fast + escapes;
        if total == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * fast as f64 / total as f64)
        }
    };
    let mut out = String::from(
        "| task | fast path | escapes | hit rate | max X-island | sweeps |\n\
         |---|---|---|---|---|---|\n",
    );
    let (mut tf, mut te, mut ti, mut ts) = (0u64, 0u64, 0u64, 0u64);
    for r in &metrics {
        let (fast, escapes) = (r.num("settle_fast_path"), r.num("settle_escapes"));
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.task,
            fast,
            escapes,
            rate(fast, escapes),
            r.num("x_island_cones"),
            r.num("settle_sweeps"),
        ));
        tf += fast;
        te += escapes;
        ti = ti.max(r.num("x_island_cones"));
        ts += r.num("settle_sweeps");
    }
    out.push_str(&format!(
        "| **all** | {tf} | {te} | {} | {ti} | {ts} |\n",
        rate(tf, te)
    ));
    out
}

/// Renders the incremental-solver summary from the once-per-campaign
/// `SolverCache` records: per-task bitblast-cache hits/misses with the
/// hit rate, the warm-session reuse ratio, and — when the campaign
/// raced a portfolio — per-profile win columns, plus a totals row.
/// Empty when the trace predates the incremental solver (no
/// `SolverCache` records).
pub fn solver_cache_table(records: &[TraceRecord]) -> String {
    let rows: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.kind == SOLVER_CACHE_KIND)
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let rate = |hits: u64, misses: u64| -> String {
        let total = hits + misses;
        if total == 0 {
            "-".into()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / total as f64)
        }
    };
    let profiles = rows
        .iter()
        .map(|r| r.arr("portfolio_wins").len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("| task | cache hits | misses | hit rate | session reuse | races |");
    for i in 0..profiles {
        out.push_str(&format!(" P{i} wins |"));
    }
    out.push_str("\n|---|---|---|---|---|---|");
    out.push_str(&"---|".repeat(profiles));
    out.push('\n');
    let (mut th, mut tm, mut tr) = (0u64, 0u64, 0u64);
    let mut tw = vec![0u64; profiles];
    for r in &rows {
        let (hits, misses) = (r.num("bitblast_cache_hits"), r.num("bitblast_cache_misses"));
        let wins = r.arr("portfolio_wins");
        out.push_str(&format!(
            "| {} | {hits} | {misses} | {} | {:.3} | {} |",
            r.task,
            rate(hits, misses),
            r.num("session_reuse_milli") as f64 / 1000.0,
            r.num("portfolio_races"),
        ));
        for i in 0..profiles {
            out.push_str(&format!(" {} |", wins.get(i).copied().unwrap_or(0)));
        }
        out.push('\n');
        th += hits;
        tm += misses;
        tr += r.num("portfolio_races");
        for (dst, src) in tw.iter_mut().zip(wins) {
            *dst += *src;
        }
    }
    out.push_str(&format!(
        "| **all** | {th} | {tm} | {} | — | {tr} |",
        rate(th, tm)
    ));
    for w in &tw {
        out.push_str(&format!(" {w} |"));
    }
    out.push('\n');
    out
}

/// Renders the per-goal solver cost table from `GoalSolveCost`
/// records: attempts, cumulative calls / conflicts / learned clauses /
/// restarts per `(register, value)` goal, plus p50/p90/p99 per-call
/// conflict quantiles read off the merged log₄ histograms (see
/// [`symbfuzz_smt::trace_hist_quantile`] — upper-bucket-edge
/// estimates, deterministic and merge-stable). Goals are ordered
/// hardest first (cumulative conflicts, then calls); empty when the
/// trace predates solver introspection.
pub fn goal_cost_table(records: &[TraceRecord]) -> String {
    struct Row {
        register: String,
        value: u64,
        attempts: u64,
        calls: u64,
        conflicts: u64,
        learned: u64,
        restarts: u64,
        hist: Vec<u64>,
        last_status: String,
    }
    let mut rows: Vec<Row> = Vec::new();
    for r in records.iter().filter(|r| r.kind == "GoalSolveCost") {
        let (register, value) = (r.str("register"), r.num("value"));
        let row = match rows
            .iter_mut()
            .find(|g| g.register == register && g.value == value)
        {
            Some(g) => g,
            None => {
                rows.push(Row {
                    register: register.to_string(),
                    value,
                    attempts: 0,
                    calls: 0,
                    conflicts: 0,
                    learned: 0,
                    restarts: 0,
                    hist: Vec::new(),
                    last_status: String::new(),
                });
                rows.last_mut().unwrap()
            }
        };
        row.attempts += 1;
        row.calls += r.num("calls");
        row.conflicts += r.num("conflicts");
        row.learned += r.num("learned");
        row.restarts += r.num("restarts");
        let hist = r.arr("hist");
        if row.hist.len() < hist.len() {
            row.hist.resize(hist.len(), 0);
        }
        for (dst, src) in row.hist.iter_mut().zip(hist) {
            *dst += src;
        }
        row.last_status = r.str("status").to_string();
    }
    if rows.is_empty() {
        return String::new();
    }
    rows.sort_by(|a, b| {
        (b.conflicts, b.calls, &a.register, a.value).cmp(&(
            a.conflicts,
            a.calls,
            &b.register,
            b.value,
        ))
    });
    let mut out = String::from(
        "| goal | attempts | calls | conflicts | learned | restarts \
         | p50 | p90 | p99 | last status |\n|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for g in &rows {
        out.push_str(&format!(
            "| `{}` = {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            g.register,
            g.value,
            g.attempts,
            g.calls,
            g.conflicts,
            g.learned,
            g.restarts,
            trace_hist_quantile(&g.hist, 0.50),
            trace_hist_quantile(&g.hist, 0.90),
            trace_hist_quantile(&g.hist, 0.99),
            g.last_status
        ));
    }
    out
}

/// Renders the campaign timeline: coverage growth, stagnation entries,
/// symbolic episodes, resets and bug detections, in record order.
pub fn timeline(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let line = match r.kind.as_str() {
            "CoverageDelta" => format!(
                "coverage {} (+{}) at {} vectors",
                r.num("coverage"),
                r.num("delta"),
                r.num("vectors")
            ),
            "StagnationEnter" => format!(
                "stagnation after {} flat intervals at {} vectors",
                r.num("intervals"),
                r.num("vectors")
            ),
            "SymbolicEpisode" => {
                let cp = match r.field("checkpoint") {
                    Some(JsonVal::Num(n)) => format!("checkpoint {n}"),
                    _ => "reset state".into(),
                };
                format!(
                    "symbolic episode from {cp}: {} ({} eqns)",
                    r.str("solve_result"),
                    r.num("eqns")
                )
            }
            "BudgetExhausted" => format!(
                "solver budget exhausted ({}) at escalation level {} \
                 after {} conflicts / {} decisions",
                r.str("reason"),
                r.num("level"),
                r.num("conflicts"),
                r.num("decisions")
            ),
            "PartialReset" => format!("partial reset (replayed {} cycles)", r.num("prefix_len")),
            "FullReset" => "full reset".into(),
            "BugFired" => format!(
                "BUG `{}` fired at vector {}",
                r.str("property"),
                r.num("vector")
            ),
            "NodeCovered" => {
                let goal = match r.field("goal") {
                    Some(JsonVal::Num(g)) => format!(" (goal {g})"),
                    _ => String::new(),
                };
                format!(
                    "node {} covered via {}{goal} at vector {}",
                    r.num("node"),
                    r.str("mechanism"),
                    r.num("vector")
                )
            }
            "EdgeCovered" => format!(
                "edge {} -> {} covered via {} at vector {}",
                r.num("src"),
                r.num("dst"),
                r.str("mechanism"),
                r.num("vector")
            ),
            "CoreExtracted" => {
                let core = r.num("core");
                format!(
                    "assumption core for `{}` = {}: {} registers blamed ({})",
                    r.str("register"),
                    r.num("value"),
                    r.num("blamed"),
                    if core == 0 {
                        "hot-signal fallback".to_string()
                    } else {
                        format!("core of {core}")
                    }
                )
            }
            // SmtSolve, Phase and GoalSolveCost records stay in the
            // table views.
            _ => continue,
        };
        out.push_str(&format!("t={:<10} task={} {}\n", r.t, r.task, line));
    }
    out
}

/// Re-serializes one validated record as a canonical flat JSON line:
/// `t`, `task`, `kind`, then the kind-specific fields in record order.
/// The output parses back through [`parse_line`] unchanged, so it can
/// be piped into any consumer of the trace schema.
pub fn record_to_json(r: &TraceRecord) -> String {
    let mut out = format!(
        "{{\"t\":{},\"task\":{},\"kind\":\"{}\"",
        r.t, r.task, r.kind
    );
    for (name, val) in &r.fields {
        out.push_str(",\"");
        out.push_str(name);
        out.push_str("\":");
        match val {
            JsonVal::Num(n) => out.push_str(&n.to_string()),
            JsonVal::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonVal::Null => out.push_str("null"),
            JsonVal::Str(s) => {
                out.push('"');
                escape_json_into(s, &mut out);
                out.push('"');
            }
            JsonVal::Arr(items) => {
                out.push('[');
                for (i, n) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&n.to_string());
                }
                out.push(']');
            }
        }
    }
    out.push('}');
    out
}

/// Renders a whole trace back to canonical JSONL (one
/// [`record_to_json`] line per record, newline-terminated).
pub fn to_json_lines(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_to_json(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_telemetry::Event;

    #[test]
    fn event_lines_round_trip_through_parser() {
        let events = [
            Event::CoverageDelta {
                vectors: 100,
                coverage: 20,
                delta: 3,
            },
            Event::StagnationEnter {
                vectors: 400,
                intervals: 2,
            },
            Event::SymbolicEpisode {
                checkpoint: Some(5),
                eqns: 12,
                solve_result: SolveStatus::Sat,
            },
            Event::SymbolicEpisode {
                checkpoint: None,
                eqns: 12,
                solve_result: SolveStatus::Unknown(UnknownReason::Conflicts),
            },
            Event::BudgetExhausted {
                reason: UnknownReason::Conflicts,
                level: 2,
                conflicts: 10_000,
                decisions: 31_407,
                propagations: 918_222,
            },
            Event::SmtSolve {
                vars: 40,
                clauses: 90,
                sat: true,
                micros: 17,
            },
            Event::PartialReset { prefix_len: 9 },
            Event::FullReset,
            Event::BugFired {
                property: "a\"b".into(),
                vector: 999,
            },
            Event::NodeCovered {
                node: 4,
                vector: 120,
                mechanism: Mechanism::SolverGuided,
                goal: Some(2),
                checkpoint: None,
            },
            Event::NodeCovered {
                node: 5,
                vector: 121,
                mechanism: Mechanism::ReplayPrefix,
                goal: None,
                checkpoint: Some(3),
            },
            Event::EdgeCovered {
                edge: 9,
                src: 4,
                dst: 5,
                vector: 121,
                mechanism: Mechanism::ConstrainedRandom,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            let line = e.to_json_line(i as u64, 3);
            let rec = parse_line(&line).expect("valid line");
            assert_eq!(rec.t, i as u64);
            assert_eq!(rec.task, 3);
            assert_eq!(rec.kind, e.kind());
        }
        let rec = parse_line(&events[8].to_json_line(0, 0)).unwrap();
        assert_eq!(rec.str("property"), "a\"b");
    }

    #[test]
    fn schema_violations_are_rejected() {
        // Missing field.
        assert!(parse_line("{\"t\":1,\"task\":0,\"kind\":\"PartialReset\"}").is_err());
        // Wrong type.
        assert!(
            parse_line("{\"t\":1,\"task\":0,\"kind\":\"PartialReset\",\"prefix_len\":\"x\"}")
                .is_err()
        );
        // Unknown kind.
        assert!(parse_line("{\"t\":1,\"task\":0,\"kind\":\"Nope\"}").is_err());
        // Extra field.
        assert!(parse_line("{\"t\":1,\"task\":0,\"kind\":\"FullReset\",\"x\":1}").is_err());
        // Unknown solve outcome.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"SymbolicEpisode\",\"checkpoint\":null,\
             \"eqns\":1,\"solve_result\":\"maybe\"}"
        )
        .is_err());
        // A structured unknown round-trips; an unknown ceiling name does not.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"SymbolicEpisode\",\"checkpoint\":null,\
             \"eqns\":1,\"solve_result\":\"unknown:conflicts\"}"
        )
        .is_ok());
        // Unknown budget ceiling name.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"BudgetExhausted\",\"reason\":\"patience\",\
             \"level\":0,\"conflicts\":1,\"decisions\":1,\"propagations\":1}"
        )
        .is_err());
        // Unknown phase name.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"Phase\",\"phase\":\"nap\",\"micros\":4}"
        )
        .is_err());
        // Unknown coverage mechanism.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"NodeCovered\",\"node\":1,\"vector\":2,\
             \"mechanism\":\"telepathy\",\"goal\":null,\"checkpoint\":null}"
        )
        .is_err());
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"EdgeCovered\",\"edge\":0,\"src\":1,\"dst\":2,\
             \"vector\":3,\"mechanism\":\"osmosis\"}"
        )
        .is_err());
        // Syntax errors.
        assert!(parse_flat_object("{\"a\":1").is_err());
        assert!(parse_flat_object("{\"a\":1} x").is_err());
        assert!(parse_flat_object("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn canonical_json_round_trips_through_the_schema_checker() {
        let events = [
            Event::NodeCovered {
                node: 7,
                vector: 42,
                mechanism: Mechanism::SolverGuided,
                goal: Some(1),
                checkpoint: Some(2),
            },
            Event::BugFired {
                property: "needs \"escaping\"".into(),
                vector: 9,
            },
            Event::FullReset,
        ];
        let text: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json_line(i as u64, 0) + "\n")
            .collect();
        let records = parse_trace(&text).unwrap();
        // The canonical re-serialization is byte-identical to what the
        // telemetry layer emitted, and re-validates cleanly.
        assert_eq!(to_json_lines(&records), text);
        assert_eq!(parse_trace(&to_json_lines(&records)).unwrap(), records);
    }

    #[test]
    fn trace_errors_carry_line_numbers() {
        let text = "{\"t\":0,\"task\":0,\"kind\":\"FullReset\"}\n\nnot json\n";
        let err = parse_trace(text).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn phase_table_shares_sum_to_total() {
        let text = "\
{\"t\":10,\"task\":0,\"kind\":\"Phase\",\"phase\":\"mutate\",\"micros\":30}
{\"t\":20,\"task\":0,\"kind\":\"Phase\",\"phase\":\"settle\",\"micros\":60}
{\"t\":30,\"task\":0,\"kind\":\"Phase\",\"phase\":\"solve\",\"micros\":10}
";
        let recs = parse_trace(text).unwrap();
        let table = phase_table(&recs);
        // A single span lands in one log₄ bucket, so every quantile
        // reads the same bucket-resolution estimate (16–64µs → 63µs).
        assert!(
            table.contains("| mutate | 1 | 30µs | 30.0% | 63µs | 63µs | 63µs |"),
            "{table}"
        );
        assert!(
            table.contains("| settle | 1 | 60µs | 60.0% | 63µs | 63µs | 63µs |"),
            "{table}"
        );
        // The totals row interpolates across the merged histogram:
        // one span in [4,16), two in [16,64).
        assert!(
            table.contains("| **total** | 3 | 100µs | 100.0% | 28µs | 57µs | 63µs |"),
            "{table}"
        );
    }

    #[test]
    fn flight_records_validate_and_round_trip() {
        // The exact shape `Sampler::maybe_sample` mirrors into the
        // trace stream.
        let text = "\
{\"t\":100,\"task\":2,\"kind\":\"Flight\",\"interval\":1,\"vectors\":1000,\"coverage\":42,\
\"stagnant\":0,\"d_vectors\":1000,\"d_solver_calls\":3,\"d_settle_fast_path\":900,\
\"d_settle_escapes\":100}
";
        let recs = parse_trace(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].kind, FLIGHT_KIND);
        assert_eq!(recs[0].num("interval"), 1);
        assert_eq!(recs[0].num("d_vectors"), 1000);
        // Canonical re-serialization is byte-identical.
        assert_eq!(to_json_lines(&recs), text);
        // Flight records are heartbeat summaries, not timeline events.
        assert_eq!(timeline(&recs), "");
        // A truncated flight record is a schema violation.
        assert!(parse_line(
            "{\"t\":100,\"task\":2,\"kind\":\"Flight\",\"interval\":1,\"vectors\":1000}"
        )
        .is_err());
    }

    #[test]
    fn metrics_records_validate_and_render_hit_rate() {
        // The exact shape `Collector::emit_settle_metrics` writes.
        let text = "\
{\"t\":1,\"task\":0,\"kind\":\"Metrics\",\"settle_fast_path\":75,\"settle_escapes\":25,\
\"x_island_cones\":3,\"settle_sweeps\":100}
{\"t\":2,\"task\":1,\"kind\":\"Metrics\",\"settle_fast_path\":0,\"settle_escapes\":0,\
\"x_island_cones\":0,\"settle_sweeps\":0}
";
        let recs = parse_trace(text).unwrap();
        let table = settle_mix_table(&recs);
        assert!(
            table.contains("| 0 | 75 | 25 | 75.0% | 3 | 100 |"),
            "{table}"
        );
        assert!(table.contains("| 1 | 0 | 0 | - | 0 | 0 |"), "{table}");
        assert!(
            table.contains("| **all** | 75 | 25 | 75.0% | 3 | 100 |"),
            "{table}"
        );
        // Canonical re-serialization round-trips.
        assert_eq!(to_json_lines(&recs), text);
        // Missing fields are a schema violation.
        assert!(
            parse_line("{\"t\":1,\"task\":0,\"kind\":\"Metrics\",\"settle_fast_path\":1}").is_err()
        );
        // Traces without Metrics records render nothing.
        assert_eq!(settle_mix_table(&[]), "");
    }

    #[test]
    fn solver_cache_records_validate_and_tabulate() {
        // The exact shape `Collector::emit_solver_cache_metrics` writes.
        let text = "\
{\"t\":1,\"task\":0,\"kind\":\"SolverCache\",\"bitblast_cache_hits\":30,\
\"bitblast_cache_misses\":10,\"session_reuse_milli\":800,\"portfolio_races\":5,\
\"portfolio_wins\":[3,2]}
{\"t\":2,\"task\":1,\"kind\":\"SolverCache\",\"bitblast_cache_hits\":0,\
\"bitblast_cache_misses\":0,\"session_reuse_milli\":0,\"portfolio_races\":0,\
\"portfolio_wins\":[]}
";
        let recs = parse_trace(text).unwrap();
        let table = solver_cache_table(&recs);
        assert!(
            table.contains("| 0 | 30 | 10 | 75.0% | 0.800 | 5 | 3 | 2 |"),
            "{table}"
        );
        // A task with an empty wins array zero-fills the profile columns.
        assert!(
            table.contains("| 1 | 0 | 0 | - | 0.000 | 0 | 0 | 0 |"),
            "{table}"
        );
        // Totals sum counters and per-profile wins across tasks.
        assert!(
            table.contains("| **all** | 30 | 10 | 75.0% | — | 5 | 3 | 2 |"),
            "{table}"
        );
        // Canonical re-serialization round-trips.
        assert_eq!(to_json_lines(&recs), text);
        // Missing fields are a schema violation.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"SolverCache\",\"bitblast_cache_hits\":1}"
        )
        .is_err());
        // A non-array wins field is a schema violation too.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"SolverCache\",\"bitblast_cache_hits\":1,\
\"bitblast_cache_misses\":1,\"session_reuse_milli\":0,\"portfolio_races\":0,\
\"portfolio_wins\":7}"
        )
        .is_err());
        // Traces without SolverCache records render nothing.
        assert_eq!(solver_cache_table(&[]), "");
    }

    #[test]
    fn solver_cost_records_round_trip_and_tabulate() {
        use symbfuzz_smt::TRACE_HIST_BUCKETS;
        let mut hist = vec![0u64; TRACE_HIST_BUCKETS];
        hist[1] = 8; // eight calls with ≤3 conflicts
        hist[3] = 2; // two calls with ≤63 conflicts
        let events = [
            Event::GoalSolveCost {
                register: "st".into(),
                value: 3,
                status: SolveStatus::Unknown(UnknownReason::Conflicts),
                depth: 4,
                calls: 10,
                conflicts: 40,
                learned: 30,
                restarts: 2,
                hist: hist.clone(),
            },
            Event::GoalSolveCost {
                register: "st".into(),
                value: 3,
                status: SolveStatus::Unknown(UnknownReason::Conflicts),
                depth: 5,
                calls: 10,
                conflicts: 60,
                learned: 45,
                restarts: 3,
                hist,
            },
            Event::GoalSolveCost {
                register: "mode".into(),
                value: 1,
                status: SolveStatus::Sat,
                depth: 2,
                calls: 2,
                conflicts: 0,
                learned: 0,
                restarts: 0,
                hist: vec![0; TRACE_HIST_BUCKETS],
            },
            Event::CoreExtracted {
                register: "st".into(),
                value: 3,
                core: 2,
                blamed: 2,
            },
            Event::CoreExtracted {
                register: "st".into(),
                value: 7,
                core: 0,
                blamed: 1,
            },
        ];
        let text: String = events
            .iter()
            .enumerate()
            .map(|(i, e)| e.to_json_line(i as u64, 0) + "\n")
            .collect();
        let records = parse_trace(&text).unwrap();
        // Canonical re-serialization (array field included) is
        // byte-identical and re-validates.
        assert_eq!(to_json_lines(&records), text);
        assert_eq!(records[0].arr("hist").len(), TRACE_HIST_BUCKETS);

        // Both attempts of the `st`=3 goal fold into one hardest-first
        // row; the merged 20-call histogram keeps its quantile edges.
        let table = goal_cost_table(&records);
        assert!(
            table
                .contains("| `st` = 3 | 2 | 20 | 100 | 75 | 5 | 3 | 63 | 63 | unknown:conflicts |"),
            "{table}"
        );
        assert!(
            table.contains("| `mode` = 1 | 1 | 2 | 0 | 0 | 0 | 0 | 0 | 0 | sat |"),
            "{table}"
        );
        let st = table.find("`st` = 3").unwrap();
        let mode = table.find("`mode` = 1").unwrap();
        assert!(st < mode, "hardest goal first:\n{table}");

        // Core extractions narrate in the timeline; costs stay tabular.
        let tl = timeline(&records);
        assert!(
            tl.contains("assumption core for `st` = 3: 2 registers blamed (core of 2)"),
            "{tl}"
        );
        assert!(
            tl.contains("assumption core for `st` = 7: 1 registers blamed (hot-signal fallback)"),
            "{tl}"
        );
        assert!(!tl.contains("GoalSolveCost"));

        // Traces without solver-cost records render nothing.
        assert_eq!(goal_cost_table(&[]), "");
    }

    #[test]
    fn solver_cost_schema_violations_are_rejected() {
        // Unknown solve status.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"GoalSolveCost\",\"register\":\"st\",\"value\":3,\
             \"status\":\"maybe\",\"depth\":1,\"calls\":1,\"conflicts\":0,\"learned\":0,\
             \"restarts\":0,\"hist\":[]}"
        )
        .is_err());
        // `hist` must be an array.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"GoalSolveCost\",\"register\":\"st\",\"value\":3,\
             \"status\":\"sat\",\"depth\":1,\"calls\":1,\"conflicts\":0,\"learned\":0,\
             \"restarts\":0,\"hist\":7}"
        )
        .is_err());
        // Arrays hold numbers only.
        assert!(parse_flat_object("{\"hist\":[\"x\"]}").is_err());
        assert!(parse_flat_object("{\"hist\":[1,]}").is_err());
        // Missing field.
        assert!(parse_line(
            "{\"t\":1,\"task\":0,\"kind\":\"CoreExtracted\",\"register\":\"st\",\"value\":3,\
             \"core\":2}"
        )
        .is_err());
    }

    #[test]
    fn timeline_narrates_coverage_and_bugs() {
        let text = "\
{\"t\":5,\"task\":1,\"kind\":\"CoverageDelta\",\"vectors\":100,\"coverage\":8,\"delta\":8}
{\"t\":6,\"task\":1,\"kind\":\"StagnationEnter\",\"vectors\":300,\"intervals\":2}
{\"t\":7,\"task\":1,\"kind\":\"BudgetExhausted\",\"reason\":\"conflicts\",\"level\":1,\
\"conflicts\":500,\"decisions\":1200,\"propagations\":9000}
{\"t\":8,\"task\":1,\"kind\":\"BugFired\",\"property\":\"leak\",\"vector\":321}
";
        let recs = parse_trace(text).unwrap();
        let tl = timeline(&recs);
        assert!(tl.contains("coverage 8 (+8) at 100 vectors"));
        assert!(tl.contains("stagnation after 2 flat intervals"));
        assert!(
            tl.contains("solver budget exhausted (conflicts) at escalation level 1"),
            "{tl}"
        );
        assert!(tl.contains("BUG `leak` fired at vector 321"));
    }
}
