//! Flight-recorder artifact validation and rendering for the
//! `monitor` binary.
//!
//! The fuzzer's [`symbfuzz_telemetry::Sampler`] leaves two artifacts
//! behind: an append-only `flight.jsonl` stream (one delta-compressed
//! sample per interval) and an atomically-rewritten `status.json`
//! heartbeat that is safe to poll mid-run. This module is their
//! consumer: schema checks that hard-error with the first offending
//! line, a terminal dashboard, and a Prometheus-style text exposition
//! for scraping. Everything here is pure text-in/text-out so the
//! binary stays a thin shell.

use serde::Value;
use std::fmt::Write as _;
use symbfuzz_telemetry::FLIGHT_VERSION;

/// The scalar header fields every `status.json` and every
/// `flight.jsonl` record carries.
pub const STATUS_SCALARS: [&str; 7] = [
    "interval", "t", "vectors", "coverage", "nodes", "edges", "stagnant",
];

/// The cumulative-metrics sections of `status.json`, each an object of
/// `name → number` pairs.
pub const STATUS_SECTIONS: [&str; 4] = ["counters", "gauges", "events", "phase_self_micros"];

/// The per-sample delta/gauge vectors of a `flight.jsonl` record.
pub const FLIGHT_VECTORS: [&str; 4] = ["d_counters", "gauges", "d_events", "d_phase_micros"];

fn field_num(v: &Value, name: &str) -> Result<u64, String> {
    match v.field(name) {
        Ok(Value::Num(n)) => Ok(*n as u64),
        Ok(other) => Err(format!("`{name}` must be a number, got {other:?}")),
        Err(_) => Err(format!("missing `{name}`")),
    }
}

fn check_version(v: &Value) -> Result<(), String> {
    let got = field_num(v, "v")?;
    if got != FLIGHT_VERSION {
        return Err(format!(
            "unsupported flight schema v{got} (this monitor speaks v{FLIGHT_VERSION})"
        ));
    }
    Ok(())
}

fn check_pairs_object(v: &Value, name: &str) -> Result<(), String> {
    match v.field(name) {
        Ok(Value::Object(fields)) => {
            for (k, val) in fields {
                if !matches!(val, Value::Num(_)) {
                    return Err(format!("`{name}.{k}` must be a number, got {val:?}"));
                }
            }
            Ok(())
        }
        Ok(other) => Err(format!("`{name}` must be an object, got {other:?}")),
        Err(_) => Err(format!("missing `{name}`")),
    }
}

fn check_num_array(v: &Value, name: &str) -> Result<(), String> {
    match v.field(name) {
        Ok(Value::Array(items)) => {
            if items.iter().all(|i| matches!(i, Value::Num(_))) {
                Ok(())
            } else {
                Err(format!("`{name}` must contain only numbers"))
            }
        }
        Ok(other) => Err(format!("`{name}` must be an array, got {other:?}")),
        Err(_) => Err(format!("missing `{name}`")),
    }
}

/// Validates a `status.json` heartbeat: schema version, the scalar
/// header, every cumulative-metrics section, and — when the profiler
/// sections are present — their internal row shapes.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_status(text: &str) -> Result<Value, String> {
    let v: Value = serde_json::from_str(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    check_version(&v)?;
    for name in STATUS_SCALARS {
        field_num(&v, name)?;
    }
    for name in STATUS_SECTIONS {
        check_pairs_object(&v, name)?;
    }
    if let Ok(p) = v.field("vm_profile") {
        check_vm_profile(p).map_err(|e| format!("vm_profile: {e}"))?;
    }
    if let Ok(p) = v.field("solver_profile") {
        check_solver_profile(p).map_err(|e| format!("solver_profile: {e}"))?;
    }
    Ok(v)
}

fn check_vm_profile(p: &Value) -> Result<(), String> {
    for total in ["total_execs", "total_fast", "total_escaped"] {
        field_num(p, total)?;
    }
    match p.field("rows") {
        Ok(Value::Array(rows)) => {
            for (i, row) in rows.iter().enumerate() {
                for f in [
                    "proc_index",
                    "execs",
                    "fast",
                    "escaped_x",
                    "escaped_uncompiled",
                    "escaped_cyclic",
                    "op_units",
                ] {
                    field_num(row, f).map_err(|e| format!("rows[{i}]: {e}"))?;
                }
                if !matches!(row.field("label"), Ok(Value::Str(_))) {
                    return Err(format!("rows[{i}]: `label` must be a string"));
                }
            }
            Ok(())
        }
        _ => Err("missing `rows` array".into()),
    }
}

fn check_solver_profile(p: &Value) -> Result<(), String> {
    for total in ["total_attempts", "total_neg_cache_hits"] {
        field_num(p, total)?;
    }
    match p.field("goals") {
        Ok(Value::Array(goals)) => {
            for (i, g) in goals.iter().enumerate() {
                for f in [
                    "value",
                    "attempts",
                    "sat",
                    "unsat",
                    "exhausted",
                    "neg_cache_hits",
                    "conflicts",
                    "decisions",
                    "propagations",
                    "solver_calls",
                    "deepest_unroll",
                ] {
                    field_num(g, f).map_err(|e| format!("goals[{i}]: {e}"))?;
                }
                if !matches!(g.field("register"), Ok(Value::Str(_))) {
                    return Err(format!("goals[{i}]: `register` must be a string"));
                }
                check_num_array(g, "escalations").map_err(|e| format!("goals[{i}]: {e}"))?;
            }
            Ok(())
        }
        _ => Err("missing `goals` array".into()),
    }
}

/// Validates a whole `flight.jsonl` stream: at least one record, every
/// line schema-clean, interval indexes strictly increasing.
///
/// # Errors
///
/// Returns `"line N: <why>"` for the first bad line, or a description
/// of an empty/truncated stream.
pub fn check_flight(text: &str) -> Result<Vec<Value>, String> {
    let mut samples = Vec::new();
    let mut last_interval = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |e: String| format!("line {}: {e}", i + 1);
        let v: Value =
            serde_json::from_str(line).map_err(|e| at(format!("not valid JSON: {e}")))?;
        check_version(&v).map_err(at)?;
        for name in STATUS_SCALARS {
            field_num(&v, name).map_err(at)?;
        }
        field_num(&v, "task").map_err(at)?;
        for name in FLIGHT_VECTORS {
            check_num_array(&v, name).map_err(at)?;
        }
        let interval = field_num(&v, "interval").map_err(at)?;
        if let Some(prev) = last_interval {
            if interval <= prev {
                return Err(format!(
                    "line {}: interval {interval} not above previous {prev} \
                     (stream must be strictly increasing)",
                    i + 1
                ));
            }
        }
        last_interval = Some(interval);
        samples.push(v);
    }
    if samples.is_empty() {
        return Err("no samples (empty or truncated flight stream)".into());
    }
    Ok(samples)
}

fn pairs_of<'v>(v: &'v Value, name: &str) -> Vec<(&'v str, u64)> {
    match v.field(name) {
        Ok(Value::Object(fields)) => fields
            .iter()
            .filter_map(|(k, val)| match val {
                Value::Num(n) => Some((k.as_str(), *n as u64)),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Renders the terminal dashboard from a validated status heartbeat
/// and (possibly empty) flight stream: the headline campaign state,
/// non-zero counters, phase self-times, the hottest `top` cones with
/// their fast-path hit rates, and the `top` hardest solver goals with
/// their escalation histories.
pub fn render_dashboard(status: &Value, flight: &[Value], top: usize) -> String {
    let n = |name: &str| field_num(status, name).unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SymbFuzz campaign monitor — interval {} (t={})",
        n("interval"),
        n("t")
    );
    let _ = writeln!(
        out,
        "  vectors {}  coverage {} ({} nodes, {} edges)  stagnant intervals {}",
        n("vectors"),
        n("coverage"),
        n("nodes"),
        n("edges"),
        n("stagnant")
    );
    let _ = writeln!(out, "  flight samples on disk: {}", flight.len());
    let counters: Vec<_> = pairs_of(status, "counters")
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .collect();
    if !counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
    }
    let phases = pairs_of(status, "phase_self_micros");
    if phases.iter().any(|(_, v)| *v > 0) {
        let total: u64 = phases.iter().map(|(_, v)| v).sum();
        let _ = writeln!(out, "\nphase self time:");
        for (name, v) in phases {
            let _ = writeln!(
                out,
                "  {name:<10} {v:>10}µs  {:>5.1}%",
                100.0 * v as f64 / total.max(1) as f64
            );
        }
    }
    if let Ok(p) = status.field("vm_profile") {
        let _ = writeln!(out, "\nhot cones (by op units):");
        if let Ok(Value::Array(rows)) = p.field("rows") {
            for row in rows.iter().take(top) {
                let label = match row.field("label") {
                    Ok(Value::Str(s)) => s.as_str(),
                    _ => "?",
                };
                let (execs, fast) = (
                    field_num(row, "execs").unwrap_or(0),
                    field_num(row, "fast").unwrap_or(0),
                );
                let _ = writeln!(
                    out,
                    "  {label:<20} {:>12} op units  {execs:>10} execs  {:>5.1}% fast path",
                    field_num(row, "op_units").unwrap_or(0),
                    100.0 * fast as f64 / execs.max(1) as f64
                );
            }
        }
        let (te, tf) = (
            field_num(p, "total_execs").unwrap_or(0),
            field_num(p, "total_fast").unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "  design-wide fast-path hit rate: {:.1}% of {te} dispatches",
            100.0 * tf as f64 / te.max(1) as f64
        );
    }
    if let Ok(p) = status.field("solver_profile") {
        if let Ok(Value::Array(goals)) = p.field("goals") {
            if !goals.is_empty() {
                let _ = writeln!(out, "\nhardest solver goals (by cumulative conflicts):");
                for g in goals.iter().take(top) {
                    let register = match g.field("register") {
                        Ok(Value::Str(s)) => s.as_str(),
                        _ => "?",
                    };
                    let escalations = match g.field("escalations") {
                        Ok(Value::Array(e)) => e
                            .iter()
                            .filter_map(|v| match v {
                                Value::Num(n) => Some(format!("{}", *n as u64)),
                                _ => None,
                            })
                            .collect::<Vec<_>>()
                            .join(","),
                        _ => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "  {register}=={:<6} {:>8} conflicts  {:>4} attempts \
                         ({} sat / {} unsat / {} exhausted)  escalations [{escalations}]",
                        field_num(g, "value").unwrap_or(0),
                        field_num(g, "conflicts").unwrap_or(0),
                        field_num(g, "attempts").unwrap_or(0),
                        field_num(g, "sat").unwrap_or(0),
                        field_num(g, "unsat").unwrap_or(0),
                        field_num(g, "exhausted").unwrap_or(0),
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "  solver attempts {}  negative-cache hits {}",
            field_num(p, "total_attempts").unwrap_or(0),
            field_num(p, "total_neg_cache_hits").unwrap_or(0)
        );
    }
    out
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the heartbeat as Prometheus text exposition: campaign
/// scalars as gauges, cumulative counters as `_total` counters,
/// per-phase self-times and — when present — per-cone and per-goal
/// profiler series with `label`/`register` label pairs.
pub fn render_prometheus(status: &Value) -> String {
    let mut out = String::new();
    for name in STATUS_SCALARS {
        if let Ok(v) = field_num(status, name) {
            let _ = writeln!(out, "# TYPE symbfuzz_{name} gauge");
            let _ = writeln!(out, "symbfuzz_{name} {v}");
        }
    }
    for (name, v) in pairs_of(status, "counters") {
        let _ = writeln!(out, "symbfuzz_{}_total {v}", prom_name(name));
    }
    for (name, v) in pairs_of(status, "gauges") {
        let _ = writeln!(out, "symbfuzz_gauge_{} {v}", prom_name(name));
    }
    for (name, v) in pairs_of(status, "events") {
        let _ = writeln!(out, "symbfuzz_event_total{{kind=\"{name}\"}} {v}");
    }
    for (name, v) in pairs_of(status, "phase_self_micros") {
        let _ = writeln!(
            out,
            "symbfuzz_phase_self_micros{{phase=\"{}\"}} {v}",
            prom_name(name)
        );
    }
    if let Ok(p) = status.field("vm_profile") {
        for total in ["total_execs", "total_fast", "total_escaped"] {
            if let Ok(v) = field_num(p, total) {
                let _ = writeln!(out, "symbfuzz_vm_{total} {v}");
            }
        }
        if let Ok(Value::Array(rows)) = p.field("rows") {
            for row in rows {
                if let Ok(Value::Str(label)) = row.field("label") {
                    let _ = writeln!(
                        out,
                        "symbfuzz_cone_op_units{{cone=\"{}\"}} {}",
                        prom_name(label),
                        field_num(row, "op_units").unwrap_or(0)
                    );
                    let _ = writeln!(
                        out,
                        "symbfuzz_cone_fast_total{{cone=\"{}\"}} {}",
                        prom_name(label),
                        field_num(row, "fast").unwrap_or(0)
                    );
                }
            }
        }
    }
    if let Ok(p) = status.field("solver_profile") {
        for total in ["total_attempts", "total_neg_cache_hits"] {
            if let Ok(v) = field_num(p, total) {
                let _ = writeln!(out, "symbfuzz_solver_{total} {v}");
            }
        }
        if let Ok(Value::Array(goals)) = p.field("goals") {
            for g in goals {
                if let Ok(Value::Str(register)) = g.field("register") {
                    let value = field_num(g, "value").unwrap_or(0);
                    for f in ["attempts", "conflicts", "exhausted"] {
                        let _ = writeln!(
                            out,
                            "symbfuzz_goal_{f}{{register=\"{}\",value=\"{value}\"}} {}",
                            prom_name(register),
                            field_num(g, f).unwrap_or(0)
                        );
                    }
                }
            }
        }
    }
    out
}

/// Parses a Prometheus text exposition back into `(series, value)`
/// pairs, where `series` is the metric name plus its literal label
/// block (e.g. `symbfuzz_event_total{kind="FullReset"}`). `# TYPE`
/// comments are skipped; the round-trip partner of
/// [`render_prometheus`].
///
/// # Errors
///
/// Returns `"line N: <why>"` for the first malformed line or
/// duplicated series.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut series = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let at = |e: &str| format!("line {}: {e}", i + 1);
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| at("expected `series value`"))?;
        let bare = name.split('{').next().unwrap_or("");
        if bare.is_empty()
            || !bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(at(&format!("bad metric name `{bare}`")));
        }
        if name.contains('{') && !name.ends_with('}') {
            return Err(at("unterminated label block"));
        }
        let value: u64 = value
            .parse()
            .map_err(|_| at(&format!("bad sample value `{value}`")))?;
        if series.iter().any(|(n, _): &(String, u64)| n == name) {
            return Err(at(&format!("duplicate series `{name}`")));
        }
        series.push((name.to_string(), value));
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};

    /// Drives a real traced campaign so the artifacts under test are
    /// exactly what the fuzzer writes, not hand-rolled fixtures.
    fn campaign_artifacts() -> (String, String) {
        let dir = std::env::temp_dir().join(format!("symbfuzz-monitor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = Arc::new(
            symbfuzz_netlist::elaborate_src(
                "module m(input clk, input rst_n, input [7:0] k, output logic ok);
                   always_ff @(posedge clk or negedge rst_n)
                     if (!rst_n) ok <= 1'b0;
                     else begin if (k == 8'h5A) ok <= 1'b1; end
                 endmodule",
                "m",
            )
            .unwrap(),
        );
        let cfg = FuzzConfig::builder()
            .interval(100)
            .threshold(2)
            .max_vectors(5_000)
            .seed(7)
            .sample_every(500)
            .solver_introspection(true)
            .incremental_solving(true)
            .build()
            .unwrap();
        let mut fuzzer = SymbFuzz::new(d, Strategy::SymbFuzz, cfg, &[]).unwrap();
        let flight = dir.join("flight.jsonl");
        let status = dir.join("status.json");
        fuzzer
            .set_flight_outputs(Some(&flight), Some(&status))
            .unwrap();
        fuzzer.run();
        let out = (
            std::fs::read_to_string(&status).unwrap(),
            std::fs::read_to_string(&flight).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
        out
    }

    #[test]
    fn real_campaign_artifacts_pass_the_checks_and_render() {
        let (status_text, flight_text) = campaign_artifacts();
        let status = check_status(&status_text).expect("status.json validates");
        let flight = check_flight(&flight_text).expect("flight.jsonl validates");
        assert_eq!(flight.len(), 10, "5000 vectors / sample_every 500");
        let dash = render_dashboard(&status, &flight, 10);
        assert!(dash.contains("vectors 5000"), "{dash}");
        assert!(dash.contains("hot cones"), "{dash}");
        assert!(dash.contains("fast path"), "{dash}");
        let prom = render_prometheus(&status);
        assert!(prom.contains("symbfuzz_vectors 5000"), "{prom}");
        assert!(prom.contains("symbfuzz_vectors_total 5000"), "{prom}");
        assert!(prom.contains("symbfuzz_vm_total_execs"), "{prom}");
    }

    #[test]
    fn prometheus_exposition_round_trips_through_its_parser() {
        let (status_text, _) = campaign_artifacts();
        let status = check_status(&status_text).unwrap();
        let prom = render_prometheus(&status);
        let series = parse_prometheus(&prom).expect("exposition parses back");
        let value = |name: &str| {
            series
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("series `{name}` missing from:\n{prom}"))
        };
        // The introspection taxonomy's counters and gauge are exported
        // under the standard naming scheme.
        value("symbfuzz_learned_clauses_total");
        value("symbfuzz_core_extractions_total");
        value("symbfuzz_gauge_mean_affinity_milli");
        // So are the incremental-solver taxonomy additions (the
        // campaign above runs with `incremental_solving` on).
        value("symbfuzz_bitblast_cache_hits_total");
        value("symbfuzz_bitblast_cache_misses_total");
        value("symbfuzz_portfolio_races_won_total");
        value("symbfuzz_gauge_solver_session_reuse_milli");
        // Every cumulative counter in the heartbeat survives the
        // render → parse round trip with its value intact.
        for (name, v) in pairs_of(&status, "counters") {
            assert_eq!(value(&format!("symbfuzz_{}_total", prom_name(name))), v);
        }
        for (name, v) in pairs_of(&status, "gauges") {
            assert_eq!(value(&format!("symbfuzz_gauge_{}", prom_name(name))), v);
        }
        for (name, v) in pairs_of(&status, "events") {
            assert_eq!(
                value(&format!("symbfuzz_event_total{{kind=\"{name}\"}}")),
                v
            );
        }
        assert_eq!(value("symbfuzz_vectors"), 5_000);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_lines() {
        assert!(parse_prometheus("symbfuzz_x 1\n# TYPE symbfuzz_x gauge\n").is_ok());
        let err = parse_prometheus("symbfuzz_x\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(parse_prometheus("bad name 1.5x\n").is_err());
        assert!(parse_prometheus("symbfuzz_x{kind=\"a\" 1\n")
            .unwrap_err()
            .contains("unterminated"));
        assert!(parse_prometheus("symbfuzz_x 1\nsymbfuzz_x 2\n")
            .unwrap_err()
            .contains("duplicate"));
    }

    #[test]
    fn status_violations_are_named() {
        assert!(check_status("").unwrap_err().contains("not valid JSON"));
        assert!(check_status("{\"v\":2}").unwrap_err().contains("v2"));
        let err = check_status("{\"v\":1,\"interval\":0}").unwrap_err();
        assert!(err.contains("missing `t`"), "{err}");
        // A scalar of the wrong type is rejected.
        let err = check_status(
            "{\"v\":1,\"interval\":0,\"t\":0,\"vectors\":\"many\",\"coverage\":0,\
             \"nodes\":0,\"edges\":0,\"stagnant\":0}",
        )
        .unwrap_err();
        assert!(err.contains("`vectors`"), "{err}");
    }

    #[test]
    fn flight_violations_carry_line_numbers() {
        let good = "{\"v\":1,\"interval\":1,\"t\":5,\"task\":0,\"vectors\":100,\
                    \"coverage\":3,\"nodes\":2,\"edges\":1,\"stagnant\":0,\
                    \"d_counters\":[100],\"gauges\":[1],\"d_events\":[0],\"d_phase_micros\":[9]}";
        assert_eq!(check_flight(&format!("{good}\n")).unwrap().len(), 1);
        // Empty streams hard-error instead of passing vacuously.
        let err = check_flight("").unwrap_err();
        assert!(err.contains("empty or truncated"), "{err}");
        // Truncated tail line.
        let err = check_flight(&format!("{good}\n{{\"v\":1,\"interval\":2")).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // Interval regression (e.g. two raw task streams concatenated
        // instead of merged): a repeated interval index is rejected.
        let err = check_flight(&format!("{good}\n{good}\n")).unwrap_err();
        assert!(err.contains("not above previous"), "{err}");
    }
}
