//! Shared command-line handling for the bench binaries.
//!
//! Every binary accepts, besides its positional arguments:
//!
//! * `--jobs N` / `-j N` / `-jN` / `--jobs=N` — worker threads
//!   (see [`crate::pool::split_jobs`]);
//! * `--log-level LEVEL` / `--log-level=LEVEL` — stderr logging
//!   verbosity (`off`, `warn`, `info`, `debug`; default `info`);
//! * `--trace-out PATH` / `--trace-out=PATH` — stream a wall-clock
//!   JSONL campaign trace to `PATH` (see [`crate::experiments::enable_tracing`]);
//! * `--solver-budget N` / `--solver-budget=N` — conflict ceiling per
//!   symbolic solve; exhausted solves degrade to random mutation
//!   (see [`crate::experiments::set_solver_budget`]);
//! * `--solve-wall-ms N` / `--solve-wall-ms=N` — wall-clock ceiling per
//!   symbolic solve in milliseconds (non-deterministic: reports may
//!   vary between runs and job counts);
//! * `--settle-mode MODE` / `--settle-mode=MODE` — combinational
//!   settling engine for every campaign (`fixpoint`, `levelized` or
//!   `compiled`; default `compiled`) — see
//!   [`crate::experiments::set_settle_policy`];
//! * `--snapshot-budget N` / `--snapshot-budget=N` — byte budget for
//!   the copy-on-write snapshot store; unique bytes beyond it trigger
//!   oldest-first eviction
//!   (see [`crate::experiments::set_snapshot_budget`]);
//! * `--introspect` — arm solver introspection for every campaign:
//!   per-goal CDCL analytics, blame sets for failed goals, and the
//!   cross-goal affinity matrix land in the report's `solver_scope`
//!   block (see [`crate::experiments::set_introspection`]);
//! * `--sample-every N` / `--sample-every=N` — flight-recorder
//!   sampling interval in vectors; enables the sampler and the
//!   per-cone/per-goal profilers
//!   (see [`crate::experiments::set_sampling`]);
//! * `--flight-out PATH` / `--flight-out=PATH` — canonical merged
//!   `flight.jsonl` destination (requires `--sample-every`);
//! * `--status-out PATH` / `--status-out=PATH` — `status.json`
//!   heartbeat destination, atomically rewritten and pollable mid-run
//!   (requires `--sample-every`);
//! * `--incremental` — keep warm solver sessions across goals sharing
//!   an unrolled frame (assumption-based incremental solving plus the
//!   bitblast cache) — see [`crate::experiments::set_incremental`];
//! * `--solver-cache-budget N` / `--solver-cache-budget=N` — byte
//!   budget for the warm-session bitblast cache; least-recently-used
//!   sessions are evicted beyond it
//!   (see [`crate::experiments::set_solver_cache_budget`]);
//! * `--portfolio N` / `--portfolio=N` — race each budgeted
//!   reachability query across `N` budget profiles (2–4); the
//!   canonical lowest-index winner keeps reports deterministic
//!   (see [`crate::experiments::set_portfolio`]);
//! * `--affinity` — order each guidance round's goal batch by
//!   KMV-sketch affinity (implies `--introspect`) — see
//!   [`crate::experiments::set_affinity`].

use crate::pool::split_jobs;
use std::path::PathBuf;
use symbfuzz_core::SettlePolicy;
use symbfuzz_telemetry::{set_log_level, Level};

/// Parsed common bench arguments.
#[derive(Debug)]
pub struct BenchArgs {
    /// Positional arguments, flags removed, in order.
    pub rest: Vec<String>,
    /// Worker thread count (≥ 1).
    pub jobs: usize,
    /// Requested stderr log level.
    pub log_level: Level,
    /// Trace file requested via `--trace-out`, if any.
    pub trace_out: Option<PathBuf>,
    /// Per-solve conflict ceiling from `--solver-budget`, if any.
    pub solver_budget: Option<u64>,
    /// Per-solve wall-clock ceiling (ms) from `--solve-wall-ms`, if any.
    pub solve_wall_ms: Option<u64>,
    /// Settle engine from `--settle-mode`, if any.
    pub settle_mode: Option<SettlePolicy>,
    /// Snapshot-store byte budget from `--snapshot-budget`, if any.
    pub snapshot_budget: Option<u64>,
    /// Solver introspection armed via `--introspect`.
    pub introspect: bool,
    /// Flight-recorder interval (vectors) from `--sample-every`, if any.
    pub sample_every: Option<u64>,
    /// Merged flight-stream file from `--flight-out`, if any.
    pub flight_out: Option<PathBuf>,
    /// Status heartbeat file from `--status-out`, if any.
    pub status_out: Option<PathBuf>,
    /// Incremental solving armed via `--incremental`.
    pub incremental: bool,
    /// Bitblast-cache byte budget from `--solver-cache-budget`, if any.
    pub solver_cache_budget: Option<u64>,
    /// Portfolio width from `--portfolio`, if any.
    pub portfolio: Option<u32>,
    /// Affinity-ordered goal batching armed via `--affinity`.
    pub affinity: bool,
}

impl BenchArgs {
    /// The `n`-th positional argument parsed as `T`, else `default`.
    pub fn pos<T: std::str::FromStr>(&self, n: usize, default: T) -> T {
        self.rest
            .get(n)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    }
}

/// Splits `--log-level` and `--trace-out` out of `args`, then delegates
/// the remainder to [`split_jobs`]. Unknown or malformed flag values
/// fall back to the defaults (`Level::Info`, no trace).
pub fn split_bench_args<A: Iterator<Item = String>>(args: A) -> BenchArgs {
    let mut log_level = Level::Info;
    let mut trace_out = None;
    let mut solver_budget = None;
    let mut solve_wall_ms = None;
    let mut settle_mode = None;
    let mut snapshot_budget = None;
    let mut introspect = false;
    let mut sample_every = None;
    let mut flight_out = None;
    let mut status_out = None;
    let mut incremental = false;
    let mut solver_cache_budget = None;
    let mut portfolio = None;
    let mut affinity = false;
    let mut passthrough = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--log-level" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                log_level = v;
            }
        } else if let Some(v) = a.strip_prefix("--log-level=") {
            if let Ok(v) = v.parse() {
                log_level = v;
            }
        } else if a == "--trace-out" {
            if let Some(v) = args.next() {
                trace_out = Some(PathBuf::from(v));
            }
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            trace_out = Some(PathBuf::from(v));
        } else if a == "--solver-budget" {
            solver_budget = args.next().and_then(|v| v.parse().ok()).or(solver_budget);
        } else if let Some(v) = a.strip_prefix("--solver-budget=") {
            solver_budget = v.parse().ok().or(solver_budget);
        } else if a == "--solve-wall-ms" {
            solve_wall_ms = args.next().and_then(|v| v.parse().ok()).or(solve_wall_ms);
        } else if let Some(v) = a.strip_prefix("--solve-wall-ms=") {
            solve_wall_ms = v.parse().ok().or(solve_wall_ms);
        } else if a == "--settle-mode" {
            settle_mode = args
                .next()
                .and_then(|v| SettlePolicy::parse(&v))
                .or(settle_mode);
        } else if let Some(v) = a.strip_prefix("--settle-mode=") {
            settle_mode = SettlePolicy::parse(v).or(settle_mode);
        } else if a == "--snapshot-budget" {
            snapshot_budget = args.next().and_then(|v| v.parse().ok()).or(snapshot_budget);
        } else if let Some(v) = a.strip_prefix("--snapshot-budget=") {
            snapshot_budget = v.parse().ok().or(snapshot_budget);
        } else if a == "--introspect" {
            introspect = true;
        } else if a == "--sample-every" {
            sample_every = args.next().and_then(|v| v.parse().ok()).or(sample_every);
        } else if let Some(v) = a.strip_prefix("--sample-every=") {
            sample_every = v.parse().ok().or(sample_every);
        } else if a == "--flight-out" {
            if let Some(v) = args.next() {
                flight_out = Some(PathBuf::from(v));
            }
        } else if let Some(v) = a.strip_prefix("--flight-out=") {
            flight_out = Some(PathBuf::from(v));
        } else if a == "--status-out" {
            if let Some(v) = args.next() {
                status_out = Some(PathBuf::from(v));
            }
        } else if let Some(v) = a.strip_prefix("--status-out=") {
            status_out = Some(PathBuf::from(v));
        } else if a == "--incremental" {
            incremental = true;
        } else if a == "--solver-cache-budget" {
            solver_cache_budget = args
                .next()
                .and_then(|v| v.parse().ok())
                .or(solver_cache_budget);
        } else if let Some(v) = a.strip_prefix("--solver-cache-budget=") {
            solver_cache_budget = v.parse().ok().or(solver_cache_budget);
        } else if a == "--portfolio" {
            portfolio = args.next().and_then(|v| v.parse().ok()).or(portfolio);
        } else if let Some(v) = a.strip_prefix("--portfolio=") {
            portfolio = v.parse().ok().or(portfolio);
        } else if a == "--affinity" {
            affinity = true;
        } else {
            passthrough.push(a);
        }
    }
    let (rest, jobs) = split_jobs(passthrough.into_iter());
    BenchArgs {
        rest,
        jobs,
        log_level,
        trace_out,
        solver_budget,
        solve_wall_ms,
        settle_mode,
        snapshot_budget,
        introspect,
        sample_every,
        flight_out,
        status_out,
        incremental,
        solver_cache_budget,
        portfolio,
        affinity,
    }
}

/// [`split_bench_args`] over the process arguments (program name
/// skipped), applying side effects: sets the global log level and, when
/// `--trace-out` was given, opens the trace file via
/// [`crate::experiments::enable_tracing`].
pub fn parse_bench_args() -> BenchArgs {
    let parsed = split_bench_args(std::env::args().skip(1));
    set_log_level(parsed.log_level);
    if let Some(path) = &parsed.trace_out {
        if let Err(e) = crate::experiments::enable_tracing(path) {
            symbfuzz_telemetry::warn!("cannot open trace file {}: {e}", path.display());
        }
    }
    if parsed.solver_budget.is_some() || parsed.solve_wall_ms.is_some() {
        crate::experiments::set_solver_budget(parsed.solver_budget, parsed.solve_wall_ms);
    }
    if let Some(policy) = parsed.settle_mode {
        crate::experiments::set_settle_policy(policy);
    }
    if let Some(budget) = parsed.snapshot_budget {
        crate::experiments::set_snapshot_budget(budget);
    }
    if parsed.introspect {
        crate::experiments::set_introspection(true);
    }
    if let Some(every) = parsed.sample_every {
        crate::experiments::set_sampling(every);
    }
    if parsed.flight_out.is_some() || parsed.status_out.is_some() {
        crate::experiments::set_flight_outputs(
            parsed.flight_out.as_deref(),
            parsed.status_out.as_deref(),
        );
    }
    if parsed.incremental {
        crate::experiments::set_incremental(true);
    }
    if let Some(bytes) = parsed.solver_cache_budget {
        crate::experiments::set_solver_cache_budget(bytes);
    }
    if let Some(width) = parsed.portfolio {
        crate::experiments::set_portfolio(width);
    }
    if parsed.affinity {
        // Affinity ordering keys on introspection sketches, so arm
        // both (the config builder rejects one without the other).
        crate::experiments::set_affinity(true);
        crate::experiments::set_introspection(true);
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(s: &str) -> BenchArgs {
        split_bench_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn extracts_log_level_and_trace_out() {
        let a = split("5000 --log-level debug --trace-out /tmp/t.jsonl 2 -j 4");
        assert_eq!(a.rest, vec!["5000".to_string(), "2".to_string()]);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.log_level, Level::Debug);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
    }

    #[test]
    fn equals_spellings_and_defaults() {
        let a = split("--log-level=warn --trace-out=trace.jsonl");
        assert_eq!(a.log_level, Level::Warn);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("trace.jsonl"))
        );
        let b = split("1000");
        assert_eq!(b.log_level, Level::Info);
        assert!(b.trace_out.is_none());
        assert_eq!(b.pos(0, 0u64), 1000);
        assert_eq!(b.pos(1, 7u64), 7);
    }

    #[test]
    fn extracts_solver_budget_flags() {
        let a = split("2000 --solver-budget 10000 --solve-wall-ms=250 -j 2");
        assert_eq!(a.rest, vec!["2000".to_string()]);
        assert_eq!(a.solver_budget, Some(10_000));
        assert_eq!(a.solve_wall_ms, Some(250));
        let b = split("--solver-budget=500");
        assert_eq!(b.solver_budget, Some(500));
        assert_eq!(b.solve_wall_ms, None);
        // Malformed values fall back to unset.
        let c = split("--solver-budget lots");
        assert_eq!(c.solver_budget, None);
    }

    #[test]
    fn extracts_settle_mode() {
        let a = split("2000 --settle-mode levelized");
        assert_eq!(a.rest, vec!["2000".to_string()]);
        assert_eq!(a.settle_mode, Some(SettlePolicy::Levelized));
        let b = split("--settle-mode=fixpoint");
        assert_eq!(b.settle_mode, Some(SettlePolicy::Fixpoint));
        let c = split("--settle-mode=compiled");
        assert_eq!(c.settle_mode, Some(SettlePolicy::Compiled));
        // Unknown engines fall back to unset (campaigns keep the
        // compiled default).
        let d = split("--settle-mode warp");
        assert_eq!(d.settle_mode, None);
        assert!(split("42").settle_mode.is_none());
    }

    #[test]
    fn extracts_snapshot_budget() {
        let a = split("2000 --snapshot-budget 65536 -j 2");
        assert_eq!(a.rest, vec!["2000".to_string()]);
        assert_eq!(a.snapshot_budget, Some(65_536));
        let b = split("--snapshot-budget=1048576");
        assert_eq!(b.snapshot_budget, Some(1_048_576));
        // Malformed values fall back to unset.
        let c = split("--snapshot-budget plenty");
        assert_eq!(c.snapshot_budget, None);
        assert!(split("42").snapshot_budget.is_none());
    }

    #[test]
    fn extracts_introspect_flag() {
        let a = split("2000 --introspect -j 2");
        assert_eq!(a.rest, vec!["2000".to_string()]);
        assert!(a.introspect);
        assert!(!split("2000").introspect);
    }

    #[test]
    fn extracts_flight_recorder_flags() {
        let a = split("5000 --sample-every 250 --flight-out f.jsonl --status-out s.json -j 2");
        assert_eq!(a.rest, vec!["5000".to_string()]);
        assert_eq!(a.sample_every, Some(250));
        assert_eq!(
            a.flight_out.as_deref(),
            Some(std::path::Path::new("f.jsonl"))
        );
        assert_eq!(
            a.status_out.as_deref(),
            Some(std::path::Path::new("s.json"))
        );
        let b = split("--sample-every=1000 --flight-out=r/f.jsonl --status-out=r/s.json");
        assert_eq!(b.sample_every, Some(1000));
        assert_eq!(
            b.flight_out.as_deref(),
            Some(std::path::Path::new("r/f.jsonl"))
        );
        assert_eq!(
            b.status_out.as_deref(),
            Some(std::path::Path::new("r/s.json"))
        );
        // Defaults and malformed intervals stay off.
        let c = split("100");
        assert_eq!(c.sample_every, None);
        assert!(c.flight_out.is_none() && c.status_out.is_none());
        assert_eq!(split("--sample-every often").sample_every, None);
    }

    #[test]
    fn extracts_incremental_solver_flags() {
        let a = split("2000 --incremental --solver-cache-budget 4096 --portfolio 3 --affinity");
        assert_eq!(a.rest, vec!["2000".to_string()]);
        assert!(a.incremental);
        assert_eq!(a.solver_cache_budget, Some(4096));
        assert_eq!(a.portfolio, Some(3));
        assert!(a.affinity);
        let b = split("--solver-cache-budget=1048576 --portfolio=2");
        assert!(!b.incremental && !b.affinity);
        assert_eq!(b.solver_cache_budget, Some(1_048_576));
        assert_eq!(b.portfolio, Some(2));
        // Malformed values fall back to unset.
        let c = split("--portfolio wide --solver-cache-budget big");
        assert_eq!(c.portfolio, None);
        assert_eq!(c.solver_cache_budget, None);
        let d = split("42");
        assert!(!d.incremental && !d.affinity);
        assert!(d.portfolio.is_none() && d.solver_cache_budget.is_none());
    }

    #[test]
    fn bad_level_falls_back() {
        let a = split("--log-level chatty 42");
        assert_eq!(a.log_level, Level::Info);
        assert_eq!(a.rest, vec!["42".to_string()]);
    }
}
