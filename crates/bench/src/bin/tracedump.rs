//! Renders a `--trace-out` JSONL campaign trace: validates every
//! record against the telemetry schema, then prints a per-phase time
//! table, the compiled-settle fast-path hit rate (when the trace has
//! `Metrics` records), the per-goal solver cost table with p50/p90/p99
//! per-call conflict quantiles (when the trace has `GoalSolveCost`
//! records from an introspected campaign), the bitblast-cache hit
//! rate and per-profile portfolio wins (when the trace has
//! `SolverCache` records from an incremental campaign) and the
//! coverage/stagnation/bug timeline.
//!
//! Usage: `tracedump <trace.jsonl> [--check] [--json]`
//!
//! With `--check` the trace is only validated (no rendering); with
//! `--json` the validated records are re-emitted as canonical JSONL
//! (machine-readable, schema-identical to the input). A schema or
//! syntax violation exits non-zero in every mode.

use std::process::ExitCode;
use symbfuzz_bench::trace::{
    goal_cost_table, parse_trace, phase_table, settle_mix_table, solver_cache_table, timeline,
    to_json_lines,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_only = args.iter().any(|a| a == "--check");
    let json_mode = args.iter().any(|a| a == "--json");
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: tracedump <trace.jsonl> [--check] [--json]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tracedump: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match parse_trace(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tracedump: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if records.is_empty() {
        // An empty (or whitespace-only) trace is evidence of a broken
        // producer — a campaign that wrote nothing, or a truncated
        // copy — never a healthy run, so `--check` must not bless it.
        eprintln!("tracedump: {path}: no records (empty or truncated trace)");
        return ExitCode::FAILURE;
    }
    if check_only {
        println!("{path}: {} records, schema OK", records.len());
        return ExitCode::SUCCESS;
    }
    if json_mode {
        print!("{}", to_json_lines(&records));
        return ExitCode::SUCCESS;
    }
    let tasks = records.iter().map(|r| r.task).max().map_or(0, |m| m + 1);
    println!(
        "# Trace `{path}` — {} records from {tasks} task(s)\n",
        records.len()
    );
    println!("## Phase breakdown\n");
    println!("{}", phase_table(&records));
    let mix = settle_mix_table(&records);
    if !mix.is_empty() {
        println!("## Compiled-settle fast path\n");
        println!("{mix}");
    }
    let costs = goal_cost_table(&records);
    if !costs.is_empty() {
        println!("## Per-goal solver cost\n");
        println!("{costs}");
    }
    let cache = solver_cache_table(&records);
    if !cache.is_empty() {
        println!("## Solver cache & portfolio\n");
        println!("{cache}");
    }
    println!("## Timeline\n");
    print!("{}", timeline(&records));
    ExitCode::SUCCESS
}
