//! Settle-engine A/B/C throughput: simulated cycles per second under
//! the global fixpoint, the levelized dirty-set sweep and the compiled
//! word-level VM, on every benchmark design. Emits
//! `results/BENCH_sim.json` with the full three-way table; earlier
//! row-sets found in that file are preserved under `history` so the
//! performance trajectory across revisions stays auditable.
//!
//! Usage: `simbench [cycles] [--settle-mode MODE] [--log-level LEVEL]`
//! (default 20000 cycles). With `--settle-mode` only the named engine
//! is timed — a quick profiling mode that prints cyc/s without
//! speedups and leaves `results/BENCH_sim.json` untouched.

use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use std::time::Instant;
use symbfuzz_bench::parse_bench_args;
use symbfuzz_bench::render::save_json;
use symbfuzz_designs::{bug_benchmarks, processor_benchmarks};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::Design;
use symbfuzz_sim::{Reentry, SettleMode, Simulator};

/// One design's three-way throughput measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimBenchRow {
    design: String,
    /// Cycles simulated per timed run.
    cycles: u64,
    /// Combinational processes in the schedule.
    comb_procs: u64,
    /// Cyclic schedule units (0 = pure single sweep).
    cyclic_units: u64,
    /// Processes the bytecode compiler lowered (vs interpreted).
    compiled_procs: u64,
    /// Steps/sec under the original global fixpoint.
    fixpoint_cps: f64,
    /// Steps/sec under the levelized dirty-set sweep.
    levelized_cps: f64,
    /// Steps/sec under the compiled word-level VM.
    compiled_cps: f64,
    /// levelized_cps / fixpoint_cps.
    speedup_levelized: f64,
    /// compiled_cps / levelized_cps.
    speedup_compiled: f64,
}

fn throughput(design: &Arc<Design>, mode: SettleMode, cycles: u64) -> f64 {
    let mut sim = Simulator::new(Arc::clone(design));
    sim.set_settle_mode(mode);
    sim.reenter(Reentry::FullReset { cycles: 2 });
    let width = design.fuzz_width().max(1);
    let mut state = 0xBEEFu64;
    // Warm up caches and settle into steady state.
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.apply_input_word(&LogicVec::from_u64(width.min(64), state));
        sim.step();
    }
    let start = Instant::now();
    for _ in 0..cycles {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.apply_input_word(&LogicVec::from_u64(width.min(64), state));
        sim.step();
    }
    cycles as f64 / start.elapsed().as_secs_f64()
}

/// Prior row-sets to carry forward: whatever `results/BENCH_sim.json`
/// currently holds — a bare row array from before the compiled kernel,
/// or a `{rows, history}` object from this format — flattened into a
/// single chronological list of row-sets.
fn load_history() -> Vec<Value> {
    let mut history = Vec::new();
    if let Ok(text) = std::fs::read_to_string("results/BENCH_sim.json") {
        if let Ok(v) = serde_json::from_str::<Value>(&text) {
            match v {
                Value::Array(_) => history.push(v),
                Value::Object(_) => {
                    if let Ok(Value::Array(h)) = v.field("history") {
                        history.extend(h.iter().cloned());
                    }
                    if let Ok(rows) = v.field("rows") {
                        history.push(rows.clone());
                    }
                }
                _ => {}
            }
        }
    }
    history
}

fn main() {
    let args = parse_bench_args();
    let cycles: u64 = args.pos(0, 20_000);
    let procs = processor_benchmarks();
    let bugs = bug_benchmarks();
    let designs: Vec<(String, Arc<Design>)> = procs
        .iter()
        .map(|b| (b.name.to_string(), b.design().expect("elaborates")))
        .chain(
            bugs.iter()
                .map(|b| (b.name.to_string(), b.design().expect("elaborates"))),
        )
        .collect();

    if let Some(policy) = args.settle_mode {
        // Single-engine profiling mode: no speedups, no JSON.
        println!(
            "# Simulator throughput — `{}` engine, {cycles} cycles per run\n",
            policy.name()
        );
        println!("| Design | cyc/s |");
        println!("|---|---|");
        for (name, design) in &designs {
            let cps = throughput(design, policy.to_mode(), cycles);
            println!("| {name} | {cps:.0} |");
        }
        return;
    }

    let mut rows = Vec::new();
    println!("# Simulator settle-engine A/B/C — {cycles} cycles per run\n");
    println!(
        "| Design | comb procs | compiled procs | fixpoint cyc/s | levelized cyc/s \
         | compiled cyc/s | lev/fix | cmp/lev |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for (name, design) in &designs {
        let sim = Simulator::new(Arc::clone(design));
        let sched = sim.schedule().clone();
        let compiled_procs = sim.compile_stats().compiled as u64;
        drop(sim);
        let fixpoint_cps = throughput(design, SettleMode::Fixpoint, cycles);
        let levelized_cps = throughput(design, SettleMode::Levelized, cycles);
        let compiled_cps = throughput(design, SettleMode::Compiled, cycles);
        let row = SimBenchRow {
            design: name.clone(),
            cycles,
            comb_procs: sched.comb_procs() as u64,
            cyclic_units: sched.cyclic_units as u64,
            compiled_procs,
            fixpoint_cps,
            levelized_cps,
            compiled_cps,
            speedup_levelized: levelized_cps / fixpoint_cps,
            speedup_compiled: compiled_cps / levelized_cps,
        };
        println!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.2}× | {:.2}× |",
            row.design,
            row.comb_procs,
            row.compiled_procs,
            row.fixpoint_cps,
            row.levelized_cps,
            row.compiled_cps,
            row.speedup_levelized,
            row.speedup_compiled
        );
        rows.push(row);
    }
    let geomean =
        (rows.iter().map(|r| r.speedup_compiled.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "\ngeomean compiled/levelized speedup: {geomean:.2}× across {} designs \
         (acceptance: ≥3× on ibex_like and cva6_like)",
        rows.len()
    );
    for want in ["ibex_like", "cva6_like"] {
        if let Some(r) = rows.iter().find(|r| r.design == want) {
            println!(
                "  {want}: {:.2}× compiled over levelized ({:.0} → {:.0} cyc/s)",
                r.speedup_compiled, r.levelized_cps, r.compiled_cps
            );
        }
    }
    let out = Value::Object(vec![
        ("rows".into(), rows.to_value()),
        (
            "geomean_compiled_over_levelized".into(),
            Value::Num(geomean),
        ),
        ("history".into(), Value::Array(load_history())),
    ]);
    save_json("BENCH_sim", &out).expect("write results/BENCH_sim.json");
}
