//! Scheduler A/B throughput: simulated cycles per second under the
//! levelized single sweep vs the original global fixpoint, on every
//! benchmark design. Emits `results/BENCH_sim.json`.
//! Usage: `simbench [cycles] [--log-level LEVEL]` (default 20000).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use symbfuzz_bench::parse_bench_args;
use symbfuzz_bench::render::save_json;
use symbfuzz_designs::{bug_benchmarks, processor_benchmarks};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::Design;
use symbfuzz_sim::{SettleMode, Simulator};

/// One design's before/after throughput measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimBenchRow {
    design: String,
    /// Cycles simulated per timed run.
    cycles: u64,
    /// Combinational processes in the schedule.
    comb_procs: u64,
    /// Cyclic schedule units (0 = pure single sweep).
    cyclic_units: u64,
    /// Steps/sec under the original global fixpoint.
    fixpoint_cps: f64,
    /// Steps/sec under the levelized dirty-set sweep.
    levelized_cps: f64,
    /// levelized_cps / fixpoint_cps.
    speedup: f64,
}

fn throughput(design: &Arc<Design>, mode: SettleMode, cycles: u64) -> f64 {
    let mut sim = Simulator::new(Arc::clone(design));
    sim.set_settle_mode(mode);
    sim.reset(2);
    let width = design.fuzz_width().max(1);
    let mut state = 0xBEEFu64;
    // Warm up caches and settle into steady state.
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.apply_input_word(&LogicVec::from_u64(width.min(64), state));
        sim.step();
    }
    let start = Instant::now();
    for _ in 0..cycles {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.apply_input_word(&LogicVec::from_u64(width.min(64), state));
        sim.step();
    }
    cycles as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let cycles: u64 = parse_bench_args().pos(0, 20_000);
    let mut rows = Vec::new();
    let procs = processor_benchmarks();
    let bugs = bug_benchmarks();
    let designs: Vec<(String, Arc<Design>)> = procs
        .iter()
        .map(|b| (b.name.to_string(), b.design().expect("elaborates")))
        .chain(
            bugs.iter()
                .map(|b| (b.name.to_string(), b.design().expect("elaborates"))),
        )
        .collect();
    println!("# Simulator scheduling A/B — {cycles} cycles per run\n");
    println!("| Design | comb procs | cyclic units | fixpoint cyc/s | levelized cyc/s | speedup |");
    println!("|---|---|---|---|---|---|");
    for (name, design) in &designs {
        let sched = Simulator::new(Arc::clone(design)).schedule().clone();
        let fixpoint_cps = throughput(design, SettleMode::Fixpoint, cycles);
        let levelized_cps = throughput(design, SettleMode::Levelized, cycles);
        let row = SimBenchRow {
            design: name.clone(),
            cycles,
            comb_procs: sched.comb_procs() as u64,
            cyclic_units: sched.cyclic_units as u64,
            fixpoint_cps,
            levelized_cps,
            speedup: levelized_cps / fixpoint_cps,
        };
        println!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.2}× |",
            row.design,
            row.comb_procs,
            row.cyclic_units,
            row.fixpoint_cps,
            row.levelized_cps,
            row.speedup
        );
        rows.push(row);
    }
    let best = rows
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("at least one design");
    println!(
        "\nbest speedup: {:.2}× on `{}` (acceptance: ≥2× on at least one processor design)",
        best.speedup, best.design
    );
    save_json("BENCH_sim", &rows).expect("write results/BENCH_sim.json");
}
