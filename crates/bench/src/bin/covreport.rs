//! Generates the coverage-provenance report: runs all five strategies
//! on one processor benchmark, writes each campaign's covmap artifact,
//! the joined report JSON and a self-contained HTML page under
//! `results/`, and prints the Markdown summary. All artifacts are
//! byte-identical at any `--jobs` count.
//!
//! Usage:
//!
//! * `covreport [budget] [bench_index] [--jobs N] [--trace PATH]
//!   [--log-level LEVEL] [--trace-out PATH]` — generate. `--trace`
//!   joins an existing JSONL campaign trace (schema-checked) into the
//!   report's cross-check section; `--trace-out` records this run.
//! * `covreport --check FILE...` — validate existing report / covmap
//!   JSON artifacts against their schemas; exits non-zero on the first
//!   violation.

use std::process::ExitCode;
use symbfuzz_bench::covreport::{
    build_report, render_html, render_markdown, trace_mechanism_counts, validate_covmap,
    validate_report,
};
use symbfuzz_bench::experiments::resource_profile;
use symbfuzz_bench::render::save_json;
use symbfuzz_bench::trace::parse_trace;
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_designs::processor_benchmarks;
use symbfuzz_telemetry::info;

fn check_files(paths: &[String]) -> ExitCode {
    let mut ok = true;
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("covreport: cannot read {p}: {e}");
                ok = false;
                continue;
            }
        };
        // Reports carry a `strategies` list; covmaps a `fuzzer` stamp.
        let res = if text.contains("\"strategies\"") {
            validate_report(&text).map(|_| "report")
        } else {
            validate_covmap(&text).map(|_| "covmap")
        };
        match res {
            Ok(kind) => println!("{p}: {kind} schema OK"),
            Err(e) => {
                eprintln!("covreport: {p}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_bench_args();
    let mut trace_path: Option<String> = None;
    let mut check = false;
    let mut positional = Vec::new();
    let mut it = args.rest.iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check = true;
        } else if a == "--trace" {
            trace_path = it.next().cloned();
        } else if let Some(v) = a.strip_prefix("--trace=") {
            trace_path = Some(v.to_string());
        } else {
            positional.push(a.clone());
        }
    }
    if check {
        return check_files(&positional);
    }
    let budget: u64 = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(5_000);
    let bench: usize = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(0);
    let benches = processor_benchmarks();
    let Some(name) = benches.get(bench).map(|b| b.name) else {
        eprintln!(
            "covreport: bench_index {bench} out of range (0..{})",
            benches.len()
        );
        return ExitCode::FAILURE;
    };
    let results = resource_profile(bench, budget, args.jobs);
    let mut report = build_report(name, budget, &results);
    if let Some(path) = trace_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("covreport: cannot read trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_trace(&text) {
            Ok(records) => report.trace = trace_mechanism_counts(&records),
            Err(e) => {
                eprintln!("covreport: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for (strategy, r) in &results {
        let slug: String = strategy
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        save_json(&format!("covmap_{name}_{slug}"), &r.covmap).expect("write covmap JSON");
    }
    save_json(&format!("covreport_{name}"), &report).expect("write report JSON");
    std::fs::write(
        format!("results/covreport_{name}.html"),
        render_html(&report),
    )
    .expect("write report HTML");
    println!("{}", render_markdown(&report));
    info!(
        "wrote results/covreport_{name}.json, results/covreport_{name}.html and {} covmaps",
        results.len()
    );
    flush_trace();
    ExitCode::SUCCESS
}
