//! Regenerates Table 1: bugs detected by SymbFuzz and the input
//! vectors needed. Usage: `table1 [budget] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH]` (default 50000).

use symbfuzz_bench::experiments::table1_rows;
use symbfuzz_bench::render::{render_table1, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 50_000);
    let rows = table1_rows(budget, args.jobs);
    println!(
        "# Table 1 — detected bugs (budget {budget} vectors, {} jobs)\n",
        args.jobs
    );
    println!("{}", render_table1(&rows));
    let found = rows.iter().filter(|r| r.measured_vectors.is_some()).count();
    println!("detected {found}/14 (paper: 14/14 at much larger budgets)");
    save_json("table1", &rows).expect("write results/table1.json");
    flush_trace();
}
