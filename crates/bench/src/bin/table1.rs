//! Regenerates Table 1: bugs detected by SymbFuzz and the input
//! vectors needed. Usage: `table1 [budget] [--jobs N]` (default 50000).

use symbfuzz_bench::experiments::table1_rows;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_table1, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let budget: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let rows = table1_rows(budget, jobs);
    println!("# Table 1 — detected bugs (budget {budget} vectors, {jobs} jobs)\n");
    println!("{}", render_table1(&rows));
    let found = rows.iter().filter(|r| r.measured_vectors.is_some()).count();
    println!("detected {found}/14 (paper: 14/14 at much larger budgets)");
    save_json("table1", &rows).expect("write results/table1.json");
}
