//! Generates the solver-introspection report: runs introspected
//! SymbFuzz campaigns on the solver-hostile factoring lock and the
//! processor control, writes the joined report JSON and a
//! self-contained HTML page under `results/`, and prints the Markdown
//! summary. All artifacts are byte-identical at any `--jobs` count.
//!
//! Usage:
//!
//! * `solverscope [max_vectors] [solver_budget] [--jobs N]
//!   [--log-level LEVEL]` — generate `results/solverscope.json` and
//!   `results/solverscope.html`.
//! * `solverscope --check FILE...` — validate existing scope-report
//!   JSON artifacts against the schema; exits non-zero on the first
//!   violation.
//! * `solverscope --check-bench DIR` — schema-check every
//!   `BENCH_*.json` under `DIR` (throughput rows, finite ratios);
//!   exits non-zero on the first violation.

use std::process::ExitCode;
use symbfuzz_bench::render::save_json;
use symbfuzz_bench::solverscope::{
    build_scope_report, render_scope_html, render_scope_markdown, validate_bench_artifact,
    validate_scope_report,
};
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_telemetry::info;

fn check_files(paths: &[String]) -> ExitCode {
    let mut ok = true;
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("solverscope: cannot read {p}: {e}");
                ok = false;
                continue;
            }
        };
        match validate_scope_report(&text) {
            Ok(r) => println!("{p}: scope report schema OK ({} designs)", r.designs.len()),
            Err(e) => {
                eprintln!("solverscope: {p}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn check_bench_dir(dir: &str) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("solverscope: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        eprintln!("solverscope: no BENCH_*.json under {dir}");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for name in &names {
        let path = format!("{dir}/{name}");
        let stem = name.trim_end_matches(".json");
        let res = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| validate_bench_artifact(stem, &text));
        match res {
            Ok(()) => println!("{path}: schema OK"),
            Err(e) => {
                eprintln!("solverscope: {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_bench_args();
    let mut check = false;
    let mut check_bench: Option<String> = None;
    let mut positional = Vec::new();
    let mut it = args.rest.iter();
    while let Some(a) = it.next() {
        if a == "--check" {
            check = true;
        } else if a == "--check-bench" {
            check_bench = it.next().cloned();
        } else if let Some(v) = a.strip_prefix("--check-bench=") {
            check_bench = Some(v.to_string());
        } else {
            positional.push(a.clone());
        }
    }
    if let Some(dir) = check_bench {
        return check_bench_dir(&dir);
    }
    if check {
        return check_files(&positional);
    }
    let max_vectors: u64 = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000);
    let solver_budget: u64 = positional
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let report = build_scope_report(max_vectors, solver_budget, args.jobs);
    save_json("solverscope", &report).expect("write results/solverscope.json");
    std::fs::write("results/solverscope.html", render_scope_html(&report))
        .expect("write results/solverscope.html");
    println!("{}", render_scope_markdown(&report));
    info!("wrote results/solverscope.json and results/solverscope.html");
    flush_trace();
    ExitCode::SUCCESS
}
