//! Coverage vs per-solve conflict budget on the factoring lock, plus
//! the incremental-solver A/B on the goal-dense fabric
//! (`EXPERIMENTS.md`, "Coverage vs solver budget" and "Incremental
//! solver A/B").
//!
//! Usage: `budgetbench [max_vectors] [budget...] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH] [--incremental]
//! [--solver-cache-budget N] [--portfolio N] [--affinity]` — default
//! 1 000 vectors at 500 / 2 000 / 10 000 conflicts. `budgetbench
//! --smoke` runs one tiny ceiling (CI: proves a budget-exhausted
//! campaign terminates cleanly and the A/B artifact stays
//! schema-valid).

use symbfuzz_bench::experiments::{budget_profile, solvercache_profile};
use symbfuzz_bench::render::{render_budget_profile, render_solvercache_profile, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    if args.rest.iter().any(|a| a == "--smoke") {
        let rows = budget_profile(&[500], 300, args.jobs);
        println!("{}", render_budget_profile(&rows));
        assert!(
            rows.iter()
                .any(|r| r.design == "hard_factor" && r.budget_exhaustions >= 1),
            "smoke run never exhausted its solver budget: {rows:?}"
        );
        let ab = solvercache_profile(300, 20_000, args.jobs);
        println!("{}", render_solvercache_profile(&ab));
        save_json("BENCH_solvercache", &ab).expect("write results/BENCH_solvercache.json");
        println!("budget smoke OK: campaign degraded gracefully and terminated");
        return;
    }
    let max_vectors: u64 = args.pos(0, 1_000);
    let budgets: Vec<u64> = if args.rest.len() > 1 {
        args.rest[1..]
            .iter()
            .filter_map(|a| a.parse().ok())
            .collect()
    } else {
        vec![500, 2_000, 10_000]
    };
    let rows = budget_profile(&budgets, max_vectors, args.jobs);
    println!("# Coverage vs solver budget ({max_vectors} vectors)\n");
    println!("{}", render_budget_profile(&rows));
    save_json("BENCH_budget", &rows).expect("write results/BENCH_budget.json");
    let ceiling = budgets.iter().copied().max().unwrap_or(10_000);
    let ab = solvercache_profile(max_vectors, ceiling, args.jobs);
    println!("# Incremental solver A/B (conflict ceiling {ceiling})\n");
    println!("{}", render_solvercache_profile(&ab));
    save_json("BENCH_solvercache", &ab).expect("write results/BENCH_solvercache.json");
    flush_trace();
}
