//! Regenerates the §5.3 convergence comparison (the paper's 6.8×
//! speed-up of SymbFuzz over UVM random testing).
//! Usage: `speedup [budget] [bench_index] [--jobs N]`.

use symbfuzz_bench::experiments::speedup;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_speedup, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let mut args = args.into_iter();
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let bench: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let s = speedup(bench, budget, jobs);
    println!("# §5.3 — time-to-coverage speed-up\n");
    println!("{}", render_speedup(&s));
    save_json("speedup", &s).expect("write results/speedup.json");
}
