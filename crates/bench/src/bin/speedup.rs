//! Regenerates the §5.3 convergence comparison (the paper's 6.8×
//! speed-up of SymbFuzz over UVM random testing).
//! Usage: `speedup [budget] [bench_index] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH]`.

use symbfuzz_bench::experiments::speedup;
use symbfuzz_bench::render::{render_speedup, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 40_000);
    let bench: usize = args.pos(1, 0);
    let s = speedup(bench, budget, args.jobs);
    println!("# §5.3 — time-to-coverage speed-up\n");
    println!("{}", render_speedup(&s));
    save_json("speedup", &s).expect("write results/speedup.json");
    flush_trace();
}
