//! Regenerates Figure 4b: coverage variance across repeated runs in the
//! mid-campaign window. Usage: `fig4b [budget] [runs] [bench_index]
//! [--jobs N] [--log-level LEVEL] [--trace-out PATH]`.

use symbfuzz_bench::experiments::variance_profile;
use symbfuzz_bench::render::{render_fig4b_csv, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 10_000);
    let runs: u64 = args.pos(1, 4);
    let bench: usize = args.pos(2, 0);
    let pts = variance_profile(bench, budget, runs, args.jobs);
    println!("# Figure 4b — coverage variance over {runs} runs\n");
    print!("{}", render_fig4b_csv(&pts));
    save_json("fig4b", &pts).expect("write results/fig4b.json");
    flush_trace();
}
