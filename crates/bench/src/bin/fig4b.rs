//! Regenerates Figure 4b: coverage variance across repeated runs in the
//! mid-campaign window. Usage: `fig4b [budget] [runs] [bench_index] [--jobs N]`.

use symbfuzz_bench::experiments::variance_profile;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_fig4b_csv, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let mut args = args.into_iter();
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let runs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let bench: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let pts = variance_profile(bench, budget, runs, jobs);
    println!("# Figure 4b — coverage variance over {runs} runs\n");
    print!("{}", render_fig4b_csv(&pts));
    save_json("fig4b", &pts).expect("write results/fig4b.json");
}
