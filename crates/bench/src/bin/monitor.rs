//! Live campaign monitor over the flight-recorder artifacts.
//!
//! Reads the `status.json` heartbeat (atomically rewritten by the
//! campaign, so polling mid-run is always safe) and the `flight.jsonl`
//! sample stream, and renders a terminal dashboard: campaign headline,
//! counters, phase self-times, the hottest simulation cones and the
//! hardest solver goals.
//!
//! Usage: `monitor [--status PATH] [--flight PATH] [--once] [--json]
//! [--check] [--prom-out PATH] [--interval-ms N] [--top K]`
//!
//! * default paths: `results/status.json`, `results/flight.jsonl`;
//! * `--once` — render one snapshot and exit (default: poll forever
//!   every `--interval-ms`, default 1000);
//! * `--json` — with `--once`, emit the validated status heartbeat
//!   plus a flight-stream summary as one JSON object;
//! * `--check` — validate both artifacts against the flight schema and
//!   exit; any violation (including an empty or truncated stream)
//!   exits non-zero naming the first bad line;
//! * `--prom-out PATH` — additionally write a Prometheus-style text
//!   exposition of the heartbeat each refresh;
//! * `--top K` — rows in the hot-cone / hardest-goal tables (default
//!   10).

use serde::Value;
use std::path::PathBuf;
use std::process::ExitCode;
use symbfuzz_bench::monitor::{check_flight, check_status, render_dashboard, render_prometheus};

struct MonitorArgs {
    status: PathBuf,
    flight: PathBuf,
    once: bool,
    json: bool,
    check: bool,
    prom_out: Option<PathBuf>,
    interval_ms: u64,
    top: usize,
}

fn parse_args() -> Option<MonitorArgs> {
    let mut out = MonitorArgs {
        status: PathBuf::from("results/status.json"),
        flight: PathBuf::from("results/flight.jsonl"),
        once: false,
        json: false,
        check: false,
        prom_out: None,
        interval_ms: 1000,
        top: 10,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        let mut value = |inline: Option<&str>| -> Option<String> {
            inline.map(String::from).or_else(|| args.next())
        };
        if a == "--once" {
            out.once = true;
        } else if a == "--json" {
            out.json = true;
        } else if a == "--check" {
            out.check = true;
        } else if a == "--status" || a.starts_with("--status=") {
            out.status = PathBuf::from(value(a.strip_prefix("--status="))?);
        } else if a == "--flight" || a.starts_with("--flight=") {
            out.flight = PathBuf::from(value(a.strip_prefix("--flight="))?);
        } else if a == "--prom-out" || a.starts_with("--prom-out=") {
            out.prom_out = Some(PathBuf::from(value(a.strip_prefix("--prom-out="))?));
        } else if a == "--interval-ms" || a.starts_with("--interval-ms=") {
            out.interval_ms = value(a.strip_prefix("--interval-ms="))?.parse().ok()?;
        } else if a == "--top" || a.starts_with("--top=") {
            out.top = value(a.strip_prefix("--top="))?.parse().ok()?;
        } else {
            return None;
        }
    }
    Some(out)
}

fn read_artifacts(args: &MonitorArgs) -> Result<(Value, Vec<Value>), String> {
    let status_text = std::fs::read_to_string(&args.status)
        .map_err(|e| format!("{}: {e}", args.status.display()))?;
    let status =
        check_status(&status_text).map_err(|e| format!("{}: {e}", args.status.display()))?;
    let flight_text = std::fs::read_to_string(&args.flight)
        .map_err(|e| format!("{}: {e}", args.flight.display()))?;
    let flight =
        check_flight(&flight_text).map_err(|e| format!("{}: {e}", args.flight.display()))?;
    Ok((status, flight))
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!(
            "usage: monitor [--status PATH] [--flight PATH] [--once] [--json] [--check] \
             [--prom-out PATH] [--interval-ms N] [--top K]"
        );
        return ExitCode::FAILURE;
    };
    if args.check {
        return match read_artifacts(&args) {
            Ok((_, flight)) => {
                println!(
                    "{}: schema OK; {}: {} samples, schema OK",
                    args.status.display(),
                    args.flight.display(),
                    flight.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("monitor: {e}");
                ExitCode::FAILURE
            }
        };
    }
    loop {
        match read_artifacts(&args) {
            Ok((status, flight)) => {
                if let Some(path) = &args.prom_out {
                    if let Err(e) = std::fs::write(path, render_prometheus(&status)) {
                        eprintln!("monitor: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
                if args.json {
                    let last = flight.last().cloned().unwrap_or(Value::Null);
                    let summary = Value::Object(vec![
                        ("status".into(), status),
                        (
                            "flight".into(),
                            Value::Object(vec![
                                ("samples".into(), Value::Num(flight.len() as f64)),
                                ("last".into(), last),
                            ]),
                        ),
                    ]);
                    println!("{}", serde_json::to_string(&summary).expect("serializable"));
                } else {
                    if !args.once {
                        // Clear the terminal between refreshes.
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", render_dashboard(&status, &flight, args.top));
                }
            }
            Err(e) => {
                if args.once {
                    eprintln!("monitor: {e}");
                    return ExitCode::FAILURE;
                }
                // Mid-run the artifacts may not exist yet; keep polling.
                println!("monitor: waiting — {e}");
            }
        }
        if args.once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms.max(50)));
    }
}
