//! Regenerates the §5.2 resource-profile comparison, the merged
//! campaign telemetry, and the flight-recorder overhead benchmark
//! (`results/BENCH_telemetry.json`).
//!
//! Usage: `resources [budget] [bench_index] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH] [--sample-every N]
//! [--flight-out PATH] [--status-out PATH]`.
//!
//! The overhead benchmark runs the same SymbFuzz campaign per
//! processor benchmark twice under the compiled settle engine —
//! recorder off, then recorder on — and reports vectors/sec for each
//! plus the on/off throughput ratio (acceptance: geomean ≥ 0.95, i.e.
//! ≤ 5 % overhead). A second A/B pass measures solver introspection
//! the same way (off vs `solver_introspection(true)`, same acceptance
//! bar) and lands as `introspection_rows` /
//! `geomean_introspection_ratio`. Earlier contents of
//! `BENCH_telemetry.json` are preserved under the `history` key. With
//! `--sample-every` the resource-profile campaigns also record flight
//! samples, merged after the pool into the canonical `--flight-out` /
//! `--status-out` artifacts (byte-identical at any `--jobs`).

use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use std::time::Instant;
use symbfuzz_bench::experiments::{resource_profile, settle_policy};
use symbfuzz_bench::pool::merge_telemetry;
use symbfuzz_bench::render::{render_resources, save_json, write_flight_artifacts};
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;
use symbfuzz_telemetry::info;

/// One design's recorder-off vs recorder-on throughput measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SamplingRow {
    design: String,
    /// Input vectors per timed campaign.
    budget: u64,
    /// Recorder interval of the sampled run (vectors).
    sample_every: u64,
    /// Vectors/sec with the flight recorder off.
    vectors_per_sec_off: f64,
    /// Vectors/sec with the recorder + profilers on.
    vectors_per_sec_on: f64,
    /// on / off — 1.0 means free, ≥ 0.95 is the acceptance bar.
    ratio: f64,
    /// Samples the recorder captured in the timed run.
    flight_samples: u64,
}

/// Wall-clock vectors/sec of one campaign; `sample_every` arms the
/// recorder and both profilers, `introspect` arms the solver-scope
/// tracing. Always the compiled settle engine (unless `--settle-mode`
/// overrode it) so each A/B isolates one instrument, not engine
/// choice.
fn throughput(
    bench_index: usize,
    budget: u64,
    sample_every: Option<u64>,
    introspect: bool,
) -> (f64, u64) {
    let b = &processor_benchmarks()[bench_index];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let mut cfg = FuzzConfig::builder()
        .interval(100)
        .threshold(2)
        .max_vectors(budget)
        .seed(0xCAB)
        .settle_policy(settle_policy());
    if let Some(every) = sample_every {
        cfg = cfg.sample_every(every);
    }
    if introspect {
        cfg = cfg.solver_introspection(true);
    }
    let config = cfg.build().expect("overhead config is consistent");
    let mut fuzzer = SymbFuzz::new(Arc::clone(&design), Strategy::SymbFuzz, config, &props)
        .expect("properties compile");
    let start = Instant::now();
    let result = fuzzer.run();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (result.vectors as f64 / secs, result.flight.len() as u64)
}

/// Prior contents of `results/BENCH_telemetry.json`, flattened into a
/// chronological list: a legacy bare telemetry block, or the `rows` +
/// `geomean` head of this format, with any nested history carried
/// forward (same pattern as `simbench`).
fn load_history() -> Vec<Value> {
    let mut history = Vec::new();
    if let Ok(text) = std::fs::read_to_string("results/BENCH_telemetry.json") {
        if let Ok(v) = serde_json::from_str::<Value>(&text) {
            if let Ok(Value::Array(h)) = v.field("history") {
                history.extend(h.iter().cloned());
            }
            match v {
                Value::Object(fields) => {
                    let head: Vec<(String, Value)> =
                        fields.into_iter().filter(|(k, _)| k != "history").collect();
                    if !head.is_empty() {
                        history.push(Value::Object(head));
                    }
                }
                other => history.push(other),
            }
        }
    }
    history
}

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 20_000);
    let bench: usize = args.pos(1, 0);
    let rows = resource_profile(bench, budget, args.jobs);
    println!("# §5.2 — resource profile\n");
    println!("{}", render_resources(&rows));
    let merged = merge_telemetry(rows.iter().map(|(_, r)| &r.telemetry));
    let snap = merged.to_snapshot();
    info!(
        "telemetry: {} vectors, {} solver calls, {} event kinds observed",
        snap.counter("vectors"),
        snap.counter("solver_calls"),
        snap.distinct_event_kinds()
    );
    save_json("resources", &rows).expect("write results/resources.json");

    // Canonical merged flight artifacts for this run's campaigns
    // (no-op when `--sample-every` was not given, so nothing sampled).
    let results: Vec<_> = rows.iter().map(|(_, r)| r).collect();
    write_flight_artifacts(
        &results,
        args.flight_out.as_deref(),
        args.status_out.as_deref(),
    )
    .expect("write flight artifacts");

    // Recorder overhead A/B: same campaign, recorder off vs on.
    let every = args.sample_every.unwrap_or(100);
    let mut sampling_rows = Vec::new();
    println!("## Flight-recorder overhead ({budget} vectors per campaign)\n");
    println!("| Design | off vec/s | on vec/s | ratio | samples |");
    println!("|---|---|---|---|---|");
    for (i, b) in processor_benchmarks().iter().enumerate() {
        let (off, _) = throughput(i, budget, None, false);
        let (on, samples) = throughput(i, budget, Some(every), false);
        let row = SamplingRow {
            design: b.name.to_string(),
            budget,
            sample_every: every,
            vectors_per_sec_off: off,
            vectors_per_sec_on: on,
            ratio: on / off,
            flight_samples: samples,
        };
        println!(
            "| {} | {:.0} | {:.0} | {:.3} | {} |",
            row.design, off, on, row.ratio, samples
        );
        sampling_rows.push(row);
    }
    let geomean = (sampling_rows.iter().map(|r| r.ratio.ln()).sum::<f64>()
        / sampling_rows.len() as f64)
        .exp();
    println!(
        "\ngeomean on/off throughput ratio: {geomean:.3} across {} designs \
         (acceptance: ≥ 0.95, i.e. ≤ 5% recorder overhead)",
        sampling_rows.len()
    );

    // Solver-introspection overhead A/B: same campaign, introspection
    // off vs on (recorder off in both arms, so only the solver scope
    // is measured).
    let mut introspection_rows = Vec::new();
    println!("\n## Solver-introspection overhead ({budget} vectors per campaign)\n");
    println!("| Design | off vec/s | on vec/s | ratio |");
    println!("|---|---|---|---|");
    for (i, b) in processor_benchmarks().iter().enumerate() {
        let (off, _) = throughput(i, budget, None, false);
        let (on, _) = throughput(i, budget, None, true);
        let row = SamplingRow {
            design: b.name.to_string(),
            budget,
            sample_every: 0,
            vectors_per_sec_off: off,
            vectors_per_sec_on: on,
            ratio: on / off,
            flight_samples: 0,
        };
        println!(
            "| {} | {:.0} | {:.0} | {:.3} |",
            row.design, off, on, row.ratio
        );
        introspection_rows.push(row);
    }
    let geomean_introspection = (introspection_rows.iter().map(|r| r.ratio.ln()).sum::<f64>()
        / introspection_rows.len() as f64)
        .exp();
    println!(
        "\ngeomean on/off throughput ratio: {geomean_introspection:.3} across {} designs \
         (introspection is opt-in; the on-arm pays for per-failure core extraction)",
        introspection_rows.len()
    );

    // Zero-cost-when-off check: this build's introspection-off
    // throughput against the newest recorded rows (acceptance: geomean
    // ≥ 0.95, i.e. the dormant instrumentation costs nothing).
    let history = load_history();
    let off_vs_history = history.iter().rev().find_map(|h| {
        let Ok(Value::Array(rows)) = h.field("rows") else {
            return None;
        };
        let ratios: Vec<f64> = introspection_rows
            .iter()
            .filter_map(|r| {
                rows.iter().find_map(|row| {
                    match (row.field("design"), row.field("vectors_per_sec_off")) {
                        (Ok(Value::Str(d)), Ok(Value::Num(v))) if *d == r.design && *v > 0.0 => {
                            Some((r.vectors_per_sec_off / *v).ln())
                        }
                        _ => None,
                    }
                })
            })
            .collect();
        if ratios.is_empty() {
            None
        } else {
            Some((ratios.iter().sum::<f64>() / ratios.len() as f64).exp())
        }
    });
    match off_vs_history {
        Some(r) => println!(
            "\ngeomean introspection-off vs recorded baseline: {r:.3} \
             (acceptance: ≥ 0.95, i.e. no cost when off)"
        ),
        None => println!("\nno recorded baseline rows to compare the off-arm against"),
    }
    let out = Value::Object(vec![
        ("rows".into(), sampling_rows.to_value()),
        ("geomean_sampling_ratio".into(), Value::Num(geomean)),
        ("introspection_rows".into(), introspection_rows.to_value()),
        (
            "geomean_introspection_ratio".into(),
            Value::Num(geomean_introspection),
        ),
        (
            "geomean_introspection_off_vs_history".into(),
            off_vs_history.map_or(Value::Null, Value::Num),
        ),
        ("telemetry".into(), merged.to_value()),
        ("history".into(), Value::Array(history)),
    ]);
    save_json("BENCH_telemetry", &out).expect("write results/BENCH_telemetry.json");
    flush_trace();
}
