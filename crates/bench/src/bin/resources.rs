//! Regenerates the §5.2 resource-profile comparison, plus the merged
//! campaign telemetry block (`results/BENCH_telemetry.json`).
//! Usage: `resources [budget] [bench_index] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH]`.

use symbfuzz_bench::experiments::resource_profile;
use symbfuzz_bench::pool::merge_telemetry;
use symbfuzz_bench::render::{render_resources, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_telemetry::info;

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 20_000);
    let bench: usize = args.pos(1, 0);
    let rows = resource_profile(bench, budget, args.jobs);
    println!("# §5.2 — resource profile\n");
    println!("{}", render_resources(&rows));
    let merged = merge_telemetry(rows.iter().map(|(_, r)| &r.telemetry));
    let snap = merged.to_snapshot();
    info!(
        "telemetry: {} vectors, {} solver calls, {} event kinds observed",
        snap.counter("vectors"),
        snap.counter("solver_calls"),
        snap.distinct_event_kinds()
    );
    save_json("resources", &rows).expect("write results/resources.json");
    save_json("BENCH_telemetry", &merged).expect("write results/BENCH_telemetry.json");
    flush_trace();
}
