//! Regenerates the §5.2 resource-profile comparison.
//! Usage: `resources [budget] [bench_index] [--jobs N]`.

use symbfuzz_bench::experiments::resource_profile;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_resources, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let mut args = args.into_iter();
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let bench: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let rows = resource_profile(bench, budget, jobs);
    println!("# §5.2 — resource profile\n");
    println!("{}", render_resources(&rows));
    save_json("resources", &rows).expect("write results/resources.json");
}
