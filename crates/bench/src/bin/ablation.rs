//! Ablation study for the §5.5.1 design choices:
//!
//! * full SymbFuzz (checkpoints + SMT guidance);
//! * no checkpoints — guidance solves from reset only;
//! * shallow solving — one-cycle dependency equations only;
//! * no solver — coverage-guided random (feedback without guidance).
//!
//! Usage: `ablation [budget] [bench_index] [--jobs N]` (defaults 30000, 0).

use std::sync::Arc;
use symbfuzz_bench::pool::{parse_jobs, run_pool};
use symbfuzz_bench::render::save_json;
use symbfuzz_core::{CampaignResult, FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;

fn main() {
    let (args, jobs) = parse_jobs();
    let mut args = args.into_iter();
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let bench: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let b = &processor_benchmarks()[bench];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();

    let base = FuzzConfig {
        interval: 100,
        threshold: 2,
        max_vectors: budget,
        seed: 0xAB1A7E,
        ..FuzzConfig::default()
    };
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full SymbFuzz", base.clone()),
        (
            "no checkpoints",
            FuzzConfig {
                use_checkpoints: false,
                ..base.clone()
            },
        ),
        (
            "shallow solver (depth 1)",
            FuzzConfig {
                solve_depth: 1,
                ..base.clone()
            },
        ),
        (
            "no solver",
            FuzzConfig {
                use_solver: false,
                ..base.clone()
            },
        ),
    ];

    let results: Vec<(String, CampaignResult)> = run_pool(&variants, jobs, |_, (name, cfg)| {
        let mut fuzzer =
            SymbFuzz::new(Arc::clone(&design), Strategy::SymbFuzz, cfg.clone(), &props)
                .expect("properties compile");
        (name.to_string(), fuzzer.run())
    });

    println!("# Ablation on `{}` — {budget} vectors each\n", b.name);
    println!("| Variant | nodes | edges | coverage points | solver calls | rollbacks |");
    println!("|---|---|---|---|---|---|");
    for (name, r) in &results {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            name,
            r.nodes,
            r.edges,
            r.coverage_points,
            r.resources.solver_calls,
            r.resources.rollbacks
        );
    }
    save_json("ablation", &results).expect("write results/ablation.json");
}
