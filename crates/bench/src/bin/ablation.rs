//! Ablation study for the §5.5.1 design choices:
//!
//! * full SymbFuzz (checkpoints + SMT guidance);
//! * no checkpoints — guidance solves from reset only;
//! * shallow solving — one-cycle dependency equations only;
//! * no solver — coverage-guided random (feedback without guidance).
//!
//! Usage: `ablation [budget] [bench_index] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH]` (defaults 30000, 0).

use std::sync::Arc;
use symbfuzz_bench::experiments::attach_telemetry;
use symbfuzz_bench::pool::run_pool;
use symbfuzz_bench::render::save_json;
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_core::{CampaignResult, FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 30_000);
    let bench: usize = args.pos(1, 0);
    let b = &processor_benchmarks()[bench];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();

    let base = FuzzConfig {
        interval: 100,
        threshold: 2,
        max_vectors: budget,
        seed: 0xAB1A7E,
        ..FuzzConfig::default()
    };
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full SymbFuzz", base.clone()),
        (
            "no checkpoints",
            FuzzConfig {
                use_checkpoints: false,
                ..base.clone()
            },
        ),
        (
            "shallow solver (depth 1)",
            FuzzConfig {
                solve_depth: 1,
                ..base.clone()
            },
        ),
        (
            "no solver",
            FuzzConfig {
                use_solver: false,
                ..base.clone()
            },
        ),
    ];

    let results: Vec<(String, CampaignResult)> =
        run_pool(&variants, args.jobs, |task, (name, cfg)| {
            let mut fuzzer =
                SymbFuzz::new(Arc::clone(&design), Strategy::SymbFuzz, cfg.clone(), &props)
                    .expect("properties compile");
            attach_telemetry(&mut fuzzer, task);
            (name.to_string(), fuzzer.run())
        });

    println!("# Ablation on `{}` — {budget} vectors each\n", b.name);
    println!("| Variant | nodes | edges | coverage points | solver calls | rollbacks |");
    println!("|---|---|---|---|---|---|");
    for (name, r) in &results {
        println!(
            "| {} | {} | {} | {} | {} | {} |",
            name,
            r.nodes,
            r.edges,
            r.coverage_points,
            r.resources.solver_calls,
            r.resources.rollbacks
        );
    }
    save_json("ablation", &results).expect("write results/ablation.json");
    flush_trace();
}
