//! Regenerates Figure 4a: coverage vs input vectors for all five
//! strategies. Usage: `fig4a [budget] [bench_index] [--jobs N]
//! [--log-level LEVEL] [--trace-out PATH]` (defaults 40000, 0).

use symbfuzz_bench::experiments::coverage_race;
use symbfuzz_bench::render::{render_fig4a_csv, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};
use symbfuzz_telemetry::info;

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 40_000);
    let bench: usize = args.pos(1, 0);
    let race = coverage_race(bench, budget, 0x46A, args.jobs);
    println!(
        "# Figure 4a — coverage vs input vectors on `{}`\n",
        race.design
    );
    print!("{}", render_fig4a_csv(&race));
    info!("final coverage:");
    for (name, series) in &race.curves {
        info!(
            "  {:12} {}",
            name,
            series.last().map(|s| s.coverage).unwrap_or(0)
        );
    }
    save_json("fig4a", &race).expect("write results/fig4a.json");
    flush_trace();
}
