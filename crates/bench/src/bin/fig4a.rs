//! Regenerates Figure 4a: coverage vs input vectors for all five
//! strategies. Usage: `fig4a [budget] [bench_index] [--jobs N]`
//! (defaults 40000, 0).

use symbfuzz_bench::experiments::coverage_race;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_fig4a_csv, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let mut args = args.into_iter();
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let bench: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);
    let race = coverage_race(bench, budget, 0x46A, jobs);
    println!(
        "# Figure 4a — coverage vs input vectors on `{}`\n",
        race.design
    );
    print!("{}", render_fig4a_csv(&race));
    eprintln!("\nfinal coverage:");
    for (name, series) in &race.curves {
        eprintln!(
            "  {:12} {}",
            name,
            series.last().map(|s| s.coverage).unwrap_or(0)
        );
    }
    save_json("fig4a", &race).expect("write results/fig4a.json");
}
