//! Regenerates Table 3: benchmark statistics (LoC, CFG size,
//! dependency equations, constraints, latency).
//! Usage: `table3 [budget]` (default 20000).

use symbfuzz_bench::experiments::table3_rows;
use symbfuzz_bench::render::{render_table3, save_json};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let rows = table3_rows(budget);
    println!("# Table 3 — benchmark details (campaign budget {budget})\n");
    println!("{}", render_table3(&rows));
    save_json("table3", &rows).expect("write results/table3.json");
}
