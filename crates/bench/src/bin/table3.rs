//! Regenerates Table 3: benchmark statistics (LoC, CFG size,
//! dependency equations, constraints, latency).
//! Usage: `table3 [budget] [--jobs N]` (default 20000). Note that the
//! `latency_s` column is wall-clock, so it varies with `--jobs`.

use symbfuzz_bench::experiments::table3_rows;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_table3, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let budget: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let rows = table3_rows(budget, jobs);
    println!("# Table 3 — benchmark details (campaign budget {budget})\n");
    println!("{}", render_table3(&rows));
    save_json("table3", &rows).expect("write results/table3.json");
}
