//! Regenerates Table 3: benchmark statistics (LoC, CFG size,
//! dependency equations, constraints, latency).
//! Usage: `table3 [budget] [--jobs N] [--log-level LEVEL]
//! [--trace-out PATH]` (default 20000). Note that the `latency_s`
//! column is wall-clock, so it varies with `--jobs`.

use symbfuzz_bench::experiments::table3_rows;
use symbfuzz_bench::render::{render_table3, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 20_000);
    let rows = table3_rows(budget, args.jobs);
    println!("# Table 3 — benchmark details (campaign budget {budget})\n");
    println!("{}", render_table3(&rows));
    save_json("table3", &rows).expect("write results/table3.json");
    flush_trace();
}
