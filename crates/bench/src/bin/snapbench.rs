//! Snapshot-tree benchmark: the copy-on-write store's fork/enter cost
//! against legacy deep-copy snapshots, plus a campaign A/B measuring
//! what nearest-ancestor re-entry saves over full reset-and-replay
//! under a tight snapshot byte budget. Emits
//! `results/BENCH_snapshot.json`.
//!
//! Usage: `snapbench [vectors] [--smoke] [--snapshot-budget N]
//! [--log-level LEVEL]` (default 20000 campaign vectors; `--smoke`
//! drops to 2000 and skips the timed microbench loops' warm-up).
//!
//! The campaign A/B forces snapshot-cache misses by shrinking the
//! store budget (default 64 KiB here, not the 64 MiB campaign
//! default): evictions make rollbacks miss, and the A/B compares how
//! many cycles each arm then replays. Acceptance: ancestor re-entry
//! replays at least 5× fewer cycles per rollback than the
//! full-replay arm on `ibex_like`.

use serde::{Serialize, Value};
use std::sync::Arc;
use std::time::Instant;
use symbfuzz_bench::render::save_json;
use symbfuzz_bench::split_bench_args;
use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};
use symbfuzz_designs::processor_benchmarks;
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::Design;
use symbfuzz_sim::{Reentry, Simulator};
use symbfuzz_telemetry::set_log_level;

/// Fork/enter microbenchmark against the deep-copy baseline.
#[derive(Debug, Clone, Serialize)]
struct MicroRow {
    design: String,
    /// State bytes per full snapshot (two u64 planes per signal).
    state_bytes: u64,
    /// Forks per second into a copy-on-write store (chained parents).
    fork_per_sec: f64,
    /// Enters per second from the store.
    enter_per_sec: f64,
    /// Deep-copy snapshots per second (legacy baseline).
    deep_snapshot_per_sec: f64,
    /// Deep-copy restores per second (legacy baseline).
    deep_restore_per_sec: f64,
    /// Pages copied across the fork chain.
    pages_copied: u64,
    /// Pages shared with a tree parent across the fork chain.
    pages_shared: u64,
    /// Copy-on-write sharing ratio ×1000 (logical / unique bytes).
    sharing_milli: u64,
}

/// One campaign arm of the re-entry A/B.
#[derive(Debug, Clone, Serialize)]
struct CampaignArm {
    ancestor_reentry: bool,
    vectors: u64,
    coverage_points: u64,
    rollbacks: u64,
    full_resets: u64,
    snapshot_restores: u64,
    replayed_cycles: u64,
    snapshot_evictions: u64,
    /// Mean cycles replayed per rollback (0 when no rollbacks ran).
    replayed_per_rollback: f64,
    steps_per_sec: f64,
}

fn timed<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Walks the simulator `cycles` steps with a deterministic input walk.
fn walk(sim: &mut Simulator, width: u32, cycles: u64, state: &mut u64) {
    for _ in 0..cycles {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        sim.apply_input_word(&LogicVec::from_u64(width.min(64), *state));
        sim.step();
    }
}

fn microbench(design: &Arc<Design>, iters: u64) -> MicroRow {
    let mut sim = Simulator::new(Arc::clone(design));
    sim.reenter(Reentry::FullReset { cycles: 2 });
    let width = design.fuzz_width().max(1);
    let mut state = 0xBEEFu64;
    walk(&mut sim, width, 200, &mut state);

    // Chained forks: each fork's parent is the previous fork, with a
    // short walk in between, so sharing reflects a realistic tree.
    let mut store = sim.snapshot_store(u64::MAX);
    let mut parent = None;
    let fork_per_sec = timed(iters, || {
        walk(&mut sim, width, 4, &mut state);
        parent = Some(sim.fork(&mut store, parent).id);
    });
    let last = parent.expect("at least one fork ran");
    let enter_per_sec = timed(iters, || {
        sim.enter(&store, last);
    });

    // Deep-copy baseline: the pre-CoW checkpoint (now removed from the
    // simulator) was a full clone of the value table, so measure that
    // memory traffic directly for the contrast row.
    let deep_snapshot_per_sec = timed(iters, || {
        std::hint::black_box(sim.values().to_vec());
    });
    let snap = sim.values().to_vec();
    let mut scratch = sim.values().to_vec();
    let deep_restore_per_sec = timed(iters, || {
        scratch.clone_from(&snap);
        std::hint::black_box(scratch.len());
    });

    MicroRow {
        design: design.name.clone(),
        state_bytes: store.state_bytes(),
        fork_per_sec,
        enter_per_sec,
        deep_snapshot_per_sec,
        deep_restore_per_sec,
        pages_copied: store.pages_copied_total(),
        pages_shared: store.pages_shared_total(),
        sharing_milli: store.sharing_milli(),
    }
}

fn campaign_arm(
    design: &Arc<Design>,
    props: &[symbfuzz_core::PropertySpec],
    vectors: u64,
    budget_bytes: u64,
    ancestor: bool,
) -> CampaignArm {
    let config = FuzzConfig::builder()
        .interval(100)
        .threshold(2)
        .max_vectors(vectors)
        .seed(0x5A9B)
        .snapshot_mem_budget(budget_bytes)
        .use_ancestor_reentry(ancestor)
        .build()
        .expect("snapbench config is consistent");
    let mut fuzzer = SymbFuzz::new(Arc::clone(design), Strategy::SymbFuzz, config, props)
        .expect("properties must compile");
    let start = Instant::now();
    let result = fuzzer.run();
    let secs = start.elapsed().as_secs_f64();
    let counter = |n: &str| {
        result
            .telemetry
            .counters
            .iter()
            .find(|(k, _)| k == n)
            .map_or(0, |(_, v)| *v)
    };
    let rollbacks = result.resources.rollbacks;
    let replayed = counter("replayed_cycles");
    CampaignArm {
        ancestor_reentry: ancestor,
        vectors: result.vectors,
        coverage_points: result.coverage_points,
        rollbacks,
        full_resets: result.resources.full_resets,
        snapshot_restores: counter("snapshot_restores"),
        replayed_cycles: replayed,
        snapshot_evictions: result.resources.snapshot_evictions,
        replayed_per_rollback: if rollbacks == 0 {
            0.0
        } else {
            replayed as f64 / rollbacks as f64
        },
        steps_per_sec: result.resources.cycles as f64 / secs.max(1e-9),
    }
}

fn main() {
    let mut smoke = false;
    let args = split_bench_args(std::env::args().skip(1).filter(|a| {
        if a == "--smoke" {
            smoke = true;
            false
        } else {
            true
        }
    }));
    set_log_level(args.log_level);
    let vectors: u64 = args.pos(0, if smoke { 2_000 } else { 20_000 });
    let iters: u64 = if smoke { 200 } else { 2_000 };
    // Tight enough to force evictions (and therefore rollback misses)
    // on ibex_like, whose full state is only ~400 bytes; the campaign
    // default is 64 MiB.
    let budget_bytes = args.snapshot_budget.unwrap_or(4 * 1024);

    let ibex = &processor_benchmarks()[0];
    let design = ibex.design().expect("benchmark elaborates");
    let props = ibex.property_specs();

    println!("# Snapshot store — fork/enter vs deep copy ({iters} iterations)\n");
    let micro = microbench(&design, iters);
    println!(
        "| {} | fork {:.0}/s | enter {:.0}/s | deep snap {:.0}/s | deep restore {:.0}/s \
         | sharing {:.2}× |",
        micro.design,
        micro.fork_per_sec,
        micro.enter_per_sec,
        micro.deep_snapshot_per_sec,
        micro.deep_restore_per_sec,
        micro.sharing_milli as f64 / 1000.0
    );

    println!(
        "\n# Re-entry A/B — {} vectors, {budget_bytes}-byte snapshot budget\n",
        vectors
    );
    let on = campaign_arm(&design, &props, vectors, budget_bytes, true);
    let off = campaign_arm(&design, &props, vectors, budget_bytes, false);
    for arm in [&on, &off] {
        println!(
            "| ancestor={} | rollbacks {} | replayed {} | per-rollback {:.1} \
             | evictions {} | full resets {} | {:.0} steps/s |",
            arm.ancestor_reentry,
            arm.rollbacks,
            arm.replayed_cycles,
            arm.replayed_per_rollback,
            arm.snapshot_evictions,
            arm.full_resets,
            arm.steps_per_sec
        );
    }
    assert_eq!(
        (on.vectors, on.coverage_points),
        (off.vectors, off.coverage_points),
        "the A/B arms must reach identical coverage"
    );
    let savings = if on.replayed_per_rollback > 0.0 {
        off.replayed_per_rollback / on.replayed_per_rollback
    } else {
        f64::INFINITY
    };
    println!(
        "\nmean cycles replayed per re-entry: {:.1} → {:.1} ({savings:.1}× less; \
         acceptance: ≥5× on ibex_like)",
        off.replayed_per_rollback, on.replayed_per_rollback
    );

    let out = Value::Object(vec![
        ("micro".into(), vec![micro].to_value()),
        ("campaign_vectors".into(), Value::Num(vectors as f64)),
        (
            "snapshot_budget_bytes".into(),
            Value::Num(budget_bytes as f64),
        ),
        ("ancestor_on".into(), on.to_value()),
        ("ancestor_off".into(), off.to_value()),
        (
            "replay_savings_ratio".into(),
            Value::Num(if savings.is_finite() { savings } else { -1.0 }),
        ),
    ]);
    save_json("BENCH_snapshot", &out).expect("write results/BENCH_snapshot.json");
}
