//! Regenerates Table 2: the detection matrix across all four fuzzers.
//! Usage: `table2 [budget] [--jobs N]` (default 30000).

use symbfuzz_bench::experiments::detection_matrix;
use symbfuzz_bench::pool::parse_jobs;
use symbfuzz_bench::render::{render_table2, save_json};

fn main() {
    let (args, jobs) = parse_jobs();
    let budget: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let m = detection_matrix(14, budget, jobs);
    println!("# Table 2 — bug detection by fuzzer (budget {budget}; paper value in parens)\n");
    println!("{}", render_table2(&m));
    save_json("table2", &m).expect("write results/table2.json");
}
