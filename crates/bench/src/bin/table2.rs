//! Regenerates Table 2: the detection matrix across all four fuzzers.
//! Usage: `table2 [budget] [--jobs N] [--log-level LEVEL]
//! [--trace-out PATH]` (default 30000).

use symbfuzz_bench::experiments::detection_matrix;
use symbfuzz_bench::render::{render_table2, save_json};
use symbfuzz_bench::{flush_trace, parse_bench_args};

fn main() {
    let args = parse_bench_args();
    let budget: u64 = args.pos(0, 30_000);
    let m = detection_matrix(14, budget, args.jobs);
    println!("# Table 2 — bug detection by fuzzer (budget {budget}; paper value in parens)\n");
    println!("{}", render_table2(&m));
    save_json("table2", &m).expect("write results/table2.json");
    flush_trace();
}
