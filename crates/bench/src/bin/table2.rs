//! Regenerates Table 2: the detection matrix across all four fuzzers.
//! Usage: `table2 [budget]` (default 30000).

use symbfuzz_bench::experiments::detection_matrix;
use symbfuzz_bench::render::{render_table2, save_json};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    let m = detection_matrix(14, budget);
    println!("# Table 2 — bug detection by fuzzer (budget {budget}; paper value in parens)\n");
    println!("{}", render_table2(&m));
    save_json("table2", &m).expect("write results/table2.json");
}
