//! The experiment implementations.
//!
//! Every experiment takes a `jobs` argument and fans its independent
//! campaigns across a scoped-thread pool ([`crate::pool`]). Campaign
//! seeds are fixed per task and results are merged in item order, so
//! reports are byte-identical for any `jobs` value — the single
//! exception is Table 3's `latency_s` wall-clock column.

use crate::pool::run_pool;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use symbfuzz_core::{
    CampaignResult, CoverageSample, FuzzConfig, FuzzConfigBuilder, PortfolioBlock, PropertySpec,
    SettlePolicy, SolverCacheBlock, SolverProfileBlock, SolverScopeBlock, Strategy, SymbFuzz,
};
use symbfuzz_designs::{bug_benchmarks, processor_benchmarks, Benchmark};
use symbfuzz_logic::LogicVec;
use symbfuzz_netlist::{classify_registers, Design, DesignStats, SignalId};
use symbfuzz_sim::{Reentry, Simulator};
use symbfuzz_smt::Budget;
use symbfuzz_symexec::SymbolicEngine;
use symbfuzz_telemetry::{Collector, SharedSink, SolveStatus};

/// The process-global trace writer, set once by `--trace-out`. All
/// pool tasks fan into it through [`SharedSink`] (whole lines under a
/// lock), attributable via each record's `task` field.
static TRACE: OnceLock<Arc<Mutex<BufWriter<File>>>> = OnceLock::new();

/// Opens (truncates) the JSONL trace file every subsequent campaign in
/// this process streams to. First call wins; later calls are no-ops.
///
/// # Errors
///
/// Propagates file-creation errors.
pub fn enable_tracing(path: &Path) -> io::Result<()> {
    let writer = Arc::new(Mutex::new(BufWriter::new(File::create(path)?)));
    let _ = TRACE.set(writer);
    Ok(())
}

/// Whether a `--trace-out` file is active.
pub fn tracing_enabled() -> bool {
    TRACE.get().is_some()
}

/// The process-global solver budget, set once by `--solver-budget` /
/// `--solve-wall-ms`. `(conflict ceiling, wall-clock ceiling in ms)`.
static SOLVER_BUDGET: OnceLock<(Option<u64>, Option<u64>)> = OnceLock::new();

/// Caps every symbolic solve of every subsequent campaign in this
/// process: `conflicts` CDCL conflicts and/or `wall_ms` milliseconds.
/// Exhausted solves degrade to random mutation instead of blocking the
/// campaign. First call wins; later calls are no-ops. Wall-clock
/// ceilings make reports non-deterministic — conflict ceilings do not.
pub fn set_solver_budget(conflicts: Option<u64>, wall_ms: Option<u64>) {
    let _ = SOLVER_BUDGET.set((conflicts, wall_ms));
}

/// The active global solver budget (both `None` when unset).
pub fn solver_budget() -> (Option<u64>, Option<u64>) {
    SOLVER_BUDGET.get().copied().unwrap_or((None, None))
}

/// The process-global settle engine, set once by `--settle-mode`.
static SETTLE_POLICY: OnceLock<SettlePolicy> = OnceLock::new();

/// Selects the combinational settle engine every subsequent campaign
/// in this process simulates with. First call wins; later calls are
/// no-ops. Campaign reports are identical under every policy (see the
/// `sched_equiv` suite), so this is a performance knob, not a
/// semantics knob.
pub fn set_settle_policy(policy: SettlePolicy) {
    let _ = SETTLE_POLICY.set(policy);
}

/// The active settle engine ([`SettlePolicy::Compiled`] when unset).
pub fn settle_policy() -> SettlePolicy {
    SETTLE_POLICY.get().copied().unwrap_or_default()
}

/// The process-global snapshot-store byte budget, set once by
/// `--snapshot-budget`.
static SNAPSHOT_BUDGET: OnceLock<u64> = OnceLock::new();

/// Bounds the copy-on-write snapshot store of every subsequent
/// campaign in this process at `bytes` unique page bytes; beyond it
/// the oldest snapshots are evicted first. First call wins; later
/// calls are no-ops. Eviction order is a pure function of the campaign
/// seed, so reports stay byte-identical at any `--jobs`.
pub fn set_snapshot_budget(bytes: u64) {
    let _ = SNAPSHOT_BUDGET.set(bytes);
}

/// The active snapshot budget (`None` when unset — campaigns use the
/// [`FuzzConfig`] default).
pub fn snapshot_budget() -> Option<u64> {
    SNAPSHOT_BUDGET.get().copied()
}

/// The process-global solver-introspection switch, set once by
/// `--introspect`.
static INTROSPECTION: OnceLock<bool> = OnceLock::new();

/// Arms solver introspection for every subsequent campaign in this
/// process: each symbolic goal then carries CDCL analytics, a
/// structural sketch, and (for failed goals) a blame set, folded into
/// the report's `solver_scope` block. First call wins; later calls are
/// no-ops. Everything recorded is a pure function of the campaign
/// seed, so introspected reports stay byte-identical at any `--jobs`.
pub fn set_introspection(on: bool) {
    let _ = INTROSPECTION.set(on);
}

/// Whether solver introspection is armed (off when unset).
pub fn introspection() -> bool {
    INTROSPECTION.get().copied().unwrap_or(false)
}

/// The process-global incremental-solving switch, set once by
/// `--incremental`.
static INCREMENTAL: OnceLock<bool> = OnceLock::new();

/// Arms incremental solving for every subsequent campaign in this
/// process: goals sharing an unrolled frame reuse one warm solver via
/// assumption literals, and transition-relation bitblasts are cached
/// per frame. First call wins; later calls are no-ops. Session reuse
/// is a pure function of the campaign seed, so reports stay
/// byte-identical at any `--jobs`.
pub fn set_incremental(on: bool) {
    let _ = INCREMENTAL.set(on);
}

/// Whether incremental solving is armed (off when unset).
pub fn incremental() -> bool {
    INCREMENTAL.get().copied().unwrap_or(false)
}

/// The process-global portfolio width, set once by `--portfolio`.
static PORTFOLIO: OnceLock<u32> = OnceLock::new();

/// Races every budgeted reachability query of every subsequent
/// campaign across `width` budget profiles (0 = off, 2..=4 profiles).
/// First call wins; later calls are no-ops. The canonical
/// lowest-index-winner rule keeps raced reports byte-identical at any
/// `--jobs`.
pub fn set_portfolio(width: u32) {
    let _ = PORTFOLIO.set(width);
}

/// The active portfolio width (`None` when unset).
pub fn portfolio() -> Option<u32> {
    PORTFOLIO.get().copied()
}

/// The process-global affinity-ordering switch, set once by
/// `--affinity`.
static AFFINITY: OnceLock<bool> = OnceLock::new();

/// Orders each guidance round's goal batch by KMV-sketch affinity so
/// structurally similar goals hit a warm solver back to back. Implies
/// solver introspection (the ordering keys on the sketches it
/// collects). First call wins; later calls are no-ops.
pub fn set_affinity(on: bool) {
    let _ = AFFINITY.set(on);
}

/// Whether affinity-ordered goal batching is armed (off when unset).
pub fn affinity() -> bool {
    AFFINITY.get().copied().unwrap_or(false)
}

/// The process-global bitblast-cache byte budget, set once by
/// `--solver-cache-budget`.
static SOLVER_CACHE_BUDGET: OnceLock<u64> = OnceLock::new();

/// Bounds the warm-session bitblast cache of every subsequent
/// campaign at `bytes` estimated clause bytes; beyond it the
/// least-recently-used sessions are evicted. First call wins; later
/// calls are no-ops. Eviction order is a pure function of the
/// campaign seed, so reports stay byte-identical at any `--jobs`.
pub fn set_solver_cache_budget(bytes: u64) {
    let _ = SOLVER_CACHE_BUDGET.set(bytes);
}

/// The active bitblast-cache budget (`None` when unset — campaigns
/// use the [`FuzzConfig`] default).
pub fn solver_cache_budget() -> Option<u64> {
    SOLVER_CACHE_BUDGET.get().copied()
}

/// Applies the incremental/portfolio/affinity/cache-budget globals to
/// a campaign builder — the shared tail of every experiment's config.
/// `--affinity` forces introspection on, which the builder requires.
fn apply_solver_knobs(mut b: FuzzConfigBuilder) -> FuzzConfigBuilder {
    if incremental() {
        b = b.incremental_solving(true);
    }
    if let Some(bytes) = solver_cache_budget() {
        b = b.solver_cache_budget(bytes);
    }
    if let Some(width) = portfolio() {
        b = b.portfolio(width);
    }
    if affinity() {
        b = b.affinity_ordering(true).solver_introspection(true);
    }
    b
}

/// The process-global flight-recorder interval, set once by
/// `--sample-every`.
static SAMPLING: OnceLock<u64> = OnceLock::new();

/// Arms the flight recorder for every subsequent campaign in this
/// process: one delta-compressed sample every `every` input vectors
/// (floored at 1), plus the per-cone VM profiler and the per-goal
/// solver profiler. First call wins; later calls are no-ops. Sample
/// streams are keyed to the deterministic vector-count clock, so
/// recordings are byte-identical at any `--jobs`.
pub fn set_sampling(every: u64) {
    let _ = SAMPLING.set(every.max(1));
}

/// The active flight-recorder interval (`None` when sampling is off).
pub fn sampling() -> Option<u64> {
    SAMPLING.get().copied()
}

/// The live flight/status destinations, set once by `--flight-out` /
/// `--status-out`. Only pool task 0 streams here mid-run (one writer
/// per file); the bench bins overwrite both with the canonical merged
/// artifacts after the pool drains.
static FLIGHT_OUT: OnceLock<PathBuf> = OnceLock::new();
static STATUS_OUT: OnceLock<PathBuf> = OnceLock::new();

/// Installs the live flight-stream and status-heartbeat paths. First
/// call wins; later calls are no-ops. No-op arguments leave the
/// corresponding output unset.
pub fn set_flight_outputs(flight: Option<&Path>, status: Option<&Path>) {
    if let Some(p) = flight {
        let _ = FLIGHT_OUT.set(p.to_path_buf());
    }
    if let Some(p) = status {
        let _ = STATUS_OUT.set(p.to_path_buf());
    }
}

/// The live flight-stream path, if configured.
pub fn flight_out() -> Option<&'static Path> {
    FLIGHT_OUT.get().map(PathBuf::as_path)
}

/// The live status-heartbeat path, if configured.
pub fn status_out() -> Option<&'static Path> {
    STATUS_OUT.get().map(PathBuf::as_path)
}

/// The shared campaign configuration: the experiments' historical
/// interval/threshold choices plus whatever global solver budget
/// [`set_solver_budget`] installed, validated by the builder.
fn campaign_config(budget: u64, seed: u64) -> FuzzConfig {
    let (conflicts, wall_ms) = solver_budget();
    let mut b = FuzzConfig::builder()
        .interval(100)
        .threshold(2)
        .max_vectors(budget)
        .seed(seed)
        .settle_policy(settle_policy());
    if let Some(c) = conflicts {
        b = b.solver_budget(c);
    }
    if let Some(ms) = wall_ms {
        b = b.solve_wall_ms(ms);
    }
    if let Some(every) = sampling() {
        b = b.sample_every(every);
    }
    if let Some(bytes) = snapshot_budget() {
        b = b.snapshot_mem_budget(bytes);
    }
    if introspection() {
        b = b.solver_introspection(true);
    }
    b = apply_solver_knobs(b);
    b.build().expect("bench campaign config is consistent")
}

/// Flushes the shared trace file (no-op when tracing is off).
pub fn flush_trace() {
    if let Some(w) = TRACE.get() {
        if let Ok(mut w) = w.lock() {
            use std::io::Write as _;
            let _ = w.flush();
        }
    }
}

/// When tracing is on, swaps the fuzzer's deterministic collector for
/// a wall-clock one streaming into the shared trace file, labelled
/// with the pool `task` index. When tracing is off this is a no-op, so
/// campaign reports keep the deterministic vector-count clock.
pub fn attach_telemetry(fuzzer: &mut SymbFuzz, task: usize) {
    if let Some(writer) = TRACE.get() {
        let collector = Arc::new(Collector::monotonic());
        collector.set_task(task as u64);
        collector.set_sink(Box::new(SharedSink::new(Arc::clone(writer))));
        fuzzer.install_telemetry(collector);
    }
}

/// When this is pool task 0 and `--flight-out` / `--status-out` were
/// given, streams the campaign's live flight samples and status
/// heartbeat to those paths. Other tasks keep their samples in memory
/// only (they ride back in the campaign report and are merged by
/// interval index after the pool), so each live file has exactly one
/// writer. No-op when the recorder is off.
pub fn attach_flight_outputs(fuzzer: &mut SymbFuzz, task: usize) {
    if task != 0 {
        return;
    }
    if let Err(e) = fuzzer.set_flight_outputs(flight_out(), status_out()) {
        symbfuzz_telemetry::warn!("cannot open flight outputs: {e}");
    }
}

/// Builds and runs one campaign (`task` is the pool index, used only
/// to label trace records).
fn run(
    design: Arc<Design>,
    strategy: Strategy,
    props: &[PropertySpec],
    budget: u64,
    seed: u64,
    task: usize,
) -> CampaignResult {
    let config = campaign_config(budget, seed);
    let mut fuzzer =
        SymbFuzz::new(design, strategy, config, props).expect("properties must compile");
    attach_telemetry(&mut fuzzer, task);
    attach_flight_outputs(&mut fuzzer, task);
    let result = fuzzer.run();
    // One summary record per campaign with the settle-engine mix so
    // `tracedump` can report the fast-path hit rate (no-op when the
    // collector has no sink, i.e. tracing is off), plus the solver
    // cache / portfolio summary when those features are armed.
    fuzzer.telemetry().emit_settle_metrics();
    fuzzer.emit_solver_metrics();
    fuzzer.telemetry().flush();
    result
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Bug number.
    pub id: u32,
    /// Benchmark name.
    pub name: String,
    /// Bug description.
    pub description: String,
    /// Sub-module (paper column 3).
    pub submodule: String,
    /// CWE id (paper column 5).
    pub cwe: String,
    /// Input vectors the paper reports (column 6).
    pub paper_vectors: f64,
    /// Vectors SymbFuzz needed here (`None` = not found in budget).
    pub measured_vectors: Option<u64>,
}

/// Table 1: run SymbFuzz on each buggy IP until its property fires.
/// Benchmarks run concurrently on up to `jobs` threads.
pub fn table1_rows(budget: u64, jobs: usize) -> Vec<Table1Row> {
    let benches = bug_benchmarks();
    run_pool(&benches, jobs, |task, b| {
        let design = b.design().expect("benchmark elaborates");
        let config = campaign_config(budget, 0x5EED + b.id as u64);
        let mut fuzzer = SymbFuzz::new(design, Strategy::SymbFuzz, config, &[b.property_spec()])
            .expect("property compiles");
        attach_telemetry(&mut fuzzer, task);
        attach_flight_outputs(&mut fuzzer, task);
        let measured = fuzzer.run_until_bug(b.name);
        fuzzer.telemetry().flush();
        Table1Row {
            id: b.id,
            name: b.name.to_string(),
            description: b.description.to_string(),
            submodule: b.submodule.to_string(),
            cwe: b.cwe.to_string(),
            paper_vectors: b.paper_vectors,
            measured_vectors: measured,
        }
    })
}

/// One row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionRow {
    /// Bug number.
    pub id: u32,
    /// Benchmark name.
    pub name: String,
    /// Detected by SymbFuzz here.
    pub symbfuzz: bool,
    /// Detected by the RFuzz baseline here.
    pub rfuzz: bool,
    /// Detected by the DifuzzRTL baseline here.
    pub difuzz: bool,
    /// Detected by the HWFP baseline here.
    pub hwfp: bool,
    /// Paper's Table 2 row (RFuzz, DifuzzRTL, HWFP) — SymbFuzz is ✓
    /// everywhere in the paper.
    pub paper: (bool, bool, bool),
}

/// The full detection matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionMatrix {
    /// One row per bug.
    pub rows: Vec<DetectionRow>,
}

impl DetectionMatrix {
    /// Bugs missed by a column, mirroring the paper's counts
    /// (RFuzz 12, DifuzzRTL 6, HWFP 8 of 14).
    pub fn missed(&self) -> (usize, usize, usize, usize) {
        let m = |f: fn(&DetectionRow) -> bool| self.rows.iter().filter(|r| !f(r)).count();
        (
            m(|r| r.symbfuzz),
            m(|r| r.rfuzz),
            m(|r| r.difuzz),
            m(|r| r.hwfp),
        )
    }
}

/// Table 2: every fuzzer gets the same budget on each buggy IP; a ✓
/// requires both *reaching* the trigger state and having an oracle able
/// to observe the violation. Following §5 of the paper ("each fuzzer
/// was run four times"), a fuzzer scores a ✓ if any of four seeded
/// runs detects the bug.
///
/// The bug × fuzzer grid is flattened into independent pool tasks so
/// small `nbugs` still saturates `jobs` workers; seeds depend only on
/// the bug id and repeat index, so the matrix is identical at any
/// parallelism.
pub fn detection_matrix(nbugs: usize, budget: u64, jobs: usize) -> DetectionMatrix {
    const FUZZERS: [Strategy; 4] = [
        Strategy::SymbFuzz,
        Strategy::RFuzz,
        Strategy::DifuzzRtl,
        Strategy::Hwfp,
    ];
    let benches = bug_benchmarks();
    let prep: Vec<_> = benches
        .iter()
        .take(nbugs)
        .map(|b| (b, b.design().expect("benchmark elaborates")))
        .collect();
    let tasks: Vec<(usize, Strategy)> = (0..prep.len())
        .flat_map(|i| FUZZERS.iter().map(move |&s| (i, s)))
        .collect();
    let hits = run_pool(&tasks, jobs, |task, &(i, s)| {
        let (b, design) = &prep[i];
        let spec = [b.property_spec()];
        (0..4).any(|r| {
            run(
                Arc::clone(design),
                s,
                &spec,
                budget,
                0xD1CE + b.id as u64 + r * 7919,
                task,
            )
            .detected(b.name)
        })
    });
    let rows = prep
        .iter()
        .enumerate()
        .map(|(i, (b, _))| DetectionRow {
            id: b.id,
            name: b.name.to_string(),
            symbfuzz: hits[i * FUZZERS.len()],
            rfuzz: hits[i * FUZZERS.len() + 1],
            difuzz: hits[i * FUZZERS.len() + 2],
            hwfp: hits[i * FUZZERS.len() + 3],
            paper: b.table2,
        })
        .collect();
    DetectionMatrix { rows }
}

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Which paper benchmark it stands in for.
    pub paper_counterpart: String,
    /// Non-empty source lines.
    pub loc: u32,
    /// Flattened signals.
    pub signals: usize,
    /// Registers / control registers.
    pub registers: usize,
    /// Control registers steering branches.
    pub control_registers: usize,
    /// CFG nodes explored by a short SymbFuzz campaign.
    pub cfg_nodes: u64,
    /// CFG edges explored.
    pub cfg_edges: u64,
    /// Dependency equations generated by the symbolic engine.
    pub dependency_eqns: usize,
    /// SMT constraint sets generated (solver calls) during the campaign.
    pub constraints: u64,
    /// Wall-clock seconds for analysis + campaign (paper: minutes).
    pub latency_s: f64,
    /// Paper Table 3 reference: (nodes, edges, eq low, eq high, constraints).
    pub paper: (u32, u32, u32, u32, u32),
}

/// Table 3: static analysis plus a bounded campaign per processor
/// benchmark, fanned across `jobs` workers. `latency_s` is wall-clock
/// and therefore the one report column that varies with `jobs` (and
/// between runs); every other column is deterministic.
pub fn table3_rows(budget: u64, jobs: usize) -> Vec<Table3Row> {
    let benches = processor_benchmarks();
    run_pool(&benches, jobs, |task, b| table3_row(b, budget, task))
}

fn table3_row(b: &Benchmark, budget: u64, task: usize) -> Table3Row {
    let start = Instant::now();
    let design = b.design().expect("benchmark elaborates");
    let stats = DesignStats::of(&design);
    let rc = classify_registers(&design);
    let engine = SymbolicEngine::new(Arc::clone(&design));
    let result = run(
        Arc::clone(&design),
        Strategy::SymbFuzz,
        &b.property_specs(),
        budget,
        0xB3,
        task,
    );
    Table3Row {
        name: b.name.to_string(),
        paper_counterpart: b.paper_counterpart.to_string(),
        loc: stats.loc,
        signals: stats.signals,
        registers: stats.registers,
        control_registers: rc.control.len(),
        cfg_nodes: result.nodes,
        cfg_edges: result.edges,
        dependency_eqns: engine.num_equations(),
        constraints: result.resources.solver_calls,
        latency_s: start.elapsed().as_secs_f64(),
        paper: b.paper_table3,
    }
}

/// Figure 4a data: one coverage curve per strategy on one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceResult {
    /// Benchmark name.
    pub design: String,
    /// `(strategy name, samples)` per strategy.
    pub curves: Vec<(String, Vec<CoverageSample>)>,
}

impl RaceResult {
    /// Final coverage for a strategy.
    pub fn final_coverage(&self, name: &str) -> Option<u64> {
        self.curves
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, s)| s.last().map(|p| p.coverage))
    }
}

/// Figure 4a: run all five strategies on a processor benchmark,
/// one pool task per strategy. `bench_index` selects from
/// [`processor_benchmarks`]; seeds vary per strategy to avoid
/// accidental correlation.
pub fn coverage_race(bench_index: usize, budget: u64, seed: u64, jobs: usize) -> RaceResult {
    let b = &processor_benchmarks()[bench_index];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let strategies = Strategy::all();
    let curves = run_pool(&strategies, jobs, |task, s| {
        let r = run(
            Arc::clone(&design),
            *s,
            &props,
            budget,
            seed ^ s.name().len() as u64,
            task,
        );
        (s.name().to_string(), r.series)
    });
    RaceResult {
        design: b.name.to_string(),
        curves,
    }
}

/// One Figure 4b point: coverage variance across runs at a vector count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariancePoint {
    /// Strategy name.
    pub strategy: String,
    /// Input vectors.
    pub vectors: u64,
    /// Mean coverage across runs.
    pub mean: f64,
    /// Coverage variance across runs.
    pub variance: f64,
}

/// Figure 4b: repeated unseeded runs per strategy; variance of coverage
/// within the mid-campaign window (the paper samples 4–8.5 M of ~10 M
/// vectors; we use the same 40 %–85 % fraction of the budget).
/// The strategy × run grid is flattened into pool tasks; each task's
/// seed depends only on its run index, so the profile is identical at
/// any parallelism.
pub fn variance_profile(
    bench_index: usize,
    budget: u64,
    runs: u64,
    jobs: usize,
) -> Vec<VariancePoint> {
    let b = &processor_benchmarks()[bench_index];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let lo = budget * 2 / 5;
    let hi = budget * 17 / 20;
    let tasks: Vec<(Strategy, u64)> = Strategy::all()
        .iter()
        .flat_map(|&s| (0..runs).map(move |r| (s, r)))
        .collect();
    let series: Vec<Vec<CoverageSample>> = run_pool(&tasks, jobs, |task, &(s, r)| {
        run(
            Arc::clone(&design),
            s,
            &props,
            budget,
            0xF00 + r * 7919,
            task,
        )
        .series
    });
    let mut out = Vec::new();
    for (si, s) in Strategy::all().iter().enumerate() {
        // Per-run curves for this strategy, in run order.
        let curves = &series[si * runs as usize..(si + 1) * runs as usize];
        let nsamples = curves.iter().map(|c| c.len()).min().unwrap_or(0);
        for i in 0..nsamples {
            let vectors = curves[0][i].vectors;
            if vectors < lo || vectors > hi {
                continue;
            }
            let vals: Vec<f64> = curves.iter().map(|c| c[i].coverage as f64).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let variance =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            out.push(VariancePoint {
                strategy: s.name().to_string(),
                vectors,
                mean,
                variance,
            });
        }
    }
    out
}

/// §5.3 speed-up: vectors each strategy needs to match UVM random's
/// saturation coverage. The paper reports SymbFuzz reaching it 6.8×
/// earlier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// Benchmark name.
    pub design: String,
    /// Coverage UVM random saturates at within the budget.
    pub random_saturation: u64,
    /// `(strategy, vectors-to-reach, speedup-vs-random)`.
    pub rows: Vec<(String, Option<u64>, Option<f64>)>,
}

/// Computes the §5.3 convergence comparison, one pool task per
/// strategy.
pub fn speedup(bench_index: usize, budget: u64, jobs: usize) -> SpeedupResult {
    let b = &processor_benchmarks()[bench_index];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let strategies = Strategy::all();
    let results: Vec<(Strategy, CampaignResult)> = run_pool(&strategies, jobs, |task, s| {
        (
            *s,
            run(Arc::clone(&design), *s, &props, budget, 0xACE, task),
        )
    });
    let random = results
        .iter()
        .find(|(s, _)| *s == Strategy::UvmRandom)
        .map(|(_, r)| r.clone())
        .expect("random always present");
    let target = random.coverage_points;
    let random_vectors = random.vectors_to_reach(target).unwrap_or(budget).max(1);
    let rows = results
        .iter()
        .map(|(s, r)| {
            let v = r.vectors_to_reach(target);
            let ratio = v.map(|v| random_vectors as f64 / v.max(1) as f64);
            (s.name().to_string(), v, ratio)
        })
        .collect();
    SpeedupResult {
        design: b.name.to_string(),
        random_saturation: target,
        rows,
    }
}

/// One coverage-vs-budget row: a full campaign against the factoring
/// lock at one per-solve conflict ceiling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetProfileRow {
    /// DUV name (`hard_factor`, `ibex_like` or `goalfabric`).
    pub design: String,
    /// Per-solve conflict ceiling.
    pub solver_budget: u64,
    /// Input vectors the campaign consumed (always the full budget —
    /// the lock is unfactorable, the point is that it terminates).
    pub vectors: u64,
    /// Coverage points reached by falling back to random mutation.
    pub coverage_points: u64,
    /// Symbolic solves that hit the ceiling.
    pub budget_exhaustions: u64,
    /// Goals skipped because a prior attempt already failed.
    pub neg_cache_hits: u64,
    /// Transition-relation frames reused from the bitblast cache
    /// (zero unless `--incremental`).
    pub bitblast_cache_hits: u64,
    /// Frames substituted and bitblasted fresh.
    pub bitblast_cache_misses: u64,
    /// Warm-session goal-reuse rate in permille.
    pub session_reuse_milli: u64,
    /// Portfolio wins per profile index (empty unless `--portfolio`).
    pub portfolio_wins: Vec<u64>,
    /// Non-zero `SolveStatus` tallies, in schema order.
    pub solve_outcomes: Vec<(String, u64)>,
}

/// The three budget-profile DUVs: the solver-hostile factoring lock,
/// the benign `ibex_like` control, and the goal-dense
/// [`symbfuzz_designs::goal_fabric`] (many shallow sibling goals off
/// one shared multiplier — the incremental-solver A/B fixture).
fn profile_duvs() -> [(&'static str, Arc<Design>, Vec<PropertySpec>); 3] {
    let hard_props = {
        let (prop, expr) = symbfuzz_designs::HARD_FACTOR_PROPERTY;
        vec![PropertySpec::assertion_only(prop, expr)]
    };
    let fabric_props = {
        let (prop, expr) = symbfuzz_designs::GOAL_FABRIC_PROPERTY;
        vec![PropertySpec::assertion_only(prop, expr)]
    };
    let ibex = &processor_benchmarks()[0];
    [
        ("hard_factor", symbfuzz_designs::hard_factor(), hard_props),
        (
            ibex.name,
            ibex.design().expect("benchmark elaborates"),
            ibex.property_specs(),
        ),
        ("goalfabric", symbfuzz_designs::goal_fabric(), fabric_props),
    ]
}

/// Coverage-vs-budget profile: runs SymbFuzz once per conflict
/// ceiling in `budgets` on three DUVs, one pool task per campaign.
/// The deliberately solver-hostile [`symbfuzz_designs::hard_factor`]
/// lock makes every symbolic goal a 40-bit semiprime factoring
/// instance, so each of its campaigns demonstrates graceful
/// degradation: the solver returns unknown, telemetry records
/// `BudgetExhausted`, and fuzzing continues on random mutation to the
/// full vector budget. `ibex_like` is the benign control: its
/// dependency equations solve well inside even the smallest ceiling,
/// showing budgets cost nothing when the solver succeeds. `goalfabric`
/// is the goal-dense fixture whose many sibling goals share one
/// unrolled frame — the design the incremental-solver knobs are
/// measured on. Seeds are fixed per campaign, so rows are
/// byte-identical at any `jobs` value.
pub fn budget_profile(budgets: &[u64], max_vectors: u64, jobs: usize) -> Vec<BudgetProfileRow> {
    let duvs = profile_duvs();
    let tasks: Vec<(usize, u64)> = (0..duvs.len())
        .flat_map(|i| budgets.iter().map(move |&b| (i, b)))
        .collect();
    run_pool(&tasks, jobs, |task, &(i, ceiling)| {
        let (name, design, props) = &duvs[i];
        let mut b = FuzzConfig::builder()
            .interval(100)
            .threshold(1)
            .max_vectors(max_vectors)
            .seed(0xB0D6E7)
            .solver_budget(ceiling)
            .escalation_cap(1);
        if let Some(every) = sampling() {
            b = b.sample_every(every);
        }
        if let Some(bytes) = snapshot_budget() {
            b = b.snapshot_mem_budget(bytes);
        }
        if introspection() {
            b = b.solver_introspection(true);
        }
        b = apply_solver_knobs(b);
        let config = b.build().expect("budget profile config is consistent");
        let mut fuzzer = SymbFuzz::new(Arc::clone(design), Strategy::SymbFuzz, config, props)
            .expect("property compiles");
        attach_telemetry(&mut fuzzer, task);
        attach_flight_outputs(&mut fuzzer, task);
        let r = fuzzer.run();
        fuzzer.emit_solver_metrics();
        fuzzer.telemetry().flush();
        let counter = |name: &str| {
            r.telemetry
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let cache = r.solver_cache.unwrap_or_default();
        BudgetProfileRow {
            design: name.to_string(),
            solver_budget: ceiling,
            vectors: r.vectors,
            coverage_points: r.coverage_points,
            budget_exhaustions: counter("budget_exhaustions"),
            neg_cache_hits: counter("neg_cache_hits"),
            bitblast_cache_hits: cache.frame_hits,
            bitblast_cache_misses: cache.frame_misses,
            session_reuse_milli: cache.reuse_milli,
            portfolio_wins: r
                .portfolio
                .as_ref()
                .map_or_else(Vec::new, |p| p.wins.clone()),
            solve_outcomes: r
                .solve_outcomes
                .iter()
                .filter(|(_, n)| *n > 0)
                .cloned()
                .collect(),
        }
    })
}

/// One design's merged solver-introspection profile: the scope block
/// (cost rows, blame sets, affinity matrix) joined against the solver
/// profile's per-status tallies for the attribution-rate headline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopeProfileResult {
    /// DUV name (`hard_factor`, `ibex_like` or `goalfabric`).
    pub design: String,
    /// Per-solve conflict ceiling the campaigns ran under.
    pub solver_budget: u64,
    /// Introspected campaigns merged into this profile.
    pub campaigns: u64,
    /// Goals with at least one budget-exhausted attempt.
    pub exhausted_goals: u64,
    /// Exhausted goals whose scope row carries a non-empty blame set.
    pub exhausted_blamed: u64,
    /// Mean sketch affinity of adjacent equal-depth goals, in milli.
    pub mean_adjacent_affinity_milli: u64,
    /// The merged introspection block.
    pub scope: SolverScopeBlock,
    /// The merged per-goal solver profile (status tallies per goal).
    pub profile: SolverProfileBlock,
    /// The merged bitblast-cache block (`None` unless `--incremental`
    /// armed incremental solving for these campaigns).
    pub solver_cache: Option<SolverCacheBlock>,
    /// The merged portfolio block (`None` unless `--portfolio` armed
    /// racing for these campaigns).
    pub portfolio: Option<PortfolioBlock>,
}

/// Solver-introspection profile: runs introspected SymbFuzz campaigns
/// on the solver-hostile `hard_factor` lock (every goal a 40-bit
/// semiprime factoring instance — exhaustion attribution territory),
/// the benign `ibex_like` control (satisfiable goals — affinity
/// territory) and the goal-dense `goalfabric` fixture (sibling goals
/// sharing one frame — session-reuse territory), two seeded campaigns
/// per design fanned across the pool, then merges scope, profile,
/// cache and portfolio blocks in task order. Seeds are fixed per
/// campaign, so results are byte-identical at any `jobs` value.
pub fn solverscope_profile(
    max_vectors: u64,
    solver_budget_ceiling: u64,
    jobs: usize,
) -> Vec<ScopeProfileResult> {
    const RUNS_PER_DESIGN: usize = 2;
    let duvs = profile_duvs();
    let tasks: Vec<(usize, u64)> = (0..duvs.len())
        .flat_map(|i| (0..RUNS_PER_DESIGN as u64).map(move |r| (i, r)))
        .collect();
    let results = run_pool(&tasks, jobs, |task, &(i, r)| {
        let (_, design, props) = &duvs[i];
        let mut b = FuzzConfig::builder()
            .interval(100)
            .threshold(1)
            .max_vectors(max_vectors)
            .seed(0xB0D6E7 + r * 7919)
            .solver_budget(solver_budget_ceiling)
            .escalation_cap(1)
            .solver_introspection(true);
        b = apply_solver_knobs(b);
        let config = b.build().expect("scope profile config is consistent");
        let mut fuzzer = SymbFuzz::new(Arc::clone(design), Strategy::SymbFuzz, config, props)
            .expect("property compiles");
        attach_telemetry(&mut fuzzer, task);
        let result = fuzzer.run();
        fuzzer.emit_solver_metrics();
        fuzzer.telemetry().flush();
        result
    });
    duvs.iter()
        .enumerate()
        .map(|(i, (name, _, _))| {
            let slice = &results[i * RUNS_PER_DESIGN..(i + 1) * RUNS_PER_DESIGN];
            let scope =
                crate::pool::merge_solver_scopes(slice.iter().map(|r| r.solver_scope.as_ref()))
                    .unwrap_or_default();
            let profile =
                crate::pool::merge_solver_profiles(slice.iter().map(|r| &r.solver_profile));
            let solver_cache =
                crate::pool::merge_solver_caches(slice.iter().map(|r| r.solver_cache.as_ref()));
            let portfolio =
                crate::pool::merge_portfolios(slice.iter().map(|r| r.portfolio.as_ref()));
            // Join: a goal counts as exhausted when any attempt hit the
            // budget ceiling; it counts as attributed when its scope
            // row carries a non-empty blame set.
            let mut exhausted_goals = 0u64;
            let mut exhausted_blamed = 0u64;
            for g in profile.goals.iter().filter(|g| g.exhausted > 0) {
                exhausted_goals += 1;
                let blamed = scope
                    .goals
                    .iter()
                    .find(|s| s.register == g.register && s.value == g.value)
                    .is_some_and(|s| !s.blame.is_empty());
                if blamed {
                    exhausted_blamed += 1;
                }
            }
            ScopeProfileResult {
                design: name.to_string(),
                solver_budget: solver_budget_ceiling,
                campaigns: RUNS_PER_DESIGN as u64,
                exhausted_goals,
                exhausted_blamed,
                mean_adjacent_affinity_milli: scope.mean_adjacent_affinity_milli,
                scope,
                profile,
                solver_cache,
                portfolio,
            }
        })
        .collect()
}

/// One per-goal A/B row of the incremental-solver experiment: the
/// CDCL conflicts a goal cost per verdict under a cold solver versus
/// the warm cached session, joined on `(register, value)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverCacheRow {
    /// Target register name.
    pub register: String,
    /// Target value.
    pub value: u64,
    /// Cumulative conflicts in the baseline (cold-solver) arm.
    pub cold_conflicts: u64,
    /// Cumulative conflicts in the incremental arm.
    pub warm_conflicts: u64,
    /// Verdicts (sat + unsat) the baseline arm reached.
    pub cold_verdicts: u64,
    /// Verdicts the incremental arm reached.
    pub warm_verdicts: u64,
    /// Smoothed cold/warm conflicts-per-verdict ratio in milli
    /// (`(cold_cpv + 1) / (warm_cpv + 1) × 1000`; > 1000 means the
    /// warm session was cheaper).
    pub ratio_milli: u64,
}

/// One design's incremental-solver A/B result: the same deterministic
/// goal sweep solved twice — cold solver per query versus warm
/// incremental sessions + bitblast cache — per-goal conflict ratios,
/// and the geomean headline the PR's acceptance bar keys on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverCacheResult {
    /// DUV name (`goalfabric` or `ibex_like`).
    pub design: String,
    /// Per-query conflict ceiling both arms ran under.
    pub solver_budget: u64,
    /// Per-goal A/B rows (goals with a verdict in both arms), in
    /// sweep order.
    pub goals: Vec<SolverCacheRow>,
    /// Baseline conflicts per verdict across all joined goals, milli.
    pub cold_conflicts_per_verdict_milli: u64,
    /// Incremental conflicts per verdict across all joined goals, milli.
    pub warm_conflicts_per_verdict_milli: u64,
    /// Geometric mean of the per-goal smoothed ratios, in milli
    /// (≥ 2000 = the ≥ 2× reduction the acceptance bar requires).
    pub geomean_conflict_ratio_milli: u64,
    /// The warm arm's bitblast-cache block.
    pub cache: SolverCacheBlock,
    /// Reserved: the fixed sweep never races budget profiles (that
    /// would change the conflict accounting under test), so this stays
    /// `None`; campaign-level portfolio wins are reported by
    /// `solverscope` and the budget table instead.
    pub portfolio: Option<PortfolioBlock>,
}

/// Runs one design's cold-vs-warm sweep: the identical query sequence
/// against a fresh-per-query engine and a cache-armed engine.
fn sweep_solver_ab(
    name: &str,
    design: &Arc<Design>,
    stimulus_cycles: u64,
    ceiling: u64,
) -> SolverCacheResult {
    /// Depth ceiling of every query's geometric unroll schedule.
    const SWEEP_DEPTH: u32 = 4;
    // Start states: post-reset, plus a snapshot after a burst of
    // deterministic pseudo-random stimulus — deduped on the *register
    // projection* (the only part of a state the solver sees), because
    // random words never advance the fabric's lanes, and re-posing a
    // query from a register-identical state would hand the warm arm a
    // free assumption re-check for a goal no campaign would re-pose
    // (a reached value is no longer unseen).
    let reg_projection = |state: &[LogicVec]| -> Vec<LogicVec> {
        design
            .signals
            .iter()
            .zip(state.iter())
            .filter(|(s, _)| s.is_register)
            .map(|(_, v)| v.clone())
            .collect()
    };
    let mut sim = Simulator::new(Arc::clone(design));
    sim.reenter(Reentry::FullReset { cycles: 1 });
    let mut states: Vec<Vec<LogicVec>> = vec![sim.values().to_vec()];
    let width = design.fuzz_width();
    let mut lcg = 0xCAC4E5EEDu64;
    for _ in 0..stimulus_cycles.min(32) {
        let mut word = LogicVec::zeros(0);
        let mut remaining = width;
        while remaining > 0 {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let take = remaining.min(64);
            word = LogicVec::concat(&LogicVec::from_u64(take, lcg), &word);
            remaining -= take;
        }
        sim.apply_input_word(&word);
        sim.step();
    }
    let advanced = sim.values().to_vec();
    if reg_projection(&advanced) != reg_projection(&states[0]) {
        states.push(advanced);
    }
    // Goals: every control register × the values 1..=3 that fit its
    // width, register-major — sibling values of one register batch
    // consecutively, exactly how a guidance round poses them.
    let rc = classify_registers(design);
    let mut goals: Vec<(SignalId, u64)> = Vec::new();
    for &reg in &rc.control {
        let w = design.signal(reg).width;
        for v in 1..=3u64 {
            if w >= 64 || v < (1u64 << w) {
                goals.push((reg, v));
            }
        }
    }
    let budget = Budget::unlimited().with_conflicts(ceiling);
    let cold = SymbolicEngine::new(Arc::clone(design));
    let mut warm = SymbolicEngine::new(Arc::clone(design));
    warm.set_solver_cache(Some(solver_cache_budget().unwrap_or(16 << 20)));

    let mut tallies: Vec<(u64, u64, u64, u64)> = vec![(0, 0, 0, 0); goals.len()];
    for state in &states {
        for (k, &(reg, value)) in goals.iter().enumerate() {
            let w = design.signal(reg).width;
            let tgt = [(reg, LogicVec::from_u64(w, value))];
            let Ok((oc, sc)) = cold.solve_reach_profiled(state, &tgt, SWEEP_DEPTH, &budget) else {
                continue;
            };
            let Ok((ow, sw)) = warm.solve_reach_profiled(state, &tgt, SWEEP_DEPTH, &budget) else {
                continue;
            };
            let t = &mut tallies[k];
            t.0 += sc.spent.conflicts;
            t.1 += sw.spent.conflicts;
            t.2 += u64::from(matches!(oc.status(), SolveStatus::Sat | SolveStatus::Unsat));
            t.3 += u64::from(matches!(ow.status(), SolveStatus::Sat | SolveStatus::Unsat));
        }
    }

    let mut rows = Vec::new();
    for (k, &(reg, value)) in goals.iter().enumerate() {
        let (cold_conflicts, warm_conflicts, cold_verdicts, warm_verdicts) = tallies[k];
        if cold_verdicts == 0 || warm_verdicts == 0 {
            continue;
        }
        let cold_cpv = cold_conflicts as f64 / cold_verdicts as f64;
        let warm_cpv = warm_conflicts as f64 / warm_verdicts as f64;
        let ratio = (cold_cpv + 1.0) / (warm_cpv + 1.0);
        rows.push(SolverCacheRow {
            register: design.signal(reg).name.clone(),
            value,
            cold_conflicts,
            warm_conflicts,
            cold_verdicts,
            warm_verdicts,
            ratio_milli: (ratio * 1000.0).round() as u64,
        });
    }
    let cpv_milli = |pick: fn(&SolverCacheRow) -> (u64, u64)| {
        let (conflicts, verdicts) = rows.iter().fold((0u64, 0u64), |(c, v), g| {
            let (gc, gv) = pick(g);
            (c + gc, v + gv)
        });
        (conflicts * 1000).checked_div(verdicts).unwrap_or(0)
    };
    let geomean = if rows.is_empty() {
        1000
    } else {
        let sum_ln: f64 = rows
            .iter()
            .map(|g| (g.ratio_milli.max(1) as f64 / 1000.0).ln())
            .sum();
        ((sum_ln / rows.len() as f64).exp() * 1000.0).round() as u64
    };
    let stats = warm.cache_stats();
    SolverCacheResult {
        design: name.to_string(),
        solver_budget: ceiling,
        cold_conflicts_per_verdict_milli: cpv_milli(|g| (g.cold_conflicts, g.cold_verdicts)),
        warm_conflicts_per_verdict_milli: cpv_milli(|g| (g.warm_conflicts, g.warm_verdicts)),
        geomean_conflict_ratio_milli: geomean,
        goals: rows,
        cache: SolverCacheBlock {
            frame_hits: stats.frame_hits,
            frame_misses: stats.frame_misses,
            evictions: stats.evictions,
            goals: stats.goals,
            reused_goals: stats.reused_goals,
            reuse_milli: (stats.reused_goals * 1000)
                .checked_div(stats.goals)
                .unwrap_or(0),
        },
        portfolio: None,
    }
}

/// Incremental-solver A/B: poses the *identical* deterministic query
/// sequence twice per DUV — once against a baseline engine that
/// bit-blasts every exact-depth check from scratch, once against an
/// engine with incremental [`SolverSession`](symbfuzz_smt::SolverSession)s
/// and the byte-budgeted bitblast cache armed — and reports per-goal
/// conflicts-to-verdict ratios joined on `(register, value)`.
///
/// A campaign-level A/B cannot isolate the solver layer: warm sessions
/// legitimately return *different models* (same verdicts), so the two
/// campaigns inject different stimulus and diverge onto incomparable
/// goal sequences after the first solve. Holding the query script
/// fixed makes the solver the only variable. The script itself is
/// shaped like a guidance round — all sibling values of each control
/// register, batched register-major from a reachable state — and
/// never repeats an exact `(state, goal)` query, since the fuzzer's
/// negative cache would deduplicate those (a repeat would hand the
/// warm arm a free assumption re-check).
///
/// The DUVs are the goal-dense `goalfabric` (nested per-lane goals off
/// one shared multiplier — where warm sessions pay off) and the benign
/// `ibex_like` control (near-propagation goals — where session
/// overhead shows up honestly). `max_vectors` bounds the stimulus
/// burst that samples the second start state. Everything is
/// deterministic, so results are byte-identical at any `jobs` value.
pub fn solvercache_profile(
    max_vectors: u64,
    solver_budget_ceiling: u64,
    jobs: usize,
) -> Vec<SolverCacheResult> {
    let duvs = profile_duvs();
    // duvs[2] = goalfabric, duvs[1] = ibex_like.
    let picks = [2usize, 1];
    run_pool(&picks, jobs, |_task, &i| {
        let (name, design, _) = &duvs[i];
        sweep_solver_ab(name, design, max_vectors, solver_budget_ceiling)
    })
}

/// §5.2 resource profile: per-strategy resource stats on one
/// benchmark, one pool task per strategy.
pub fn resource_profile(
    bench_index: usize,
    budget: u64,
    jobs: usize,
) -> Vec<(String, CampaignResult)> {
    let b = &processor_benchmarks()[bench_index];
    let design = b.design().expect("benchmark elaborates");
    let props = b.property_specs();
    let strategies = Strategy::all();
    run_pool(&strategies, jobs, |task, s| {
        let r = run(Arc::clone(&design), *s, &props, budget, 0xCAB, task);
        (s.name().to_string(), r)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_smoke_detects_shallow_bugs() {
        // Bugs 7 and 10 are one-to-two-cycle triggers; a small budget
        // suffices and keeps the test fast.
        let rows = table1_rows(3_000, 4);
        assert_eq!(rows.len(), 14);
        let by_id = |id: u32| rows.iter().find(|r| r.id == id).unwrap();
        assert!(by_id(7).measured_vectors.is_some(), "bug 7 undetected");
        assert!(by_id(10).measured_vectors.is_some(), "bug 10 undetected");
    }

    #[test]
    fn detection_matrix_symbfuzz_dominates() {
        let m = detection_matrix(3, 4_000, 4);
        for r in &m.rows {
            assert!(r.symbfuzz, "SymbFuzz missed bug {}", r.id);
            // Baselines never beat their paper visibility gates.
            assert!(!r.rfuzz || r.paper.0);
            assert!(!r.difuzz || r.paper.1);
            assert!(!r.hwfp || r.paper.2);
        }
    }

    #[test]
    fn table3_reports_structure() {
        let rows = table3_rows(1_500, 2);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.loc > 20, "{} too small", r.name);
            assert!(r.dependency_eqns > 0);
            assert!(r.cfg_nodes > 1);
            assert!(r.latency_s > 0.0);
        }
    }

    #[test]
    fn coverage_race_orders_symbfuzz_first() {
        let race = coverage_race(0, 6_000, 42, 4);
        let sf = race.final_coverage("SymbFuzz").unwrap();
        let rnd = race.final_coverage("UVM-random").unwrap();
        assert!(sf >= rnd, "SymbFuzz {sf} < random {rnd}");
        assert_eq!(race.curves.len(), 5);
    }

    #[test]
    fn variance_profile_produces_window_points() {
        let pts = variance_profile(1, 2_000, 3, 4);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.vectors >= 800 && p.vectors <= 1_700);
            assert!(p.variance >= 0.0);
        }
    }

    /// The tentpole determinism guarantee: the rendered JSON report is
    /// byte-identical whether campaigns run on 1 thread or 8.
    #[test]
    fn reports_are_byte_identical_across_job_counts() {
        let serial = serde_json::to_string(&detection_matrix(2, 2_000, 1)).unwrap();
        let wide = serde_json::to_string(&detection_matrix(2, 2_000, 8)).unwrap();
        assert_eq!(serial, wide);

        let serial = serde_json::to_string(&coverage_race(1, 2_000, 7, 1)).unwrap();
        let wide = serde_json::to_string(&coverage_race(1, 2_000, 7, 8)).unwrap();
        assert_eq!(serial, wide);

        let serial = serde_json::to_string(&variance_profile(1, 1_500, 2, 1)).unwrap();
        let wide = serde_json::to_string(&variance_profile(1, 1_500, 2, 8)).unwrap();
        assert_eq!(serial, wide);
    }

    /// The PR's acceptance scenario: a 10k-conflict ceiling against
    /// the factoring lock terminates (no hang), records at least one
    /// `BudgetExhausted`, degrades to random mutation for the full
    /// vector budget, and renders byte-identically at any `--jobs`.
    #[test]
    fn budget_profile_degrades_and_is_deterministic_across_jobs() {
        let serial = serde_json::to_string(&budget_profile(&[10_000], 400, 1)).unwrap();
        let wide = serde_json::to_string(&budget_profile(&[10_000], 400, 4)).unwrap();
        assert_eq!(serial, wide);
        let rows: Vec<BudgetProfileRow> = serde_json::from_str(&serial).unwrap();
        assert_eq!(rows.len(), 3);
        let r = rows.iter().find(|r| r.design == "hard_factor").unwrap();
        assert_eq!(r.vectors, 400, "campaign must run to its full budget");
        assert!(r.budget_exhaustions >= 1, "no solve hit the ceiling: {r:?}");
        assert!(
            r.solve_outcomes
                .iter()
                .any(|(s, n)| s.starts_with("unknown:") && *n > 0),
            "no unknown outcome tallied: {r:?}"
        );
        assert!(r.coverage_points >= 1);
        // The benign control also terminates at its full budget.
        let ibex = rows.iter().find(|r| r.design == "ibex_like").unwrap();
        assert_eq!(ibex.vectors, 400);
    }

    /// The introspection acceptance scenario: against the factoring
    /// lock, (nearly) every exhausted goal must be attributed to a
    /// non-empty register blame set, and the profile — affinity matrix
    /// and blame sets included — must be byte-identical at `--jobs 1`
    /// and `--jobs 4`.
    #[test]
    fn solverscope_attributes_exhaustion_and_is_deterministic_across_jobs() {
        let serial = serde_json::to_string(&solverscope_profile(400, 500, 1)).unwrap();
        let wide = serde_json::to_string(&solverscope_profile(400, 500, 4)).unwrap();
        assert_eq!(serial, wide);
        let rows: Vec<ScopeProfileResult> = serde_json::from_str(&serial).unwrap();
        assert_eq!(rows.len(), 3);
        let hard = rows.iter().find(|r| r.design == "hard_factor").unwrap();
        assert!(
            hard.exhausted_goals >= 1,
            "no goal exhausted its budget: {hard:?}"
        );
        // ≥ 90 % of exhausted goals carry a non-empty blame set.
        assert!(
            hard.exhausted_blamed * 10 >= hard.exhausted_goals * 9,
            "attribution rate too low: {}/{}",
            hard.exhausted_blamed,
            hard.exhausted_goals
        );
        for g in hard.scope.goals.iter().filter(|g| !g.blame.is_empty()) {
            assert!(
                g.blame.windows(2).all(|w| w[0] < w[1]),
                "blame set not in sorted name order: {:?}",
                g.blame
            );
        }
        // The benign control reports cross-goal structural affinity.
        let ibex = rows.iter().find(|r| r.design == "ibex_like").unwrap();
        assert!(!ibex.scope.goals.is_empty());
        assert_eq!(
            ibex.mean_adjacent_affinity_milli,
            ibex.scope.mean_adjacent_affinity_milli
        );
        for g in &ibex.scope.goals {
            assert!(!g.sketch.is_empty(), "goal {} has no sketch", g.register);
        }
    }

    /// The incremental-solver acceptance scenario: the A/B joins at
    /// least one verdict-reaching goal per DUV, the warm arm reuses
    /// sessions on the goal-dense fabric, and the report is
    /// byte-identical at any `--jobs`.
    #[test]
    fn solvercache_profile_joins_goals_and_is_deterministic_across_jobs() {
        let serial = serde_json::to_string(&solvercache_profile(400, 20_000, 1)).unwrap();
        let wide = serde_json::to_string(&solvercache_profile(400, 20_000, 4)).unwrap();
        assert_eq!(serial, wide);
        let rows: Vec<SolverCacheResult> = serde_json::from_str(&serial).unwrap();
        assert_eq!(rows.len(), 2);
        let fabric = rows.iter().find(|r| r.design == "goalfabric").unwrap();
        assert!(!fabric.goals.is_empty(), "no joined goals: {fabric:?}");
        assert!(
            fabric.cache.goals > 0,
            "warm arm issued no cached checks: {:?}",
            fabric.cache
        );
        assert!(
            fabric.cache.reused_goals > 0,
            "warm arm never reused a session: {:?}",
            fabric.cache
        );
        for g in &fabric.goals {
            assert!(g.cold_verdicts > 0 && g.warm_verdicts > 0, "{g:?}");
            assert!(g.ratio_milli > 0, "{g:?}");
        }
    }

    #[test]
    fn speedup_has_random_baseline_of_one() {
        let s = speedup(3, 4_000, 4);
        let rnd = s.rows.iter().find(|(n, _, _)| n == "UVM-random").unwrap();
        assert!((rnd.2.unwrap() - 1.0).abs() < 1e-9);
        let sf = s.rows.iter().find(|(n, _, _)| n == "SymbFuzz").unwrap();
        assert!(sf.2.unwrap_or(0.0) >= 1.0, "SymbFuzz slower than random");
    }
}
