//! Experiment harness: regenerates every table and figure of the
//! SymbFuzz paper's evaluation (§5).
//!
//! Each experiment is a pure function returning a structured result
//! plus a Markdown rendering; the `src/bin/*` binaries print the
//! Markdown and drop a JSON copy under `results/`. The per-experiment
//! index lives in the repository's `DESIGN.md`; paper-vs-measured
//! numbers are recorded in `EXPERIMENTS.md`.
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — bugs detected by SymbFuzz with vectors-to-detection |
//! | `table2` | Table 2 — detection matrix across the four fuzzers |
//! | `table3` | Table 3 — benchmark statistics (LoC, CFG, equations, constraints) |
//! | `fig4a` | Figure 4a — coverage vs input vectors, five strategies |
//! | `fig4b` | Figure 4b — coverage variance across repeated runs |
//! | `speedup` | §5.3 — time-to-coverage speed-up vs UVM random |
//! | `resources` | §5.2 — relative memory/CPU profile + merged telemetry |
//! | `budgetbench` | coverage vs per-solve conflict budget on the factoring lock |
//! | `tracedump` | renders / validates / re-emits (`--json`) a `--trace-out` JSONL campaign trace |
//! | `covreport` | coverage-provenance report: covmaps + joined JSON + self-contained HTML |
//! | `monitor` | live dashboard / `--check` / Prometheus export over `status.json` + `flight.jsonl` |
//! | `solverscope` | solver introspection: CDCL cost ranking, exhaustion blame sets, goal-affinity heatmap |
//!
//! Every binary accepts a `--jobs N` (or `-j N`) flag that fans
//! independent campaigns across a scoped-thread pool; reports are
//! byte-identical for any job count (Table 3's wall-clock `latency_s`
//! excepted), so parallelism is purely a wall-clock optimisation.
//! They also accept `--log-level LEVEL` (stderr verbosity),
//! `--trace-out PATH` (stream a wall-clock JSONL campaign trace, see
//! [`trace`]), `--solver-budget N` (per-solve conflict ceiling with
//! graceful degradation to random mutation), `--solve-wall-ms N`
//! (per-solve wall-clock ceiling; non-deterministic), the flight
//! recorder's `--sample-every N` / `--flight-out PATH` /
//! `--status-out PATH` (see [`monitor`]), and the incremental-solver
//! knobs `--incremental` / `--solver-cache-budget BYTES` /
//! `--portfolio N` / `--affinity`; all are handled by
//! [`args::parse_bench_args`].
//!
//! # Examples
//!
//! ```
//! use symbfuzz_bench::experiments;
//! // A miniature Table 2 on the first two bugs only (fast), 2 workers.
//! let m = experiments::detection_matrix(2, 4_000, 2);
//! assert_eq!(m.rows.len(), 2);
//! assert!(m.rows.iter().all(|r| r.symbfuzz));
//! ```

pub mod args;
pub mod covreport;
pub mod experiments;
pub mod monitor;
pub mod pool;
pub mod render;
pub mod solverscope;
pub mod trace;

pub use args::{parse_bench_args, split_bench_args, BenchArgs};
pub use covreport::{
    build_report, render_html, render_markdown, trace_mechanism_counts, validate_covmap,
    validate_report, BugReport, ChainLink, CovReport, MechanismCount, StrategyReport,
    COVREPORT_VERSION,
};
pub use experiments::{
    affinity, budget_profile, coverage_race, detection_matrix, enable_tracing, flush_trace,
    incremental, introspection, portfolio, sampling, set_affinity, set_incremental,
    set_introspection, set_portfolio, set_sampling, set_solver_budget, set_solver_cache_budget,
    solver_cache_budget, solvercache_profile, solverscope_profile, table1_rows, table3_rows,
    tracing_enabled, variance_profile, BudgetProfileRow, DetectionRow, RaceResult,
    ScopeProfileResult, SolverCacheResult, SolverCacheRow, Table1Row, Table3Row, VariancePoint,
};
pub use monitor::{
    check_flight, check_status, parse_prometheus, render_dashboard, render_prometheus,
};
pub use pool::{
    default_jobs, merge_covmap_counts, merge_flight_rows, merge_portfolios, merge_solver_caches,
    merge_solver_profiles, merge_solver_scopes, merge_telemetry, merge_vm_profiles, parse_jobs,
    run_pool,
};
pub use solverscope::{
    build_scope_report, conflict_quantiles, render_scope_html, render_scope_markdown,
    validate_bench_artifact, validate_scope_report, ScopeReport, SCOPEREPORT_VERSION,
};
pub use trace::{
    goal_cost_table, parse_line, parse_trace, phase_table, solver_cache_table, timeline,
    to_json_lines, TraceRecord,
};
