//! Solver-introspection report: joins the merged per-goal CDCL scope
//! blocks and solver profiles of introspected campaigns into one
//! self-contained explainability artifact (JSON + HTML) — the engine
//! behind the `solverscope` binary.
//!
//! The report answers *where the solver budget went* (a cost ranking
//! with p50/p90/p99 per-call conflict quantiles), *why failed goals
//! failed* (assumption-core blame sets attributing `Unreachable` /
//! `Exhausted` outcomes to concrete state registers), *which goals
//! share structure* (the pairwise sketch-affinity heatmap), and *how
//! the search behaved over time* (restart timelines plus learned
//! clause size / LBD histograms). Everything derives from
//! deterministic campaign state, so the JSON and HTML bytes are
//! identical at any `--jobs` count.

use crate::experiments::ScopeProfileResult;
use serde::{Deserialize, Serialize, Value};
use symbfuzz_core::{ScopeGoalRow, SOLVERSCOPE_VERSION};
use symbfuzz_smt::{trace_hist_quantile, TRACE_HIST_BUCKETS};

/// Version stamp of the report schema (v2 added the per-design
/// `solver_cache` and `portfolio` blocks).
pub const SCOPEREPORT_VERSION: u32 = 2;

/// The joined solver-introspection report (versioned JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopeReport {
    /// Schema version ([`SCOPEREPORT_VERSION`]).
    pub version: u32,
    /// Input vectors per introspected campaign.
    pub max_vectors: u64,
    /// Per-solve conflict ceiling the campaigns ran under.
    pub solver_budget: u64,
    /// One entry per DUV, in [`crate::experiments::solverscope_profile`]
    /// order (`hard_factor` first, then the processor control, then
    /// the goal-dense fabric).
    pub designs: Vec<ScopeProfileResult>,
}

/// Builds the report by running the introspected campaign profile.
pub fn build_scope_report(max_vectors: u64, solver_budget: u64, jobs: usize) -> ScopeReport {
    ScopeReport {
        version: SCOPEREPORT_VERSION,
        max_vectors,
        solver_budget,
        designs: crate::experiments::solverscope_profile(max_vectors, solver_budget, jobs),
    }
}

/// `(p50, p90, p99)` of the per exact-depth-call conflict counts, read
/// off the row's log₄ histogram (upper bucket edges, so conservative).
pub fn conflict_quantiles(row: &ScopeGoalRow) -> (u64, u64, u64) {
    (
        trace_hist_quantile(&row.call_conflict_hist, 0.50),
        trace_hist_quantile(&row.call_conflict_hist, 0.90),
        trace_hist_quantile(&row.call_conflict_hist, 0.99),
    )
}

fn check_hist(h: &[u64], what: &str) -> Result<(), String> {
    if h.len() != TRACE_HIST_BUCKETS {
        return Err(format!(
            "{what}: {} histogram buckets (expected {TRACE_HIST_BUCKETS})",
            h.len()
        ));
    }
    Ok(())
}

/// Parses and schema-checks a report JSON document: version stamps,
/// square symmetric affinity matrices with a 1000-milli diagonal,
/// fixed histogram widths, sorted blame sets, and attribution tallies
/// that stay within their totals.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_scope_report(text: &str) -> Result<ScopeReport, String> {
    let r: ScopeReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if r.version != SCOPEREPORT_VERSION {
        return Err(format!(
            "report version {} (expected {SCOPEREPORT_VERSION})",
            r.version
        ));
    }
    for d in &r.designs {
        let scope = &d.scope;
        if scope.version != SOLVERSCOPE_VERSION {
            return Err(format!(
                "design `{}`: scope version {} (expected {SOLVERSCOPE_VERSION})",
                d.design, scope.version
            ));
        }
        if d.campaigns == 0 {
            return Err(format!("design `{}`: zero campaigns", d.design));
        }
        if d.exhausted_blamed > d.exhausted_goals {
            return Err(format!(
                "design `{}`: {} blamed of {} exhausted goals",
                d.design, d.exhausted_blamed, d.exhausted_goals
            ));
        }
        if d.mean_adjacent_affinity_milli != scope.mean_adjacent_affinity_milli {
            return Err(format!(
                "design `{}`: affinity summary {} disagrees with scope block {}",
                d.design, d.mean_adjacent_affinity_milli, scope.mean_adjacent_affinity_milli
            ));
        }
        let n = scope.affinity.len();
        if n > scope.goals.len() {
            return Err(format!(
                "design `{}`: {n}-row affinity over {} goals",
                d.design,
                scope.goals.len()
            ));
        }
        for (i, row) in scope.affinity.iter().enumerate() {
            if row.len() != n {
                return Err(format!(
                    "design `{}`: affinity row {i} has {} cells (expected {n})",
                    d.design,
                    row.len()
                ));
            }
            for (j, &a) in row.iter().enumerate() {
                if a > 1000 {
                    return Err(format!(
                        "design `{}`: affinity[{i}][{j}] = {a} exceeds 1000 milli",
                        d.design
                    ));
                }
                if i == j && a != 1000 {
                    return Err(format!(
                        "design `{}`: affinity diagonal [{i}] = {a} (expected 1000)",
                        d.design
                    ));
                }
                if scope.affinity[j][i] != a {
                    return Err(format!(
                        "design `{}`: affinity[{i}][{j}] asymmetric",
                        d.design
                    ));
                }
            }
        }
        for g in &scope.goals {
            let what = format!("design `{}` goal `{}`={}", d.design, g.register, g.value);
            check_hist(&g.learned_size_hist, &format!("{what} learned-size"))?;
            check_hist(&g.lbd_hist, &format!("{what} lbd"))?;
            check_hist(&g.call_conflict_hist, &format!("{what} call-conflict"))?;
            if g.blame.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("{what}: blame set not strictly sorted"));
            }
            if g.hot_signals.iter().any(|(_, p)| *p > 1000) {
                return Err(format!("{what}: hot-signal permille exceeds 1000"));
            }
            if g.conflict_depth_sum > 0 && g.conflicts == 0 {
                return Err(format!("{what}: conflict depth without conflicts"));
            }
        }
        if let Some(c) = &d.solver_cache {
            if c.reused_goals > c.goals {
                return Err(format!(
                    "design `{}`: {} reused of {} cached goals",
                    d.design, c.reused_goals, c.goals
                ));
            }
            if c.reuse_milli > 1000 {
                return Err(format!(
                    "design `{}`: session reuse {} exceeds 1000 milli",
                    d.design, c.reuse_milli
                ));
            }
        }
        if let Some(p) = &d.portfolio {
            if p.wins.len() != p.width as usize {
                return Err(format!(
                    "design `{}`: {} win tallies for portfolio width {}",
                    d.design,
                    p.wins.len(),
                    p.width
                ));
            }
            if p.wins.iter().sum::<u64>() > p.races {
                return Err(format!(
                    "design `{}`: more portfolio wins than races",
                    d.design
                ));
            }
        }
    }
    Ok(r)
}

// --- results/ bench-artifact schema checks -------------------------------

fn field<'a>(v: &'a Value, name: &str, what: &str) -> Result<&'a Value, String> {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{what}: missing field `{name}`")),
        _ => Err(format!("{what}: not a JSON object")),
    }
}

fn finite_num(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Num(n) if n.is_finite() => Ok(*n),
        _ => Err(format!("{what}: not a finite number")),
    }
}

fn check_rows<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], String> {
    match v {
        Value::Array(rows) if !rows.is_empty() => Ok(rows),
        Value::Array(_) => Err(format!("{what}: empty row list")),
        _ => Err(format!("{what}: not a JSON array")),
    }
}

/// Schema-checks one `results/BENCH_*.json` artifact by file stem:
/// each known benchmark family must carry its headline rows and
/// finite-positive throughput ratios; unknown `BENCH_` stems must at
/// least parse as non-null JSON.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_bench_artifact(stem: &str, text: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("{stem}: {e}"))?;
    match stem {
        "BENCH_telemetry" => {
            for row in check_rows(field(&v, "rows", stem)?, stem)? {
                let ratio = finite_num(field(row, "ratio", stem)?, stem)?;
                if ratio <= 0.0 {
                    return Err(format!("{stem}: non-positive sampling ratio {ratio}"));
                }
            }
            let g = finite_num(field(&v, "geomean_sampling_ratio", stem)?, stem)?;
            if g <= 0.0 {
                return Err(format!("{stem}: non-positive geomean {g}"));
            }
            // Introspection A/B rows are optional (older artifacts),
            // but when present they obey the same shape.
            if let Ok(rows) = field(&v, "introspection_rows", stem) {
                for row in check_rows(rows, stem)? {
                    let ratio = finite_num(field(row, "ratio", stem)?, stem)?;
                    if ratio <= 0.0 {
                        return Err(format!("{stem}: non-positive introspection ratio {ratio}"));
                    }
                }
                let g = finite_num(field(&v, "geomean_introspection_ratio", stem)?, stem)?;
                if g <= 0.0 {
                    return Err(format!("{stem}: non-positive introspection geomean {g}"));
                }
            }
        }
        "BENCH_budget" => {
            for row in check_rows(&v, stem)? {
                field(row, "design", stem)?;
                finite_num(field(row, "solver_budget", stem)?, stem)?;
            }
        }
        "BENCH_solvercache" => {
            for row in check_rows(&v, stem)? {
                field(row, "design", stem)?;
                let g = finite_num(field(row, "geomean_conflict_ratio_milli", stem)?, stem)?;
                if g <= 0.0 {
                    return Err(format!("{stem}: non-positive geomean ratio {g}"));
                }
                for goal in match field(row, "goals", stem)? {
                    Value::Array(goals) => goals.as_slice(),
                    _ => return Err(format!("{stem}: `goals` is not an array")),
                } {
                    field(goal, "register", stem)?;
                    let r = finite_num(field(goal, "ratio_milli", stem)?, stem)?;
                    if r <= 0.0 {
                        return Err(format!("{stem}: non-positive goal ratio {r}"));
                    }
                }
            }
        }
        "BENCH_sim" => {
            check_rows(field(&v, "rows", stem)?, stem)?;
        }
        "BENCH_snapshot" => {
            check_rows(field(&v, "micro", stem)?, stem)?;
        }
        _ => {
            if matches!(v, Value::Null) {
                return Err(format!("{stem}: null artifact"));
            }
        }
    }
    Ok(())
}

// --- rendering -----------------------------------------------------------

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

const PALETTE: [&str; 5] = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd"];

/// White→blue fill for one affinity cell, interpolated by milli.
fn heat_color(milli: u64) -> String {
    let t = milli.min(1000) as f64 / 1000.0;
    let lerp = |a: f64, b: f64| (a + (b - a) * t).round() as u8;
    // White (255,255,255) → the palette blue (31,119,180).
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(255.0, 31.0),
        lerp(255.0, 119.0),
        lerp(255.0, 180.0)
    )
}

/// The affinity heatmap as one inline SVG grid.
fn render_heatmap(d: &ScopeProfileResult) -> String {
    let n = d.scope.affinity.len();
    if n == 0 {
        return "<p>No affinity matrix (no introspected goals).</p>\n".to_string();
    }
    const CELL: f64 = 18.0;
    const ML: f64 = 120.0; // left margin (goal labels)
    const MT: f64 = 8.0;
    let w = ML + CELL * n as f64 + 8.0;
    let h = MT + CELL * n as f64 + 8.0;
    let mut out =
        format!("<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">\n");
    for (i, row) in d.scope.affinity.iter().enumerate() {
        let g = &d.scope.goals[i];
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" class=\"axis\">{}={}</text>\n",
            ML - 4.0,
            MT + CELL * i as f64 + CELL * 0.7,
            esc(&g.register),
            g.value
        ));
        for (j, &a) in row.iter().enumerate() {
            out.push_str(&format!(
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{CELL}\" height=\"{CELL}\" \
                 fill=\"{}\" stroke=\"#ddd\"><title>{}={} vs {}={}: {a}‰</title></rect>\n",
                ML + CELL * j as f64,
                MT + CELL * i as f64,
                heat_color(a),
                esc(&g.register),
                g.value,
                esc(&d.scope.goals[j].register),
                d.scope.goals[j].value
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Restart timelines of the costliest goals as one inline SVG: one
/// polyline per goal, x = restart index, y = conflicts at restart.
fn render_restart_curves(goals: &[&ScopeGoalRow]) -> String {
    let curves: Vec<&&ScopeGoalRow> = goals
        .iter()
        .filter(|g| g.restart_timeline.len() >= 2)
        .take(PALETTE.len())
        .collect();
    if curves.is_empty() {
        return "<p>No goal restarted more than once within its budget.</p>\n".to_string();
    }
    const W: f64 = 640.0;
    const H: f64 = 220.0;
    const ML: f64 = 52.0;
    const MB: f64 = 24.0;
    let max_x = curves
        .iter()
        .map(|g| g.restart_timeline.len() - 1)
        .max()
        .unwrap_or(1)
        .max(1);
    let max_y = curves
        .iter()
        .flat_map(|g| g.restart_timeline.iter().copied())
        .max()
        .unwrap_or(1)
        .max(1);
    let x = |i: usize| ML + (W - ML - 8.0) * i as f64 / max_x as f64;
    let y = |c: u64| (H - MB) - (H - MB - 8.0) * c as f64 / max_y as f64;
    let mut out = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\n\
         <rect x=\"{ML}\" y=\"8\" width=\"{:.1}\" height=\"{:.1}\" class=\"plot\"/>\n\
         <text x=\"{ML}\" y=\"{:.1}\" class=\"axis\">0</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">{max_x} restarts</text>\
         <text x=\"4\" y=\"16\" class=\"axis\">{max_y}</text>\
         <text x=\"4\" y=\"30\" class=\"axis\">confl</text>\n",
        W - ML - 8.0,
        H - MB - 8.0,
        H - 8.0,
        W - 110.0,
        H - 8.0,
    );
    for (i, g) in curves.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let points: Vec<String> = g
            .restart_timeline
            .iter()
            .enumerate()
            .map(|(i, &c)| format!("{:.1},{:.1}", x(i), y(c)))
            .collect();
        out.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            points.join(" ")
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\" class=\"axis\">{}={}</text>\n",
            ML + 6.0,
            20.0 + 13.0 * i as f64,
            esc(&g.register),
            g.value
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Upper edge label of log₄ bucket `i` (`0`, `3`, `15`, `63`, …).
fn bucket_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << (2 * i)).saturating_sub(1)
    }
}

fn render_learning_table(goals: &[&ScopeGoalRow]) -> String {
    let mut out = String::from("<table><tr><th>goal</th><th>learned</th><th>histogram</th>");
    for i in 0..TRACE_HIST_BUCKETS {
        out.push_str(&format!("<th>≤{}</th>", bucket_edge(i)));
    }
    out.push_str("</tr>\n");
    for g in goals.iter().filter(|g| g.learned > 0) {
        for (label, hist) in [("clause size", &g.learned_size_hist), ("LBD", &g.lbd_hist)] {
            out.push_str(&format!(
                "<tr><td><code>{}</code> = {}</td><td>{}</td><td>{label}</td>",
                esc(&g.register),
                g.value,
                g.learned
            ));
            for b in hist {
                out.push_str(&format!("<td>{b}</td>"));
            }
            out.push_str("</tr>\n");
        }
    }
    out.push_str("</table>\n");
    out
}

/// Renders the report as one self-contained HTML page: inline CSS,
/// inline SVG, no scripts, no external references.
pub fn render_scope_html(r: &ScopeReport) -> String {
    let mut out = format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>solverscope</title>\n<style>\n\
         body{{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:64em;color:#222}}\n\
         table{{border-collapse:collapse;margin:0.8em 0}}\n\
         th,td{{border:1px solid #bbb;padding:0.25em 0.6em;text-align:left}}\n\
         th{{background:#f0f0f0}}\n\
         .plot{{fill:#fafafa;stroke:#ccc}}\n\
         .axis{{font-size:11px;fill:#555}}\n\
         code{{background:#f4f4f4;padding:0 0.2em}}\n\
         </style></head><body>\n\
         <h1>Solver introspection report</h1>\n\
         <p>Schema v{v}; {n} designs, {b} vectors per campaign, \
         per-solve conflict ceiling {c}.</p>\n",
        v = r.version,
        n = r.designs.len(),
        b = r.max_vectors,
        c = r.solver_budget
    );

    for d in &r.designs {
        let pct = (d.exhausted_blamed * 100)
            .checked_div(d.exhausted_goals)
            .unwrap_or(100);
        out.push_str(&format!(
            "<h2><code>{}</code></h2>\n\
             <p>{} campaigns merged; {} of {} exhausted goals attributed to a \
             blame set ({pct}%); mean adjacent-goal affinity {:.3}.</p>\n",
            esc(&d.design),
            d.campaigns,
            d.exhausted_blamed,
            d.exhausted_goals,
            d.mean_adjacent_affinity_milli as f64 / 1000.0
        ));
        if let Some(c) = &d.solver_cache {
            out.push_str(&format!(
                "<p>Bitblast cache: {} frame hits / {} misses \
                 ({:.1}% hit rate), {} evictions; {} of {} goal checks \
                 answered on a warm session ({:.1}% reuse).</p>\n",
                c.frame_hits,
                c.frame_misses,
                c.hit_rate_milli() as f64 / 10.0,
                c.evictions,
                c.reused_goals,
                c.goals,
                c.reuse_milli as f64 / 10.0
            ));
        }
        if let Some(p) = &d.portfolio {
            let wins = p
                .wins
                .iter()
                .enumerate()
                .map(|(i, w)| format!("P{i}: {w}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "<p>Portfolio: {} races across {} budget profiles — wins {wins}.</p>\n",
                p.races, p.width
            ));
        }

        // Cost ranking: profile rows are already hardest-first; join
        // each with its scope row for quantiles and depth stats.
        out.push_str(
            "<h3>Cost ranking</h3>\n\
             <table><tr><th>goal</th><th>attempts</th><th>sat</th><th>unsat</th>\
             <th>exhausted</th><th>conflicts</th><th>learned</th><th>restarts</th>\
             <th>p50</th><th>p90</th><th>p99</th><th>depth μ/max</th>\
             <th>hottest signal</th></tr>\n",
        );
        for p in &d.profile.goals {
            let scope = d
                .scope
                .goals
                .iter()
                .find(|g| g.register == p.register && g.value == p.value);
            let (q, depth, restarts, learned, hot) = match scope {
                Some(g) => (
                    conflict_quantiles(g),
                    format!("{}/{}", g.mean_conflict_depth(), g.conflict_depth_max),
                    g.restarts,
                    g.learned,
                    g.hot_signals
                        .first()
                        .map(|(n, p)| format!("<code>{}</code> ({p}‰)", esc(n)))
                        .unwrap_or_else(|| "—".to_string()),
                ),
                None => ((0, 0, 0), "—".to_string(), 0, 0, "—".to_string()),
            };
            out.push_str(&format!(
                "<tr><td><code>{}</code> = {}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{learned}</td><td>{restarts}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{depth}</td><td>{hot}</td></tr>\n",
                esc(&p.register),
                p.value,
                p.attempts,
                p.sat,
                p.unsat,
                p.exhausted,
                p.conflicts,
                q.0,
                q.1,
                q.2,
            ));
        }
        out.push_str("</table>\n");

        out.push_str("<h3>Exhaustion blame sets</h3>\n");
        let blamed: Vec<&ScopeGoalRow> = d
            .scope
            .goals
            .iter()
            .filter(|g| !g.blame.is_empty())
            .collect();
        if blamed.is_empty() {
            out.push_str("<p>No failed goals — nothing to blame.</p>\n");
        } else {
            out.push_str(
                "<table><tr><th>goal</th><th>attempts</th>\
                 <th>blamed state registers</th></tr>\n",
            );
            for g in &blamed {
                let blame = g
                    .blame
                    .iter()
                    .map(|b| format!("<code>{}</code>", esc(b)))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "<tr><td><code>{}</code> = {}</td><td>{}</td><td>{blame}</td></tr>\n",
                    esc(&g.register),
                    g.value,
                    g.attempts
                ));
            }
            out.push_str("</table>\n");
        }

        out.push_str("<h3>Cross-goal affinity</h3>\n");
        out.push_str(&render_heatmap(d));

        // Costliest goals drive the curves, profile order (hardest first).
        let ranked: Vec<&ScopeGoalRow> = d
            .profile
            .goals
            .iter()
            .filter_map(|p| {
                d.scope
                    .goals
                    .iter()
                    .find(|g| g.register == p.register && g.value == p.value)
            })
            .collect();
        out.push_str("<h3>Restart timelines</h3>\n");
        out.push_str(&render_restart_curves(&ranked));
        out.push_str("<h3>Learned-clause histograms</h3>\n");
        out.push_str(&render_learning_table(&ranked));
    }

    out.push_str("</body></html>\n");
    out
}

/// Renders the report's Markdown summary (the `solverscope` binary's
/// stdout): one attribution line per design plus its cost head.
pub fn render_scope_markdown(r: &ScopeReport) -> String {
    let mut out = format!(
        "# Solver introspection — {} vectors, conflict ceiling {}\n\n\
         | design | campaigns | goals | exhausted | blamed | affinity | cache hit | reuse | portfolio wins |\n\
         |---|---|---|---|---|---|---|---|---|\n",
        r.max_vectors, r.solver_budget
    );
    for d in &r.designs {
        let (hit, reuse) = match &d.solver_cache {
            Some(c) => (
                format!("{:.1}%", c.hit_rate_milli() as f64 / 10.0),
                format!("{:.3}", c.reuse_milli as f64 / 1000.0),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let wins = match &d.portfolio {
            Some(p) => p
                .wins
                .iter()
                .enumerate()
                .map(|(i, w)| format!("P{i}:{w}"))
                .collect::<Vec<_>>()
                .join(" "),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.3} | {hit} | {reuse} | {wins} |\n",
            d.design,
            d.campaigns,
            d.scope.goals.len(),
            d.exhausted_goals,
            d.exhausted_blamed,
            d.mean_adjacent_affinity_milli as f64 / 1000.0
        ));
    }
    out.push('\n');
    for d in &r.designs {
        for p in d.profile.goals.iter().take(3) {
            let blame = d
                .scope
                .goals
                .iter()
                .find(|g| g.register == p.register && g.value == p.value)
                .map(|g| g.blame.join(", "))
                .unwrap_or_default();
            out.push_str(&format!(
                "* {}: `{}` = {} — {} conflicts over {} attempts{}\n",
                d.design,
                p.register,
                p.value,
                p.conflicts,
                p.attempts,
                if blame.is_empty() {
                    String::new()
                } else {
                    format!("; blames {blame}")
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_core::{GoalRow, SolverProfileBlock, SolverScopeBlock};

    fn row(register: &str, value: u64, blame: &[&str]) -> ScopeGoalRow {
        ScopeGoalRow {
            register: register.into(),
            value,
            attempts: 2,
            conflicts: 40,
            learned: 30,
            restarts: 3,
            learned_size_hist: vec![0; TRACE_HIST_BUCKETS],
            lbd_hist: vec![0; TRACE_HIST_BUCKETS],
            call_conflict_hist: {
                let mut h = vec![0; TRACE_HIST_BUCKETS];
                h[1] = 8; // eight calls with ≤3 conflicts
                h[3] = 2; // two calls with ≤63 conflicts
                h
            },
            restart_timeline: vec![16, 40, 90],
            conflict_depth_sum: 200,
            conflict_depth_max: 9,
            hot_signals: vec![("st".into(), 1000), ("lock".into(), 420)],
            blame: blame.iter().map(|s| s.to_string()).collect(),
            sketch: vec![1, 2, 3],
            depth: 4,
        }
    }

    fn tiny_report() -> ScopeReport {
        let mut scope = SolverScopeBlock {
            version: SOLVERSCOPE_VERSION,
            goals: vec![row("st", 3, &["lock", "st"]), row("st", 5, &[])],
            affinity: Vec::new(),
            mean_adjacent_affinity_milli: 0,
        };
        scope.recompute_affinity();
        let mean = scope.mean_adjacent_affinity_milli;
        let profile = SolverProfileBlock {
            goals: vec![GoalRow {
                register: "st".into(),
                value: 3,
                attempts: 2,
                sat: 0,
                unsat: 0,
                exhausted: 2,
                neg_cache_hits: 0,
                conflicts: 40,
                decisions: 80,
                propagations: 400,
                solver_calls: 10,
                deepest_unroll: 4,
                escalations: vec![0, 0],
            }],
            total_attempts: 2,
            total_neg_cache_hits: 0,
        };
        ScopeReport {
            version: SCOPEREPORT_VERSION,
            max_vectors: 1_000,
            solver_budget: 500,
            designs: vec![ScopeProfileResult {
                design: "hard_factor".into(),
                solver_budget: 500,
                campaigns: 2,
                exhausted_goals: 1,
                exhausted_blamed: 1,
                mean_adjacent_affinity_milli: mean,
                scope,
                profile,
                solver_cache: Some(symbfuzz_core::SolverCacheBlock {
                    frame_hits: 6,
                    frame_misses: 2,
                    evictions: 1,
                    goals: 10,
                    reused_goals: 8,
                    reuse_milli: 800,
                }),
                portfolio: Some(symbfuzz_core::PortfolioBlock {
                    width: 2,
                    races: 5,
                    wins: vec![3, 2],
                }),
            }],
        }
    }

    #[test]
    fn valid_report_round_trips() {
        let r = tiny_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = validate_scope_report(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&r).unwrap()
        );
    }

    #[test]
    fn validation_rejects_schema_violations() {
        let mut r = tiny_report();
        r.version = 99;
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json)
            .unwrap_err()
            .contains("version"));

        let mut r = tiny_report();
        r.designs[0].scope.affinity[0][1] = 1; // breaks symmetry
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json)
            .unwrap_err()
            .contains("asymmetric"));

        let mut r = tiny_report();
        r.designs[0].scope.goals[0].blame = vec!["st".into(), "lock".into()];
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json).unwrap_err().contains("sorted"));

        let mut r = tiny_report();
        r.designs[0].exhausted_blamed = 7;
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json).unwrap_err().contains("blamed"));

        let mut r = tiny_report();
        r.designs[0].scope.goals[0].lbd_hist.pop();
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json)
            .unwrap_err()
            .contains("buckets"));

        // v2 additions: cache reuse and portfolio tallies must be
        // internally consistent.
        let mut r = tiny_report();
        r.designs[0].solver_cache.as_mut().unwrap().reused_goals = 99;
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json).unwrap_err().contains("reused"));

        let mut r = tiny_report();
        r.designs[0].portfolio.as_mut().unwrap().wins = vec![3];
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json)
            .unwrap_err()
            .contains("win tallies"));

        let mut r = tiny_report();
        r.designs[0].portfolio.as_mut().unwrap().wins = vec![9, 9];
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_scope_report(&json)
            .unwrap_err()
            .contains("more portfolio wins"));
    }

    #[test]
    fn quantiles_read_log4_bucket_edges() {
        let g = row("st", 3, &[]);
        // 8 calls in bucket 1 (≤3), 2 in bucket 3 (≤63): p50 lands in
        // bucket 1; p90 (9th of 10) and p99 cross into bucket 3.
        assert_eq!(conflict_quantiles(&g), (3, 63, 63));
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let mut r = tiny_report();
        r.designs[0].scope.goals[0].hot_signals[0].0 = "a<b".into();
        let html = render_scope_html(&r);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "heatmap and curves are inline SVG");
        assert!(html.contains("a&lt;b"), "signal names must be escaped");
        assert!(html.contains("Exhaustion blame sets"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn markdown_summarises_attribution() {
        let md = render_scope_markdown(&tiny_report());
        // 6/8 frame hits = 75.0 %, 800 milli reuse, portfolio wins by
        // profile index.
        assert!(
            md.contains("| hard_factor | 2 | 2 | 1 | 1 | 1.000 | 75.0% | 0.800 | P0:3 P1:2 |"),
            "{md}"
        );
        assert!(md.contains("blames lock, st"));
    }

    #[test]
    fn bench_artifact_checks_cover_known_families() {
        let ok = r#"{"rows":[{"ratio":0.98}],"geomean_sampling_ratio":0.99}"#;
        assert!(validate_bench_artifact("BENCH_telemetry", ok).is_ok());
        let bad = r#"{"rows":[{"ratio":-1.0}],"geomean_sampling_ratio":0.99}"#;
        assert!(validate_bench_artifact("BENCH_telemetry", bad)
            .unwrap_err()
            .contains("non-positive"));
        let with_ab = r#"{"rows":[{"ratio":1.0}],"geomean_sampling_ratio":1.0,
            "introspection_rows":[{"ratio":0.97}],"geomean_introspection_ratio":0.97}"#;
        assert!(validate_bench_artifact("BENCH_telemetry", with_ab).is_ok());

        assert!(validate_bench_artifact(
            "BENCH_budget",
            r#"[{"design":"hard_factor","solver_budget":500}]"#
        )
        .is_ok());
        assert!(
            validate_bench_artifact("BENCH_budget", r#"[{"design":"x"}]"#)
                .unwrap_err()
                .contains("solver_budget")
        );
        let sc = r#"[{"design":"goalfabric","geomean_conflict_ratio_milli":2400,
            "goals":[{"register":"l0","ratio_milli":3100}]}]"#;
        assert!(validate_bench_artifact("BENCH_solvercache", sc).is_ok());
        let sc_bad = r#"[{"design":"goalfabric","geomean_conflict_ratio_milli":0,"goals":[]}]"#;
        assert!(validate_bench_artifact("BENCH_solvercache", sc_bad)
            .unwrap_err()
            .contains("non-positive geomean"));
        let sc_goal = r#"[{"design":"goalfabric","geomean_conflict_ratio_milli":1200,
            "goals":[{"register":"l0","ratio_milli":0}]}]"#;
        assert!(validate_bench_artifact("BENCH_solvercache", sc_goal)
            .unwrap_err()
            .contains("non-positive goal ratio"));

        assert!(validate_bench_artifact("BENCH_sim", r#"{"rows":[{"design":"a"}]}"#).is_ok());
        assert!(validate_bench_artifact("BENCH_snapshot", r#"{"micro":[{"x":1}]}"#).is_ok());
        assert!(validate_bench_artifact("BENCH_future", r#"{"anything":true}"#).is_ok());
        assert!(validate_bench_artifact("BENCH_future", "null").is_err());
    }
}
