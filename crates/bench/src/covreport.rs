//! Coverage-provenance report: joins per-strategy campaign results and
//! their embedded covmap artifacts into one self-contained
//! explainability artifact (JSON + HTML) — the engine behind the
//! `covreport` binary.
//!
//! The report answers, per strategy, *which mechanism earned which
//! coverage* (Fig. 4/5-style curves plus a per-mechanism attribution
//! table), *how each bug was reached* (Table 1-style rows with the
//! provenance chain of checkpoints behind the detecting input), *what
//! the checkpoint / partial-reset machinery saved* (§4.5 counters),
//! and *where the campaign is stuck* (the uncovered frontier with the
//! last blocking solve status). Everything derives from deterministic
//! campaign state, so the JSON and HTML bytes are identical at any
//! `--jobs` count.

use crate::trace::TraceRecord;
use serde::{Deserialize, Serialize};
use symbfuzz_core::{CampaignResult, CovMap, CoverageSample, FrontierRow, COVMAP_VERSION};
use symbfuzz_telemetry::{Mechanism, SolveStatus};

/// Version stamp of the report schema.
pub const COVREPORT_VERSION: u32 = 1;

/// Nodes/edges first covered by one [`Mechanism`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismCount {
    /// Mechanism name ([`Mechanism::name`]).
    pub mechanism: String,
    /// CFG nodes whose first visit this mechanism generated.
    pub nodes: u64,
    /// CFG edges whose first crossing this mechanism generated.
    pub edges: u64,
}

/// One strategy's coverage outcome with attribution and reset savings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    /// Strategy name.
    pub strategy: String,
    /// Input vectors consumed.
    pub vectors: u64,
    /// Distinct CFG nodes covered.
    pub nodes: u64,
    /// Distinct CFG edges covered.
    pub edges: u64,
    /// Fraction of the Eqn.-3 node population covered.
    pub node_coverage_ratio: f64,
    /// Fraction of the ordered-pair edge population covered.
    pub edge_coverage_ratio: f64,
    /// Per-mechanism attribution, in [`Mechanism::ALL`] order.
    pub mechanisms: Vec<MechanismCount>,
    /// Coverage curve samples (one per interval).
    pub series: Vec<CoverageSample>,
    /// Checkpoint rollbacks performed.
    pub rollbacks: u64,
    /// Full resets performed.
    pub full_resets: u64,
    /// Rollbacks served by a cached snapshot (no replay needed).
    pub snapshot_restores: u64,
    /// Cycles re-driven by reset-and-replay rollbacks.
    pub replayed_cycles: u64,
    /// Pages physically copied into the snapshot store at fork time.
    pub snapshot_pages_copied: u64,
    /// Pages shared with a snapshot-tree parent instead of copied.
    pub snapshot_pages_shared: u64,
    /// Copy-on-write sharing ratio ×1000: logical snapshot bytes over
    /// unique stored bytes at campaign end (1000 = no sharing).
    pub snapshot_sharing_milli: u64,
}

/// One link of a bug's provenance chain: a covered node and the
/// mechanism that first reached it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainLink {
    /// Dense CFG node id.
    pub node: u64,
    /// Input vectors consumed when the node was first covered.
    pub vector: u64,
    /// Mechanism of the first visit.
    pub mechanism: String,
    /// Goal id behind a solver-guided visit.
    pub goal: Option<u64>,
}

/// One detected bug with its full attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReport {
    /// Strategy that detected it.
    pub strategy: String,
    /// Violated property name.
    pub property: String,
    /// Input vectors to detection.
    pub vectors: u64,
    /// Simulation cycle of the first violation.
    pub cycle: u64,
    /// Mechanism that generated the detecting input word.
    pub mechanism: String,
    /// Goal id of the solve attempt (solver-guided detection only).
    pub goal: Option<u64>,
    /// Target register of that goal.
    pub goal_register: Option<String>,
    /// Target value of that goal.
    pub goal_value: Option<u64>,
    /// Solve status of that goal.
    pub goal_status: Option<String>,
    /// Checkpoint chain from the detection node back to reset, newest
    /// first (empty when the detection node is unknown).
    pub chain: Vec<ChainLink>,
}

/// The joined coverage-provenance report (versioned JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CovReport {
    /// Schema version ([`COVREPORT_VERSION`]).
    pub version: u32,
    /// Design name.
    pub design: String,
    /// Per-campaign input-vector budget.
    pub budget: u64,
    /// One entry per strategy, in campaign order.
    pub strategies: Vec<StrategyReport>,
    /// Every detected bug across all strategies, in campaign order.
    pub bugs: Vec<BugReport>,
    /// The SymbFuzz campaign's uncovered frontier.
    pub frontier: Vec<FrontierRow>,
    /// Per-mechanism coverage-event tallies from a joined JSONL trace
    /// (empty when no trace was supplied).
    pub trace: Vec<MechanismCount>,
}

fn mech_counts(m: &CovMap) -> Vec<MechanismCount> {
    m.mechanism_counts()
        .into_iter()
        .map(|(mechanism, nodes, edges)| MechanismCount {
            mechanism,
            nodes,
            edges,
        })
        .collect()
}

/// Joins per-strategy campaign results into a [`CovReport`]. The
/// frontier comes from the SymbFuzz campaign (the only strategy that
/// attempts symbolic goals); bug chains are reconstructed from each
/// campaign's own covmap.
pub fn build_report(design: &str, budget: u64, results: &[(String, CampaignResult)]) -> CovReport {
    let strategies = results
        .iter()
        .map(|(name, r)| {
            let counter = |n: &str| {
                r.telemetry
                    .counters
                    .iter()
                    .find(|(k, _)| k == n)
                    .map_or(0, |(_, v)| *v)
            };
            let gauge = |n: &str| {
                r.telemetry
                    .gauges
                    .iter()
                    .find(|(k, _)| k == n)
                    .map_or(0, |(_, v)| *v)
            };
            StrategyReport {
                strategy: name.clone(),
                vectors: r.vectors,
                nodes: r.nodes,
                edges: r.edges,
                node_coverage_ratio: r.node_coverage_ratio,
                edge_coverage_ratio: r.edge_coverage_ratio,
                mechanisms: mech_counts(&r.covmap),
                series: r.series.clone(),
                rollbacks: r.resources.rollbacks,
                full_resets: r.resources.full_resets,
                snapshot_restores: counter("snapshot_restores"),
                replayed_cycles: counter("replayed_cycles"),
                snapshot_pages_copied: r.resources.snapshot_pages_copied,
                snapshot_pages_shared: r.resources.snapshot_pages_shared,
                snapshot_sharing_milli: gauge("snapshot_sharing_milli"),
            }
        })
        .collect();
    let bugs = results
        .iter()
        .flat_map(|(name, r)| {
            r.bugs.iter().map(move |b| {
                let goal = b.goal.and_then(|g| r.covmap.goals.get(g as usize));
                BugReport {
                    strategy: name.clone(),
                    property: b.property.clone(),
                    vectors: b.vectors,
                    cycle: b.cycle,
                    mechanism: b.mechanism.clone(),
                    goal: b.goal,
                    goal_register: goal.map(|g| g.register.clone()),
                    goal_value: goal.map(|g| g.value),
                    goal_status: goal.map(|g| g.status.clone()),
                    chain: b
                        .node
                        .map(|n| {
                            r.covmap
                                .provenance_chain(n)
                                .iter()
                                .map(|nc| ChainLink {
                                    node: nc.id,
                                    vector: nc.provenance.vector,
                                    mechanism: nc.provenance.mechanism.clone(),
                                    goal: nc.provenance.goal,
                                })
                                .collect()
                        })
                        .unwrap_or_default(),
                }
            })
        })
        .collect();
    let frontier = results
        .iter()
        .find(|(n, _)| n == "SymbFuzz")
        .map(|(_, r)| r.covmap.frontier.clone())
        .unwrap_or_default();
    CovReport {
        version: COVREPORT_VERSION,
        design: design.to_string(),
        budget,
        strategies,
        bugs,
        frontier,
        trace: Vec::new(),
    }
}

/// Per-mechanism tallies of the `NodeCovered` / `EdgeCovered` records
/// in a parsed JSONL trace, in [`Mechanism::ALL`] order — the trace
/// join a [`CovReport`] carries as a cross-check of its covmaps.
pub fn trace_mechanism_counts(records: &[TraceRecord]) -> Vec<MechanismCount> {
    Mechanism::ALL
        .iter()
        .map(|m| MechanismCount {
            mechanism: m.name().to_string(),
            nodes: records
                .iter()
                .filter(|r| r.kind == "NodeCovered" && r.str("mechanism") == m.name())
                .count() as u64,
            edges: records
                .iter()
                .filter(|r| r.kind == "EdgeCovered" && r.str("mechanism") == m.name())
                .count() as u64,
        })
        .collect()
}

// --- schema validation ---------------------------------------------------

fn check_mechanism(name: &str, what: &str) -> Result<(), String> {
    if Mechanism::parse(name).is_none() {
        return Err(format!("{what}: unknown mechanism `{name}`"));
    }
    Ok(())
}

fn check_status(name: &str, what: &str) -> Result<(), String> {
    if name != "unattempted" && SolveStatus::parse(name).is_none() {
        return Err(format!("{what}: unknown solve status `{name}`"));
    }
    Ok(())
}

/// Parses and schema-checks a report JSON document: version stamp,
/// closed mechanism / solve-status vocabularies, per-strategy
/// mechanism lists in [`Mechanism::ALL`] order, and monotone coverage
/// series.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_report(text: &str) -> Result<CovReport, String> {
    let r: CovReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if r.version != COVREPORT_VERSION {
        return Err(format!(
            "report version {} (expected {COVREPORT_VERSION})",
            r.version
        ));
    }
    for s in &r.strategies {
        let want: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();
        let got: Vec<&str> = s.mechanisms.iter().map(|m| m.mechanism.as_str()).collect();
        if got != want {
            return Err(format!(
                "strategy `{}`: mechanisms {got:?} (expected {want:?})",
                s.strategy
            ));
        }
        let attributed: u64 = s.mechanisms.iter().map(|m| m.nodes).sum();
        if attributed != s.nodes {
            return Err(format!(
                "strategy `{}`: {attributed} attributed nodes of {}",
                s.strategy, s.nodes
            ));
        }
        if s.series.windows(2).any(|w| w[0].coverage > w[1].coverage) {
            return Err(format!(
                "strategy `{}`: coverage series regresses",
                s.strategy
            ));
        }
    }
    for b in &r.bugs {
        check_mechanism(&b.mechanism, &format!("bug `{}`", b.property))?;
        for l in &b.chain {
            check_mechanism(&l.mechanism, &format!("bug `{}` chain", b.property))?;
        }
        if let Some(status) = &b.goal_status {
            check_status(status, &format!("bug `{}` goal", b.property))?;
        }
    }
    for f in &r.frontier {
        check_status(&f.last_status, &format!("frontier `{}`", f.register))?;
    }
    for t in &r.trace {
        check_mechanism(&t.mechanism, "trace join")?;
    }
    Ok(r)
}

/// Parses and schema-checks a standalone covmap JSON artifact: version
/// stamp, closed vocabularies, in-range goal ids and edge endpoints.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_covmap(text: &str) -> Result<CovMap, String> {
    let m: CovMap = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if m.version != COVMAP_VERSION {
        return Err(format!(
            "covmap version {} (expected {COVMAP_VERSION})",
            m.version
        ));
    }
    let ngoals = m.goals.len() as u64;
    let nnodes = m.nodes.len() as u64;
    for n in &m.nodes {
        check_mechanism(&n.provenance.mechanism, &format!("node {}", n.id))?;
        if n.provenance.goal.is_some_and(|g| g >= ngoals) {
            return Err(format!("node {}: goal id out of range", n.id));
        }
    }
    for e in &m.edges {
        check_mechanism(&e.provenance.mechanism, &format!("edge {}", e.id))?;
        if e.src >= nnodes || e.dst >= nnodes {
            return Err(format!("edge {}: endpoint out of range", e.id));
        }
    }
    for g in &m.goals {
        check_status(&g.status, &format!("goal {}", g.id))?;
    }
    for f in &m.frontier {
        check_status(&f.last_status, &format!("frontier `{}`", f.register))?;
    }
    Ok(m)
}

// --- rendering -----------------------------------------------------------

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

const PALETTE: [&str; 5] = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd"];

/// The coverage-over-time chart as one inline SVG: one polyline per
/// strategy, Fig. 4/5-style.
fn render_svg(strategies: &[StrategyReport]) -> String {
    const W: f64 = 640.0;
    const H: f64 = 300.0;
    const ML: f64 = 46.0; // left margin (y labels)
    const MB: f64 = 28.0; // bottom margin (x labels)
    let max_x = strategies
        .iter()
        .flat_map(|s| s.series.iter().map(|p| p.vectors))
        .max()
        .unwrap_or(1)
        .max(1);
    let max_y = strategies
        .iter()
        .flat_map(|s| s.series.iter().map(|p| p.coverage))
        .max()
        .unwrap_or(1)
        .max(1);
    let x = |v: u64| ML + (W - ML - 8.0) * v as f64 / max_x as f64;
    let y = |c: u64| (H - MB) - (H - MB - 8.0) * c as f64 / max_y as f64;
    let mut out = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\">\n\
         <rect x=\"{ML}\" y=\"8\" width=\"{:.1}\" height=\"{:.1}\" class=\"plot\"/>\n",
        W - ML - 8.0,
        H - MB - 8.0
    );
    out.push_str(&format!(
        "<text x=\"{ML}\" y=\"{:.1}\" class=\"axis\">0</text>\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"axis\">{max_x} vectors</text>\
         <text x=\"4\" y=\"{:.1}\" class=\"axis\">{max_y}</text>\
         <text x=\"4\" y=\"{:.1}\" class=\"axis\">pts</text>\n",
        H - 8.0,
        W - 96.0,
        H - 8.0,
        16.0,
        30.0
    ));
    for (i, s) in strategies.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let points: Vec<String> = std::iter::once((0u64, 0u64))
            .chain(s.series.iter().map(|p| (p.vectors, p.coverage)))
            .map(|(v, c)| format!("{:.1},{:.1}", x(v), y(c)))
            .collect();
        out.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>\n",
            points.join(" ")
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{color}\" class=\"axis\">{}</text>\n",
            ML + 6.0,
            20.0 + 13.0 * i as f64,
            esc(&s.strategy)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the report as one self-contained HTML page: inline CSS,
/// inline SVG, no scripts, no external references.
pub fn render_html(r: &CovReport) -> String {
    let mut out = format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>covreport: {d}</title>\n<style>\n\
         body{{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}}\n\
         table{{border-collapse:collapse;margin:0.8em 0}}\n\
         th,td{{border:1px solid #bbb;padding:0.25em 0.6em;text-align:left}}\n\
         th{{background:#f0f0f0}}\n\
         .plot{{fill:#fafafa;stroke:#ccc}}\n\
         .axis{{font-size:11px;fill:#555}}\n\
         code{{background:#f4f4f4;padding:0 0.2em}}\n\
         </style></head><body>\n\
         <h1>Coverage provenance report — <code>{d}</code></h1>\n\
         <p>Schema v{v}; {n} strategies, {b} vectors each.</p>\n",
        d = esc(&r.design),
        v = r.version,
        n = r.strategies.len(),
        b = r.budget
    );

    out.push_str("<h2>Coverage over time</h2>\n");
    out.push_str(&render_svg(&r.strategies));

    out.push_str(
        "<h2>Mechanism attribution</h2>\n\
         <table><tr><th>strategy</th><th>nodes</th><th>edges</th><th>node ratio</th>\
         <th>edge ratio</th>",
    );
    for m in Mechanism::ALL {
        out.push_str(&format!("<th>{0} nodes</th><th>{0} edges</th>", m.name()));
    }
    out.push_str("</tr>\n");
    for s in &r.strategies {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td><td>{:.4}</td>",
            esc(&s.strategy),
            s.nodes,
            s.edges,
            s.node_coverage_ratio,
            s.edge_coverage_ratio
        ));
        for m in &s.mechanisms {
            out.push_str(&format!("<td>{}</td><td>{}</td>", m.nodes, m.edges));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");

    out.push_str("<h2>Bugs and their provenance chains</h2>\n");
    if r.bugs.is_empty() {
        out.push_str("<p>No property violations detected within the budget.</p>\n");
    } else {
        out.push_str(
            "<table><tr><th>strategy</th><th>property</th><th>vectors</th><th>cycle</th>\
             <th>mechanism</th><th>goal</th><th>provenance chain (newest first)</th></tr>\n",
        );
        for b in &r.bugs {
            let goal = match (&b.goal_register, b.goal_value, &b.goal_status) {
                (Some(reg), Some(v), Some(st)) => {
                    format!("<code>{}</code> = {v} ({st})", esc(reg))
                }
                _ => "—".to_string(),
            };
            let chain = if b.chain.is_empty() {
                "—".to_string()
            } else {
                b.chain
                    .iter()
                    .map(|l| {
                        let g = l.goal.map(|g| format!(" goal {g}")).unwrap_or_default();
                        format!("node {} ({}{g} @ {})", l.node, esc(&l.mechanism), l.vector)
                    })
                    .collect::<Vec<_>>()
                    .join(" ← ")
            };
            out.push_str(&format!(
                "<tr><td>{}</td><td><code>{}</code></td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&b.strategy),
                esc(&b.property),
                b.vectors,
                b.cycle,
                esc(&b.mechanism),
                goal,
                chain
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str(
        "<h2>Checkpoint and partial-reset savings</h2>\n\
         <table><tr><th>strategy</th><th>rollbacks</th><th>snapshot restores</th>\
         <th>replayed cycles</th><th>full resets</th><th>pages copied</th>\
         <th>pages shared</th><th>sharing ×</th></tr>\n",
    );
    for s in &r.strategies {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{:.2}</td></tr>\n",
            esc(&s.strategy),
            s.rollbacks,
            s.snapshot_restores,
            s.replayed_cycles,
            s.full_resets,
            s.snapshot_pages_copied,
            s.snapshot_pages_shared,
            s.snapshot_sharing_milli as f64 / 1000.0
        ));
    }
    out.push_str("</table>\n");

    out.push_str("<h2>Uncovered frontier (SymbFuzz)</h2>\n");
    if r.frontier.is_empty() {
        out.push_str("<p>No uncovered control-register values within the sampled window.</p>\n");
    } else {
        out.push_str(
            "<table><tr><th>register</th><th>unobserved value</th><th>solve attempts</th>\
             <th>last status</th></tr>\n",
        );
        for f in &r.frontier {
            out.push_str(&format!(
                "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&f.register),
                f.value,
                f.attempts,
                esc(&f.last_status)
            ));
        }
        out.push_str("</table>\n");
    }

    if !r.trace.is_empty() {
        out.push_str(
            "<h2>Trace cross-check</h2>\n\
             <p>Per-mechanism <code>NodeCovered</code> / <code>EdgeCovered</code> tallies \
             from the joined JSONL trace (all tasks).</p>\n\
             <table><tr><th>mechanism</th><th>node events</th><th>edge events</th></tr>\n",
        );
        for t in &r.trace {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                esc(&t.mechanism),
                t.nodes,
                t.edges
            ));
        }
        out.push_str("</table>\n");
    }

    out.push_str("</body></html>\n");
    out
}

/// Renders the report's Markdown summary (the `covreport` binary's
/// stdout): the attribution table plus one line per bug.
pub fn render_markdown(r: &CovReport) -> String {
    let mut out = format!(
        "# Coverage provenance — `{}` ({} vectors per strategy)\n\n\
         | strategy | nodes | edges | random n/e | solver n/e | replay n/e |\n\
         |---|---|---|---|---|---|\n",
        r.design, r.budget
    );
    for s in &r.strategies {
        out.push_str(&format!("| {} | {} | {} |", s.strategy, s.nodes, s.edges));
        for m in &s.mechanisms {
            out.push_str(&format!(" {}/{} |", m.nodes, m.edges));
        }
        out.push('\n');
    }
    out.push('\n');
    for b in &r.bugs {
        let chain = b
            .chain
            .iter()
            .map(|l| format!("{}({})", l.node, l.mechanism))
            .collect::<Vec<_>>()
            .join(" <- ");
        out.push_str(&format!(
            "* `{}` by {} at vector {} via {}; chain: {}\n",
            b.property,
            b.strategy,
            b.vectors,
            b.mechanism,
            if chain.is_empty() {
                "—".into()
            } else {
                chain
            }
        ));
    }
    out.push_str(&format!(
        "\n{} uncovered frontier values recorded for SymbFuzz.\n",
        r.frontier.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> CovReport {
        CovReport {
            version: COVREPORT_VERSION,
            design: "d".into(),
            budget: 100,
            strategies: vec![StrategyReport {
                strategy: "SymbFuzz".into(),
                vectors: 100,
                nodes: 2,
                edges: 1,
                node_coverage_ratio: 0.5,
                edge_coverage_ratio: 0.25,
                mechanisms: vec![
                    MechanismCount {
                        mechanism: "random".into(),
                        nodes: 1,
                        edges: 1,
                    },
                    MechanismCount {
                        mechanism: "solver".into(),
                        nodes: 1,
                        edges: 0,
                    },
                    MechanismCount {
                        mechanism: "replay".into(),
                        nodes: 0,
                        edges: 0,
                    },
                ],
                series: vec![
                    CoverageSample {
                        vectors: 50,
                        coverage: 2,
                    },
                    CoverageSample {
                        vectors: 100,
                        coverage: 3,
                    },
                ],
                rollbacks: 1,
                full_resets: 0,
                snapshot_restores: 1,
                replayed_cycles: 0,
                snapshot_pages_copied: 4,
                snapshot_pages_shared: 12,
                snapshot_sharing_milli: 4000,
            }],
            bugs: vec![BugReport {
                strategy: "SymbFuzz".into(),
                property: "p<q".into(),
                vectors: 60,
                cycle: 61,
                mechanism: "solver".into(),
                goal: Some(0),
                goal_register: Some("state".into()),
                goal_value: Some(3),
                goal_status: Some("sat".into()),
                chain: vec![ChainLink {
                    node: 1,
                    vector: 60,
                    mechanism: "solver".into(),
                    goal: Some(0),
                }],
            }],
            frontier: vec![FrontierRow {
                register: "state".into(),
                value: 7,
                attempts: 2,
                last_status: "unsat".into(),
            }],
            trace: Vec::new(),
        }
    }

    #[test]
    fn valid_report_round_trips() {
        let r = tiny_report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back = validate_report(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn validation_rejects_bad_vocabulary() {
        let mut r = tiny_report();
        r.bugs[0].mechanism = "luck".into();
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_report(&json).unwrap_err().contains("luck"));

        let mut r = tiny_report();
        r.frontier[0].last_status = "pending".into();
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_report(&json).is_err());

        let mut r = tiny_report();
        r.version = 99;
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_report(&json).unwrap_err().contains("version"));

        // Attribution must account for every covered node.
        let mut r = tiny_report();
        r.strategies[0].mechanisms[0].nodes = 5;
        let json = serde_json::to_string(&r).unwrap();
        assert!(validate_report(&json).unwrap_err().contains("attributed"));
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        let html = render_html(&tiny_report());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("p&lt;q"), "property name must be escaped");
        assert!(html.contains("node 1 (solver goal 0 @ 60)"));
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn markdown_summarises_bugs_and_frontier() {
        let md = render_markdown(&tiny_report());
        assert!(md.contains("| SymbFuzz | 2 | 1 | 1/1 | 1/0 | 0/0 |"));
        assert!(md.contains("`p<q` by SymbFuzz at vector 60 via solver"));
        assert!(md.contains("1 uncovered frontier values"));
    }

    #[test]
    fn trace_join_counts_mechanisms() {
        let text = "\
{\"t\":1,\"task\":0,\"kind\":\"NodeCovered\",\"node\":0,\"vector\":1,\
\"mechanism\":\"random\",\"goal\":null,\"checkpoint\":null}
{\"t\":2,\"task\":0,\"kind\":\"NodeCovered\",\"node\":1,\"vector\":2,\
\"mechanism\":\"solver\",\"goal\":0,\"checkpoint\":null}
{\"t\":3,\"task\":0,\"kind\":\"EdgeCovered\",\"edge\":0,\"src\":0,\"dst\":1,\
\"vector\":2,\"mechanism\":\"solver\"}
";
        let recs = crate::trace::parse_trace(text).unwrap();
        let counts = trace_mechanism_counts(&recs);
        assert_eq!(counts.len(), 3);
        assert_eq!((counts[0].nodes, counts[0].edges), (1, 0));
        assert_eq!((counts[1].nodes, counts[1].edges), (1, 1));
        assert_eq!((counts[2].nodes, counts[2].edges), (0, 0));
    }
}
