//! Property-based tests: on X-free values, `LogicVec` operations must
//! agree with plain two-state `u64` arithmetic; in the presence of X, the
//! algebraic dominance laws must hold.

use proptest::prelude::*;
use symbfuzz_logic::{Bit, LogicVec};

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn add_matches_u64(a: u64, b: u64, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let vb = LogicVec::from_u64(width, b & m);
        prop_assert_eq!(va.add(&vb).to_u64(), Some((a & m).wrapping_add(b & m) & m));
    }

    #[test]
    fn sub_matches_u64(a: u64, b: u64, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let vb = LogicVec::from_u64(width, b & m);
        prop_assert_eq!(va.sub(&vb).to_u64(), Some((a & m).wrapping_sub(b & m) & m));
    }

    #[test]
    fn mul_matches_u64(a: u64, b: u64, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let vb = LogicVec::from_u64(width, b & m);
        prop_assert_eq!(va.mul(&vb).to_u64(), Some((a & m).wrapping_mul(b & m) & m));
    }

    #[test]
    fn bitwise_matches_u64(a: u64, b: u64, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let vb = LogicVec::from_u64(width, b & m);
        prop_assert_eq!((&va & &vb).to_u64(), Some(a & b & m));
        prop_assert_eq!((&va | &vb).to_u64(), Some((a | b) & m));
        prop_assert_eq!((&va ^ &vb).to_u64(), Some((a ^ b) & m));
        prop_assert_eq!((!&va).to_u64(), Some(!a & m));
    }

    #[test]
    fn comparison_matches_u64(a: u64, b: u64, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let vb = LogicVec::from_u64(width, b & m);
        prop_assert_eq!(va.ult(&vb), Bit::from_bool((a & m) < (b & m)));
        prop_assert_eq!(va.logic_eq(&vb), Bit::from_bool((a & m) == (b & m)));
    }

    #[test]
    fn shift_matches_u64(a: u64, amt in 0u32..70, width in 1u32..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a & m);
        let expect_shl = if amt >= 64 { 0 } else { ((a & m) << amt) & m };
        let expect_shr = if amt >= 64 { 0 } else { (a & m) >> amt };
        prop_assert_eq!(va.shl(amt).to_u64(), Some(expect_shl));
        prop_assert_eq!(va.lshr(amt).to_u64(), Some(expect_shr));
    }

    #[test]
    fn concat_then_slice_round_trips(a: u64, b: u64, wa in 1u32..=32, wb in 1u32..=32) {
        let va = LogicVec::from_u64(wa, a & mask(wa));
        let vb = LogicVec::from_u64(wb, b & mask(wb));
        let c = LogicVec::concat(&va, &vb);
        prop_assert_eq!(c.width(), wa + wb);
        prop_assert!(c.slice(0, wb).case_eq(&vb));
        prop_assert!(c.slice(wb, wa).case_eq(&va));
    }

    #[test]
    fn reductions_match_u64(a: u64, width in 1u32..=64) {
        let m = mask(width);
        let v = LogicVec::from_u64(width, a & m);
        prop_assert_eq!(v.reduce_and(), Bit::from_bool(a & m == m));
        prop_assert_eq!(v.reduce_or(), Bit::from_bool(a & m != 0));
        prop_assert_eq!(v.reduce_xor(), Bit::from_bool((a & m).count_ones() % 2 == 1));
    }

    #[test]
    fn x_dominance_laws(a: u64, width in 1u32..=64) {
        let m = mask(width);
        let v = LogicVec::from_u64(width, a & m);
        let x = LogicVec::xes(width);
        // 0 & X = 0 where v is 0; elsewhere X.
        let and = &v & &x;
        let or = &v | &x;
        for i in 0..width {
            match v.bit(i) {
                Bit::Zero => {
                    prop_assert_eq!(and.bit(i), Bit::Zero);
                    prop_assert_eq!(or.bit(i), Bit::X);
                }
                Bit::One => {
                    prop_assert_eq!(and.bit(i), Bit::X);
                    prop_assert_eq!(or.bit(i), Bit::One);
                }
                _ => unreachable!(),
            }
        }
        // Arithmetic with X poisons everything.
        prop_assert!(v.add(&x).iter_bits().all(|b| b == Bit::X));
        prop_assert_eq!(v.logic_eq(&x), Bit::X);
    }

    #[test]
    fn literal_print_parse_round_trip(bits in proptest::collection::vec(0u8..4, 1..80)) {
        let bits: Vec<Bit> = bits.iter().map(|b| match b {
            0 => Bit::Zero,
            1 => Bit::One,
            2 => Bit::X,
            _ => Bit::Z,
        }).collect();
        let v = LogicVec::from_bits(&bits);
        let printed = format!("{v}");
        let reparsed = LogicVec::parse_literal(&printed).unwrap();
        prop_assert!(v.case_eq(&reparsed));
        prop_assert_eq!(v.width(), reparsed.width());
    }

    #[test]
    fn resize_preserves_low_bits(a: u64, w1 in 1u32..=64, w2 in 1u32..=96) {
        let v = LogicVec::from_u64(w1, a & mask(w1));
        let r = v.resized(w2);
        for i in 0..w1.min(w2) {
            prop_assert_eq!(r.bit(i), v.bit(i));
        }
        for i in w1.min(w2)..w2 {
            prop_assert_eq!(r.bit(i), Bit::Zero);
        }
    }
}
