//! Scalar four-state logic bit.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A single four-state logic value.
///
/// Encoding follows the VPI `aval`/`bval` convention used by
/// [`LogicVec`](crate::LogicVec): a (value, unknown) pair where
/// `(0,0) = 0`, `(1,0) = 1`, `(0,1) = Z`, `(1,1) = X`.
///
/// # Examples
///
/// ```
/// use symbfuzz_logic::Bit;
/// assert_eq!(Bit::Zero & Bit::X, Bit::Zero); // 0 dominates AND
/// assert_eq!(Bit::One | Bit::X, Bit::One);   // 1 dominates OR
/// assert_eq!(!Bit::Z, Bit::X);               // Z degrades to X
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown value.
    X,
    /// High impedance.
    Z,
}

impl Bit {
    /// Returns `true` for `X` or `Z` (any non-two-state value).
    pub fn is_unknown(self) -> bool {
        matches!(self, Bit::X | Bit::Z)
    }

    /// Interprets the bit as a boolean, if it has a defined value.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            _ => None,
        }
    }

    /// Builds a bit from a boolean.
    pub fn from_bool(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// The (value, unknown) plane pair for this bit.
    pub(crate) fn planes(self) -> (bool, bool) {
        match self {
            Bit::Zero => (false, false),
            Bit::One => (true, false),
            Bit::Z => (false, true),
            Bit::X => (true, true),
        }
    }

    /// Reconstructs a bit from its (value, unknown) plane pair.
    pub(crate) fn from_planes(val: bool, unk: bool) -> Bit {
        match (val, unk) {
            (false, false) => Bit::Zero,
            (true, false) => Bit::One,
            (false, true) => Bit::Z,
            (true, true) => Bit::X,
        }
    }

    /// The character used in Verilog source and VCD files.
    pub fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        }
    }

    /// Parses a Verilog bit character (case-insensitive, `?` is `Z`).
    pub fn from_char(c: char) -> Option<Bit> {
        match c.to_ascii_lowercase() {
            '0' => Some(Bit::Zero),
            '1' => Some(Bit::One),
            'x' => Some(Bit::X),
            'z' | '?' => Some(Bit::Z),
            _ => None,
        }
    }
}

impl fmt::Debug for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        Bit::from_bool(b)
    }
}

impl BitAnd for Bit {
    type Output = Bit;
    fn bitand(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        }
    }
}

impl BitOr for Bit {
    type Output = Bit;
    fn bitor(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        }
    }
}

impl BitXor for Bit {
    type Output = Bit;
    fn bitxor(self, rhs: Bit) -> Bit {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Bit::from_bool(a ^ b),
            _ => Bit::X,
        }
    }
}

impl Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            _ => Bit::X,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Bit; 4] = [Bit::Zero, Bit::One, Bit::X, Bit::Z];

    #[test]
    fn and_truth_table() {
        assert_eq!(Bit::Zero & Bit::X, Bit::Zero);
        assert_eq!(Bit::X & Bit::Zero, Bit::Zero);
        assert_eq!(Bit::One & Bit::One, Bit::One);
        assert_eq!(Bit::One & Bit::X, Bit::X);
        assert_eq!(Bit::Z & Bit::One, Bit::X);
        assert_eq!(Bit::X & Bit::X, Bit::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Bit::One | Bit::X, Bit::One);
        assert_eq!(Bit::X | Bit::One, Bit::One);
        assert_eq!(Bit::Zero | Bit::Zero, Bit::Zero);
        assert_eq!(Bit::Zero | Bit::X, Bit::X);
        assert_eq!(Bit::Z | Bit::Zero, Bit::X);
    }

    #[test]
    fn xor_poisons_on_unknown() {
        for b in ALL {
            if b.is_unknown() {
                assert_eq!(Bit::One ^ b, Bit::X);
                assert_eq!(b ^ Bit::Zero, Bit::X);
            }
        }
        assert_eq!(Bit::One ^ Bit::One, Bit::Zero);
        assert_eq!(Bit::One ^ Bit::Zero, Bit::One);
    }

    #[test]
    fn not_table() {
        assert_eq!(!Bit::Zero, Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
        assert_eq!(!Bit::X, Bit::X);
        assert_eq!(!Bit::Z, Bit::X);
    }

    #[test]
    fn planes_round_trip() {
        for b in ALL {
            let (v, u) = b.planes();
            assert_eq!(Bit::from_planes(v, u), b);
        }
    }

    #[test]
    fn char_round_trip() {
        for b in ALL {
            assert_eq!(Bit::from_char(b.to_char()), Some(b));
        }
        assert_eq!(Bit::from_char('?'), Some(Bit::Z));
        assert_eq!(Bit::from_char('q'), None);
    }

    #[test]
    fn kleene_ops_commute() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a & b, b & a);
                assert_eq!(a | b, b | a);
                assert_eq!(a ^ b, b ^ a);
            }
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                // Z degrades to X under any operator, so normalise both
                // sides through an op before comparing.
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }
}
