//! Parsing of Verilog-style sized literals into [`LogicVec`].

use crate::{Bit, LogicVec};
use std::fmt;

/// Error returned when a Verilog literal cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLiteralError {
    text: String,
    reason: &'static str,
}

impl ParseLiteralError {
    fn new(text: &str, reason: &'static str) -> ParseLiteralError {
        ParseLiteralError {
            text: text.to_string(),
            reason,
        }
    }
}

impl fmt::Display for ParseLiteralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid verilog literal `{}`: {}",
            self.text, self.reason
        )
    }
}

impl std::error::Error for ParseLiteralError {}

impl LogicVec {
    /// Parses a Verilog literal: `4'b10x0`, `16'hdead`, `8'd255`, `12'o777`,
    /// a bare decimal (`42`, 32 bits), or the unsized fills `'0`, `'1`,
    /// `'x`, `'z` (one bit wide; callers resize to context width).
    ///
    /// Underscores are ignored. Digits beyond the stated width are
    /// rejected; literals narrower than the stated width zero-extend
    /// (x/z-extend if the leading digit is `x`/`z`, per IEEE 1800).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLiteralError`] for malformed bases, digits that do
    /// not fit the base, zero widths, or overflowing values.
    ///
    /// # Examples
    ///
    /// ```
    /// use symbfuzz_logic::LogicVec;
    /// assert_eq!(LogicVec::parse_literal("16'hBEEF")?.to_u64(), Some(0xBEEF));
    /// assert_eq!(LogicVec::parse_literal("8'd200")?.to_u64(), Some(200));
    /// assert!(LogicVec::parse_literal("4'b1xz0")?.has_unknown());
    /// # Ok::<(), symbfuzz_logic::ParseLiteralError>(())
    /// ```
    pub fn parse_literal(text: &str) -> Result<LogicVec, ParseLiteralError> {
        let raw = text.trim();
        let cleaned: String = raw.chars().filter(|c| *c != '_').collect();
        let s = cleaned.as_str();

        if let Some(rest) = s.strip_prefix('\'') {
            // Unsized fill literal: '0 '1 'x 'z
            let mut chars = rest.chars();
            let (Some(c), None) = (chars.next(), chars.next()) else {
                return Err(ParseLiteralError::new(raw, "malformed fill literal"));
            };
            let bit =
                Bit::from_char(c).ok_or(ParseLiteralError::new(raw, "unknown fill character"))?;
            return Ok(LogicVec::from_bit(bit));
        }

        let Some(tick) = s.find('\'') else {
            // Bare decimal, 32 bits per the LRM.
            let v: u64 = s
                .parse()
                .map_err(|_| ParseLiteralError::new(raw, "not a decimal number"))?;
            if v > u32::MAX as u64 {
                return Err(ParseLiteralError::new(raw, "bare decimal exceeds 32 bits"));
            }
            return Ok(LogicVec::from_u64(32, v));
        };

        let width: u32 = s[..tick]
            .parse()
            .map_err(|_| ParseLiteralError::new(raw, "invalid width"))?;
        if width == 0 {
            return Err(ParseLiteralError::new(raw, "zero width"));
        }
        let rest = &s[tick + 1..];
        let mut chars = rest.chars();
        let base = chars
            .next()
            .ok_or(ParseLiteralError::new(raw, "missing base"))?
            .to_ascii_lowercase();
        let digits: String = chars.collect();
        if digits.is_empty() {
            return Err(ParseLiteralError::new(raw, "missing digits"));
        }

        let bits_per_digit = match base {
            'b' => 1,
            'o' => 3,
            'h' => 4,
            'd' => {
                let v: u64 = digits
                    .parse()
                    .map_err(|_| ParseLiteralError::new(raw, "invalid decimal digits"))?;
                if width < 64 && v >= (1u64 << width) {
                    return Err(ParseLiteralError::new(raw, "value exceeds width"));
                }
                return Ok(LogicVec::from_u64(width, v));
            }
            _ => return Err(ParseLiteralError::new(raw, "unknown base")),
        };

        let mut bits: Vec<Bit> = Vec::new();
        for c in digits.chars().rev() {
            match Bit::from_char(c) {
                // x/z digit: fills the whole digit with x/z
                Some(b) if b.is_unknown() => {
                    for _ in 0..bits_per_digit {
                        bits.push(b);
                    }
                }
                _ => {
                    let d = c
                        .to_digit(16)
                        .ok_or(ParseLiteralError::new(raw, "invalid digit"))?;
                    if d >= (1 << bits_per_digit) {
                        return Err(ParseLiteralError::new(raw, "digit exceeds base"));
                    }
                    for i in 0..bits_per_digit {
                        bits.push(Bit::from_bool((d >> i) & 1 == 1));
                    }
                }
            }
        }
        // Extension rule: leading x/z extends, otherwise zero-extend.
        let fill = match bits.last() {
            Some(b) if b.is_unknown() => *b,
            _ => Bit::Zero,
        };
        while (bits.len() as u32) < width {
            bits.push(fill);
        }
        if bits.len() as u32 > width {
            for b in bits.drain(width as usize..) {
                if b != Bit::Zero && b != fill {
                    return Err(ParseLiteralError::new(raw, "value exceeds width"));
                }
            }
        }
        Ok(LogicVec::from_bits(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_literals() {
        let v = LogicVec::parse_literal("4'b1010").unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.to_u64(), Some(0b1010));
    }

    #[test]
    fn hex_and_octal() {
        assert_eq!(
            LogicVec::parse_literal("16'hdead").unwrap().to_u64(),
            Some(0xdead)
        );
        assert_eq!(
            LogicVec::parse_literal("9'o777").unwrap().to_u64(),
            Some(0o777)
        );
    }

    #[test]
    fn decimal_sized_and_bare() {
        assert_eq!(
            LogicVec::parse_literal("8'd255").unwrap().to_u64(),
            Some(255)
        );
        let bare = LogicVec::parse_literal("42").unwrap();
        assert_eq!(bare.width(), 32);
        assert_eq!(bare.to_u64(), Some(42));
    }

    #[test]
    fn underscores_ignored() {
        assert_eq!(
            LogicVec::parse_literal("16'b1010_0101_0011_1100")
                .unwrap()
                .to_u64(),
            Some(0b1010_0101_0011_1100)
        );
    }

    #[test]
    fn x_and_z_digits() {
        let v = LogicVec::parse_literal("4'b1x0z").unwrap();
        assert_eq!(v.bit(3), Bit::One);
        assert_eq!(v.bit(2), Bit::X);
        assert_eq!(v.bit(1), Bit::Zero);
        assert_eq!(v.bit(0), Bit::Z);
        // A hex x digit fills 4 bits.
        let h = LogicVec::parse_literal("8'hxF").unwrap();
        assert_eq!(h.slice(0, 4).to_u64(), Some(0xF));
        assert!(h.slice(4, 4).iter_bits().all(|b| b == Bit::X));
    }

    #[test]
    fn leading_x_extends() {
        let v = LogicVec::parse_literal("8'bx1").unwrap();
        assert_eq!(v.bit(0), Bit::One);
        assert!((1..8).all(|i| v.bit(i) == Bit::X));
        let z = LogicVec::parse_literal("8'bz").unwrap();
        assert!(z.iter_bits().all(|b| b == Bit::Z));
        // Leading 0/1 zero-extends.
        let p = LogicVec::parse_literal("8'b11").unwrap();
        assert_eq!(p.to_u64(), Some(3));
    }

    #[test]
    fn fill_literals() {
        assert_eq!(LogicVec::parse_literal("'0").unwrap().bit(0), Bit::Zero);
        assert_eq!(LogicVec::parse_literal("'1").unwrap().bit(0), Bit::One);
        assert_eq!(LogicVec::parse_literal("'x").unwrap().bit(0), Bit::X);
        assert_eq!(LogicVec::parse_literal("'z").unwrap().bit(0), Bit::Z);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "4'q1010", "0'b1", "4'b", "'ab", "4'b12", "2'd9", "xyz", "4'd999",
        ] {
            assert!(LogicVec::parse_literal(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn overflow_digits_rejected_unless_zero() {
        assert!(LogicVec::parse_literal("4'b11111").is_err());
        // Extra zero digits are fine.
        assert_eq!(
            LogicVec::parse_literal("4'b00001111").unwrap().to_u64(),
            Some(15)
        );
    }
}
