//! Four-state logic values for RTL simulation.
//!
//! Hardware simulation distinguishes four scalar states: `0`, `1`, `X`
//! (unknown) and `Z` (high impedance). Registers without reset circuitry
//! power up as `X`, and the SymbFuzz paper relies on four-state semantics
//! both for register initialisation (§4.4) and for detecting bugs such as
//! an FSM entering an undefined state (Bug 2). This crate provides the
//! scalar type [`Bit`] and the packed vector type [`LogicVec`] with
//! Verilog-conformant operator semantics (IEEE 1800 §11.4): bitwise
//! operators use Kleene logic, arithmetic and relational operators
//! X-poison the whole result when any input bit is unknown, and `Z`
//! degrades to `X` when it participates in any computation.
//!
//! # Examples
//!
//! ```
//! use symbfuzz_logic::{Bit, LogicVec};
//!
//! let a = LogicVec::parse_literal("4'b10x0").unwrap();
//! assert_eq!(a.bit(1), Bit::X);
//! let b = LogicVec::from_u64(4, 0b0110);
//! // 0 & X == 0, so the X at index 1 survives only where b is 1:
//! assert_eq!((&a & &b).bit(1), Bit::X);
//! assert_eq!((&a & &b).bit(0), Bit::Zero);
//! ```

mod bit;
mod parse;
mod vec;

pub use bit::Bit;
pub use parse::ParseLiteralError;
pub use vec::LogicVec;
