//! Packed four-state bit vectors.

use crate::Bit;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-width vector of four-state bits, bit 0 being the LSB.
///
/// Bits are stored in two planes of 64-bit words: `val` and `unk`. For a
/// bit position, `(val, unk)` encodes `(0,0) = 0`, `(1,0) = 1`,
/// `(0,1) = Z`, `(1,1) = X`. Bits at or above [`width`](Self::width) are
/// kept zero in both planes.
///
/// Operator semantics follow IEEE 1800: bitwise operators apply Kleene
/// logic per bit; arithmetic, relational and shift-by-vector operations
/// produce an all-`X` (respectively `X`) result when any participating bit
/// is `X` or `Z`.
///
/// Derived `PartialEq`/`Eq`/`Hash` implement *case* equality (`===`):
/// `X` compares equal to `X`. Use [`logic_eq`](Self::logic_eq) for the
/// Verilog `==` operator which yields `X` in the presence of unknowns.
///
/// # Examples
///
/// ```
/// use symbfuzz_logic::LogicVec;
/// let a = LogicVec::from_u64(8, 200);
/// let b = LogicVec::from_u64(8, 100);
/// assert_eq!(a.add(&b).to_u64(), Some(44)); // wraps at 8 bits
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    val: Vec<u64>,
    unk: Vec<u64>,
}

fn nwords(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

fn top_mask(width: u32) -> u64 {
    let rem = width % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl LogicVec {
    /// Creates a vector of `width` copies of `fill`.
    pub fn filled(width: u32, fill: Bit) -> LogicVec {
        let n = nwords(width);
        let (v, u) = fill.planes();
        let mut out = LogicVec {
            width,
            val: vec![if v { u64::MAX } else { 0 }; n],
            unk: vec![if u { u64::MAX } else { 0 }; n],
        };
        out.normalize();
        out
    }

    /// All-zero vector.
    pub fn zeros(width: u32) -> LogicVec {
        LogicVec {
            width,
            val: vec![0; nwords(width)],
            unk: vec![0; nwords(width)],
        }
    }

    /// All-ones vector.
    pub fn ones(width: u32) -> LogicVec {
        LogicVec::filled(width, Bit::One)
    }

    /// All-`X` vector — the power-up state of an unreset register.
    pub fn xes(width: u32) -> LogicVec {
        LogicVec::filled(width, Bit::X)
    }

    /// Builds a vector from the low `width` bits of `value`.
    pub fn from_u64(width: u32, value: u64) -> LogicVec {
        let mut out = LogicVec::zeros(width);
        if !out.val.is_empty() {
            out.val[0] = value;
            if width < 64 {
                out.val[0] &= top_mask(width.min(64));
            }
        }
        out
    }

    /// Builds a vector from bits given LSB-first.
    pub fn from_bits(bits: &[Bit]) -> LogicVec {
        let mut out = LogicVec::zeros(bits.len() as u32);
        for (i, b) in bits.iter().enumerate() {
            out.set_bit(i as u32, *b);
        }
        out
    }

    /// Builds a single-bit vector.
    pub fn from_bit(b: Bit) -> LogicVec {
        LogicVec::from_bits(&[b])
    }

    /// The number of bits in the vector.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn normalize(&mut self) {
        if let Some(last) = self.val.last_mut() {
            *last &= top_mask(self.width);
        }
        if let Some(last) = self.unk.last_mut() {
            *last &= top_mask(self.width);
        }
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn bit(&self, index: u32) -> Bit {
        assert!(
            index < self.width,
            "bit index {index} out of range 0..{}",
            self.width
        );
        let w = (index / 64) as usize;
        let b = index % 64;
        Bit::from_planes((self.val[w] >> b) & 1 == 1, (self.unk[w] >> b) & 1 == 1)
    }

    /// Writes the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set_bit(&mut self, index: u32, bit: Bit) {
        assert!(
            index < self.width,
            "bit index {index} out of range 0..{}",
            self.width
        );
        let w = (index / 64) as usize;
        let b = index % 64;
        let (v, u) = bit.planes();
        self.val[w] = (self.val[w] & !(1 << b)) | ((v as u64) << b);
        self.unk[w] = (self.unk[w] & !(1 << b)) | ((u as u64) << b);
    }

    /// Returns `true` if any bit is `X` or `Z`.
    pub fn has_unknown(&self) -> bool {
        self.unk.iter().any(|&w| w != 0)
    }

    /// The value as a `u64`, if fully defined and at most 64 bits wide.
    pub fn to_u64(&self) -> Option<u64> {
        if self.has_unknown() {
            return None;
        }
        if self.val.iter().skip(1).any(|&w| w != 0) {
            return None;
        }
        Some(self.val.first().copied().unwrap_or(0))
    }

    /// The low 64 bits with `X`/`Z` bits read as `0`.
    ///
    /// Useful for hashing coverage tuples where unknowns must map to a
    /// stable bucket.
    pub fn to_u64_x_as_zero(&self) -> u64 {
        let v = self.val.first().copied().unwrap_or(0);
        let u = self.unk.first().copied().unwrap_or(0);
        v & !u
    }

    /// The low word of the value plane, raw. For a vector of width
    /// ≤ 64 with [`unk_word`](Self::unk_word) zero this *is* the
    /// two-state value — the packed view the compiled simulation
    /// kernel computes on directly.
    #[inline]
    pub fn word(&self) -> u64 {
        self.val.first().copied().unwrap_or(0)
    }

    /// The low word of the unknown plane. Zero means the low 64 bits
    /// are fully two-state (no `X`/`Z`).
    #[inline]
    pub fn unk_word(&self) -> u64 {
        self.unk.first().copied().unwrap_or(0)
    }

    /// Overwrites the low word of both planes in place, masking both
    /// to the vector width. Intended for vectors of width ≤ 64 (wider
    /// vectors would keep their upper words untouched).
    #[inline]
    pub fn set_word(&mut self, val: u64, unk: u64) {
        debug_assert!(self.width <= 64, "set_word on a {}-bit vector", self.width);
        let m = top_mask(self.width.min(64));
        if let Some(v) = self.val.first_mut() {
            *v = val & m;
        }
        if let Some(u) = self.unk.first_mut() {
            *u = unk & m;
        }
    }

    /// Extracts up to 64 bits of both planes starting at `lo` as packed
    /// words `(val, unk)` — the allocation-free equivalent of
    /// `slice(lo, width)` for word-sized spans, crossing storage-word
    /// boundaries as needed.
    ///
    /// # Panics
    ///
    /// Debug-asserts `width <= 64` and `lo + width <= self.width`.
    #[inline]
    pub fn extract_word(&self, lo: u32, width: u32) -> (u64, u64) {
        debug_assert!((1..=64).contains(&width), "extract_word of {width} bits");
        debug_assert!(
            lo + width <= self.width,
            "extract_word [{lo}+:{width}] out of range 0..{}",
            self.width
        );
        let wi = (lo / 64) as usize;
        let sh = lo % 64;
        let m = top_mask(width);
        let grab = |plane: &[u64]| {
            let low = plane.get(wi).copied().unwrap_or(0) >> sh;
            let high = if sh == 0 {
                0
            } else {
                plane.get(wi + 1).copied().unwrap_or(0) << (64 - sh)
            };
            (low | high) & m
        };
        (grab(&self.val), grab(&self.unk))
    }

    /// Iterates over bits LSB-first.
    pub fn iter_bits(&self) -> impl Iterator<Item = Bit> + '_ {
        (0..self.width).map(|i| self.bit(i))
    }

    /// Zero-extends or truncates to `width`.
    pub fn resized(&self, width: u32) -> LogicVec {
        let mut out = LogicVec::zeros(width);
        let n = out.val.len().min(self.val.len());
        out.val[..n].copy_from_slice(&self.val[..n]);
        out.unk[..n].copy_from_slice(&self.unk[..n]);
        out.normalize();
        out
    }

    /// Extracts `width` bits starting at bit `lo` (a Verilog part-select
    /// `self[lo+width-1 : lo]`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector width.
    pub fn slice(&self, lo: u32, width: u32) -> LogicVec {
        assert!(
            lo + width <= self.width,
            "slice [{}+:{}] out of range 0..{}",
            lo,
            width,
            self.width
        );
        let mut out = LogicVec::zeros(width);
        for i in 0..width {
            out.set_bit(i, self.bit(lo + i));
        }
        out
    }

    /// Concatenates `{hi, lo}` — `hi` occupies the most significant bits.
    pub fn concat(hi: &LogicVec, lo: &LogicVec) -> LogicVec {
        let mut out = LogicVec::zeros(hi.width + lo.width);
        for i in 0..lo.width {
            out.set_bit(i, lo.bit(i));
        }
        for i in 0..hi.width {
            out.set_bit(lo.width + i, hi.bit(i));
        }
        out
    }

    /// Repeats the vector `n` times (`{n{self}}`).
    pub fn replicate(&self, n: u32) -> LogicVec {
        let mut out = LogicVec::zeros(0);
        for _ in 0..n {
            out = LogicVec::concat(&out, self);
        }
        out
    }

    /// Z-as-X normalised planes: returns (val | unk, unk) word pairs.
    fn norm_planes(&self) -> (Vec<u64>, &[u64]) {
        let v: Vec<u64> = self
            .val
            .iter()
            .zip(&self.unk)
            .map(|(&v, &u)| v | u)
            .collect();
        (v, &self.unk)
    }

    fn binary_widths(a: &LogicVec, b: &LogicVec) -> u32 {
        a.width.max(b.width)
    }

    /// Two's-complement negation; all-`X` if any bit is unknown.
    pub fn neg(&self) -> LogicVec {
        LogicVec::zeros(self.width).sub(self)
    }

    /// Wrapping addition at the wider operand's width.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(self, rhs);
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(w);
        }
        let a = self.resized(w);
        let b = rhs.resized(w);
        let mut out = LogicVec::zeros(w);
        let mut carry = 0u64;
        for i in 0..out.val.len() {
            let (s1, c1) = a.val[i].overflowing_add(b.val[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.val[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping subtraction at the wider operand's width.
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(self, rhs);
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(w);
        }
        let a = self.resized(w);
        let b = rhs.resized(w);
        let mut out = LogicVec::zeros(w);
        let mut borrow = 0u64;
        for i in 0..out.val.len() {
            let (d1, b1) = a.val[i].overflowing_sub(b.val[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.val[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping multiplication at the wider operand's width.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(self, rhs);
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::xes(w);
        }
        let a = self.resized(w);
        let b = rhs.resized(w);
        let n = a.val.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur = acc[i + j] as u128 + (a.val[i] as u128) * (b.val[j] as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = LogicVec::zeros(w);
        out.val.copy_from_slice(&acc);
        out.normalize();
        out
    }

    /// Logical equality (`==`): `X` if either operand has unknown bits.
    pub fn logic_eq(&self, rhs: &LogicVec) -> Bit {
        if self.has_unknown() || rhs.has_unknown() {
            return Bit::X;
        }
        let w = Self::binary_widths(self, rhs);
        Bit::from_bool(self.resized(w).val == rhs.resized(w).val)
    }

    /// Case equality (`===`): exact four-state comparison after
    /// zero-extension to the wider width.
    pub fn case_eq(&self, rhs: &LogicVec) -> bool {
        let w = Self::binary_widths(self, rhs);
        let a = self.resized(w);
        let b = rhs.resized(w);
        a.val == b.val && a.unk == b.unk
    }

    /// Unsigned less-than: `X` if either operand has unknown bits.
    pub fn ult(&self, rhs: &LogicVec) -> Bit {
        if self.has_unknown() || rhs.has_unknown() {
            return Bit::X;
        }
        let w = Self::binary_widths(self, rhs);
        let a = self.resized(w);
        let b = rhs.resized(w);
        for i in (0..a.val.len()).rev() {
            if a.val[i] != b.val[i] {
                return Bit::from_bool(a.val[i] < b.val[i]);
            }
        }
        Bit::Zero
    }

    /// Unsigned less-than-or-equal.
    pub fn ule(&self, rhs: &LogicVec) -> Bit {
        match (self.ult(rhs), self.logic_eq(rhs)) {
            (Bit::X, _) | (_, Bit::X) => Bit::X,
            (lt, eq) => Bit::from_bool(lt == Bit::One || eq == Bit::One),
        }
    }

    /// AND-reduction over all bits.
    pub fn reduce_and(&self) -> Bit {
        self.iter_bits().fold(Bit::One, |acc, b| acc & b)
    }

    /// OR-reduction over all bits.
    pub fn reduce_or(&self) -> Bit {
        self.iter_bits().fold(Bit::Zero, |acc, b| acc | b)
    }

    /// XOR-reduction over all bits.
    pub fn reduce_xor(&self) -> Bit {
        self.iter_bits().fold(Bit::Zero, |acc, b| acc ^ b)
    }

    /// Truthiness for conditions: `|self`, i.e. `X` only when no bit is a
    /// definite `1` and at least one bit is unknown.
    pub fn to_condition(&self) -> Bit {
        self.reduce_or()
    }

    /// Logical shift left by a constant amount (width preserved).
    pub fn shl(&self, amount: u32) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..self.width.saturating_sub(amount) {
            out.set_bit(i + amount, self.bit(i));
        }
        out
    }

    /// Logical shift right by a constant amount (width preserved).
    pub fn lshr(&self, amount: u32) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in amount..self.width {
            out.set_bit(i - amount, self.bit(i));
        }
        out
    }

    /// Shift left by a vector amount; all-`X` if the amount is unknown.
    pub fn shl_vec(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.shl(n.min(self.width as u64) as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Shift right by a vector amount; all-`X` if the amount is unknown.
    pub fn lshr_vec(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.lshr(n.min(self.width as u64) as u32),
            None => LogicVec::xes(self.width),
        }
    }

    /// Renders as a binary digit string, MSB first.
    pub fn to_bin_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| self.bit(i).to_char())
            .collect()
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_bin_string())
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

macro_rules! impl_bitwise {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl $trait for &LogicVec {
            type Output = LogicVec;
            fn $method(self, rhs: &LogicVec) -> LogicVec {
                LogicVec::$impl_fn(self, rhs)
            }
        }
        impl $trait for LogicVec {
            type Output = LogicVec;
            fn $method(self, rhs: LogicVec) -> LogicVec {
                LogicVec::$impl_fn(&self, &rhs)
            }
        }
    };
}

impl LogicVec {
    fn bitand_impl(a: &LogicVec, b: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(a, b);
        let a = a.resized(w);
        let b = b.resized(w);
        let (av, au) = a.norm_planes();
        let (bv, bu) = b.norm_planes();
        let mut out = LogicVec::zeros(w);
        for i in 0..out.val.len() {
            out.val[i] = av[i] & bv[i];
            out.unk[i] = (au[i] | bu[i]) & av[i] & bv[i];
        }
        out.normalize();
        out
    }

    fn bitor_impl(a: &LogicVec, b: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(a, b);
        let a = a.resized(w);
        let b = b.resized(w);
        let (av, au) = a.norm_planes();
        let (bv, bu) = b.norm_planes();
        let mut out = LogicVec::zeros(w);
        for i in 0..out.val.len() {
            let strong1 = (av[i] & !au[i]) | (bv[i] & !bu[i]);
            out.unk[i] = (au[i] | bu[i]) & !strong1;
            out.val[i] = av[i] | bv[i] | out.unk[i];
        }
        out.normalize();
        out
    }

    fn bitxor_impl(a: &LogicVec, b: &LogicVec) -> LogicVec {
        let w = Self::binary_widths(a, b);
        let a = a.resized(w);
        let b = b.resized(w);
        let mut out = LogicVec::zeros(w);
        for i in 0..out.val.len() {
            out.unk[i] = a.unk[i] | b.unk[i];
            out.val[i] = (a.val[i] ^ b.val[i]) | out.unk[i];
        }
        out.normalize();
        out
    }
}

impl_bitwise!(BitAnd, bitand, bitand_impl);
impl_bitwise!(BitOr, bitor, bitor_impl);
impl_bitwise!(BitXor, bitxor, bitxor_impl);

impl Not for &LogicVec {
    type Output = LogicVec;
    fn not(self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..out.val.len() {
            out.unk[i] = self.unk[i];
            out.val[i] = !self.val[i] | self.unk[i];
        }
        out.normalize();
        out
    }
}

impl Not for LogicVec {
    type Output = LogicVec;
    fn not(self) -> LogicVec {
        !&self
    }
}

impl Default for LogicVec {
    /// A single `X` bit — the power-up value of an unreset scalar.
    fn default() -> LogicVec {
        LogicVec::xes(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = LogicVec::from_u64(8, 0b1010_0110);
        assert_eq!(v.width(), 8);
        assert_eq!(v.bit(0), Bit::Zero);
        assert_eq!(v.bit(1), Bit::One);
        assert_eq!(v.bit(7), Bit::One);
        assert_eq!(v.to_u64(), Some(0b1010_0110));
    }

    #[test]
    fn xes_are_unknown() {
        let v = LogicVec::xes(130);
        assert!(v.has_unknown());
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.bit(129), Bit::X);
    }

    #[test]
    fn wide_vectors_mask_top_word() {
        let v = LogicVec::ones(70);
        assert_eq!(v.bit(69), Bit::One);
        assert_eq!(v.iter_bits().filter(|b| *b == Bit::One).count(), 70);
    }

    #[test]
    fn set_bit_round_trip() {
        let mut v = LogicVec::zeros(100);
        v.set_bit(99, Bit::X);
        v.set_bit(50, Bit::Z);
        v.set_bit(0, Bit::One);
        assert_eq!(v.bit(99), Bit::X);
        assert_eq!(v.bit(50), Bit::Z);
        assert_eq!(v.bit(0), Bit::One);
        assert_eq!(v.bit(1), Bit::Zero);
    }

    #[test]
    fn add_wraps() {
        let a = LogicVec::from_u64(8, 250);
        let b = LogicVec::from_u64(8, 10);
        assert_eq!(a.add(&b).to_u64(), Some(4));
    }

    #[test]
    fn add_multiword_carry() {
        let a = LogicVec::ones(128);
        let b = LogicVec::from_u64(128, 1);
        let s = a.add(&b);
        assert_eq!(s.to_u64_x_as_zero(), 0);
        assert!(s.iter_bits().all(|b| b == Bit::Zero));
    }

    #[test]
    fn sub_and_neg() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 7);
        assert_eq!(a.sub(&b).to_u64(), Some(254));
        assert_eq!(b.neg().to_u64(), Some(249));
    }

    #[test]
    fn mul_wraps_at_width() {
        let a = LogicVec::from_u64(8, 20);
        let b = LogicVec::from_u64(8, 20);
        assert_eq!(a.mul(&b).to_u64(), Some(400 % 256));
    }

    #[test]
    fn arithmetic_poisons_on_x() {
        let a = LogicVec::xes(8);
        let b = LogicVec::from_u64(8, 1);
        assert!(a.add(&b).iter_bits().all(|x| x == Bit::X));
        assert!(b.sub(&a).iter_bits().all(|x| x == Bit::X));
        assert!(a.mul(&b).iter_bits().all(|x| x == Bit::X));
    }

    #[test]
    fn bitwise_kleene_per_bit() {
        let a = LogicVec::from_bits(&[Bit::Zero, Bit::One, Bit::X, Bit::Z]);
        let b = LogicVec::from_bits(&[Bit::X, Bit::X, Bit::Zero, Bit::One]);
        let and = &a & &b;
        assert_eq!(and.bit(0), Bit::Zero);
        assert_eq!(and.bit(1), Bit::X);
        assert_eq!(and.bit(2), Bit::Zero);
        assert_eq!(and.bit(3), Bit::X);
        let or = &a | &b;
        assert_eq!(or.bit(0), Bit::X);
        assert_eq!(or.bit(1), Bit::One);
        assert_eq!(or.bit(2), Bit::X);
        assert_eq!(or.bit(3), Bit::One);
        let xor = &a ^ &b;
        assert_eq!(xor.bit(0), Bit::X);
        assert_eq!(xor.bit(3), Bit::X);
        assert_eq!(
            (&LogicVec::from_u64(2, 0b01) ^ &LogicVec::from_u64(2, 0b11)).to_u64(),
            Some(0b10)
        );
    }

    #[test]
    fn not_maps_z_to_x() {
        let a = LogicVec::from_bits(&[Bit::Zero, Bit::One, Bit::X, Bit::Z]);
        let n = !&a;
        assert_eq!(n.bit(0), Bit::One);
        assert_eq!(n.bit(1), Bit::Zero);
        assert_eq!(n.bit(2), Bit::X);
        assert_eq!(n.bit(3), Bit::X);
    }

    #[test]
    fn equality_semantics() {
        let a = LogicVec::from_u64(4, 5);
        let b = LogicVec::from_u64(4, 5);
        let x = LogicVec::parse_literal("4'b01x1").unwrap();
        assert_eq!(a.logic_eq(&b), Bit::One);
        assert_eq!(a.logic_eq(&x), Bit::X);
        assert!(x.case_eq(&x));
        assert!(!x.case_eq(&a));
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 3);
        let b = LogicVec::from_u64(8, 200);
        assert_eq!(a.ult(&b), Bit::One);
        assert_eq!(b.ult(&a), Bit::Zero);
        assert_eq!(a.ule(&a), Bit::One);
        assert_eq!(a.ult(&LogicVec::xes(8)), Bit::X);
    }

    #[test]
    fn widening_comparison_zero_extends() {
        let a = LogicVec::from_u64(4, 9);
        let b = LogicVec::from_u64(8, 9);
        assert_eq!(a.logic_eq(&b), Bit::One);
        assert_eq!(a.ult(&LogicVec::from_u64(8, 200)), Bit::One);
    }

    #[test]
    fn reductions() {
        assert_eq!(LogicVec::from_u64(4, 0b1111).reduce_and(), Bit::One);
        assert_eq!(LogicVec::from_u64(4, 0b1101).reduce_and(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(4, 0).reduce_or(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(4, 0b0100).reduce_or(), Bit::One);
        assert_eq!(LogicVec::from_u64(4, 0b0110).reduce_xor(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(4, 0b0111).reduce_xor(), Bit::One);
        // 0 AND-reduced with X is 0; 1 OR-reduced with X is 1.
        assert_eq!(
            LogicVec::parse_literal("2'b0x").unwrap().reduce_and(),
            Bit::Zero
        );
        assert_eq!(
            LogicVec::parse_literal("2'b1x").unwrap().reduce_or(),
            Bit::One
        );
        assert_eq!(
            LogicVec::parse_literal("2'b0x").unwrap().reduce_or(),
            Bit::X
        );
    }

    #[test]
    fn slicing_and_concat() {
        let v = LogicVec::from_u64(16, 0xABCD);
        assert_eq!(v.slice(0, 4).to_u64(), Some(0xD));
        assert_eq!(v.slice(12, 4).to_u64(), Some(0xA));
        let c = LogicVec::concat(&v.slice(8, 8), &v.slice(0, 8));
        assert_eq!(c.to_u64(), Some(0xABCD));
        let r = LogicVec::from_u64(2, 0b10).replicate(3);
        assert_eq!(r.width(), 6);
        assert_eq!(r.to_u64(), Some(0b101010));
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b0000_1101);
        assert_eq!(v.shl(2).to_u64(), Some(0b0011_0100));
        assert_eq!(v.lshr(2).to_u64(), Some(0b0000_0011));
        assert_eq!(v.shl(9).to_u64(), Some(0));
        let amt = LogicVec::from_u64(3, 2);
        assert_eq!(v.shl_vec(&amt).to_u64(), Some(0b0011_0100));
        assert!(v.shl_vec(&LogicVec::xes(3)).has_unknown());
    }

    #[test]
    fn packed_word_views_round_trip() {
        let mut v = LogicVec::from_u64(12, 0xABC);
        assert_eq!(v.word(), 0xABC);
        assert_eq!(v.unk_word(), 0);
        v.set_word(0xFFFF, 0);
        // Both planes are masked to the declared width.
        assert_eq!(v.word(), 0xFFF);
        assert_eq!(v.to_u64(), Some(0xFFF));
        v.set_word(0x5, 0x3);
        assert_eq!(v.unk_word(), 0x3);
        assert!(v.has_unknown());
        assert_eq!(v.bit(0), Bit::X); // val 1, unk 1
        assert_eq!(v.bit(1), Bit::Z); // val 0, unk 1
        assert_eq!(v.bit(2), Bit::One);
        // The X power-up state is visible through the packed view.
        let x = LogicVec::xes(8);
        assert_eq!(x.unk_word(), 0xFF);
        // Zero-width vectors have no words at all.
        assert_eq!(LogicVec::zeros(0).word(), 0);
    }

    #[test]
    fn extract_word_matches_slice() {
        // A 130-bit vector with a recognizable pattern and an X span,
        // so extractions cross both storage-word boundaries.
        let mut v = LogicVec::zeros(130);
        for i in 0..130 {
            if i % 3 == 0 {
                v.set_bit(i, Bit::One);
            }
            if (40..48).contains(&i) {
                v.set_bit(i, Bit::X);
            }
        }
        for (lo, w) in [
            (0, 64),
            (1, 64),
            (37, 12),
            (60, 10),
            (63, 2),
            (66, 64),
            (128, 2),
        ] {
            let (val, unk) = v.extract_word(lo, w);
            let s = v.slice(lo, w);
            assert_eq!(val, s.word(), "val [{lo}+:{w}]");
            assert_eq!(unk, s.unk_word(), "unk [{lo}+:{w}]");
        }
    }

    #[test]
    fn display_format() {
        let v = LogicVec::parse_literal("4'b10xz").unwrap();
        assert_eq!(format!("{v}"), "4'b10xz");
    }

    #[test]
    fn condition_semantics() {
        assert_eq!(LogicVec::from_u64(8, 0).to_condition(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(8, 2).to_condition(), Bit::One);
        assert_eq!(
            LogicVec::parse_literal("2'b0x").unwrap().to_condition(),
            Bit::X
        );
        assert_eq!(
            LogicVec::parse_literal("2'b1x").unwrap().to_condition(),
            Bit::One
        );
    }
}
