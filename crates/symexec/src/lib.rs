//! Symbolic execution of the netlist into *dependency equations*.
//!
//! This crate implements §4.4.2 and §4.7–4.8 of the SymbFuzz paper: it
//! walks every process of an elaborated
//! [`Design`](symbfuzz_netlist::Design) with a symbolic store, producing
//! for each register a closed-form next-state term
//! `next(reg) = F(inputs, current registers)` in which every `if`/`case`
//! of the RTL becomes an if-then-else over the branch condition — the
//! path constraints of the paper's Eqn. 2 baked into one expression.
//!
//! Given the simulator's current state and a target assignment of
//! control-register values (a CFG node the fuzzer wants to reach), the
//! [`SymbolicEngine`] binds the current-state symbols to their concrete
//! values, asserts `next(reg) == target`, and hands the system to the
//! bit-blasting SMT solver. A model is translated back into an
//! [`InputAssignment`] — the constraint the UVM sequencer applies on
//! the next cycle (Fig. 2, blocks 9–11).
//! [`solve_reach`](SymbolicEngine::solve_reach) unrolls the equations
//! over several cycles for targets that need a multi-cycle input
//! sequence.
//!
//! Undefined (`X`) bits in the current state are left unconstrained —
//! the paper's "constrains solving undefined pin values" (§3): the
//! solver optimistically picks the value that reaches the target.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use symbfuzz_logic::LogicVec;
//! use symbfuzz_symexec::SymbolicEngine;
//!
//! let d = Arc::new(symbfuzz_netlist::elaborate_src(
//!     "module m(input clk, input rst_n, input [3:0] k, output logic [3:0] st);
//!        always_ff @(posedge clk or negedge rst_n)
//!          if (!rst_n) st <= 4'd0;
//!          else begin if (k == 4'd9) st <= 4'd7; else st <= 4'd1; end
//!      endmodule", "m")?);
//! let engine = SymbolicEngine::new(Arc::clone(&d));
//! let st = d.signal_by_name("st").unwrap();
//! // Current state: everything zero (as after reset).
//! let state: Vec<LogicVec> =
//!     d.signals.iter().map(|s| LogicVec::zeros(s.width)).collect();
//! let sol = engine.solve_step(&state, &[(st, LogicVec::from_u64(4, 7))]).unwrap();
//! // The solver found the magic value k = 9.
//! let k = d.signal_by_name("k").unwrap();
//! assert_eq!(sol.value(k).unwrap().to_u64(), Some(9));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod engine;
mod profiler;
mod scope;

pub use engine::{
    InputAssignment, ReachError, ReachOutcome, ReachStats, SolverCacheStats, SymbolicEngine,
};
pub use profiler::{GoalProfile, SolveProfiler};
pub use scope::{
    signal_of_term_name, sketch_jaccard_milli, GoalScope, BLAME_MAX_ASSUMPTIONS, HOT_SIGNALS_K,
    SKETCH_K,
};
