//! Dependency-equation construction and SMT-backed input search.

use crate::scope::{
    signal_of_term_name, GoalScope, BLAME_MAX_ASSUMPTIONS, HOT_SIGNALS_K, SKETCH_K,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use symbfuzz_hdl::{BinaryOp, Edge, UnaryOp};
use symbfuzz_logic::{Bit, LogicVec};
use symbfuzz_netlist::{
    reset_tree, Design, NExpr, NLValue, NStmt, ProcKind, ResetTree, SignalId, SignalKind,
};
use symbfuzz_smt::{
    BitBlaster, Budget, BudgetSpent, Lit, SatResult, SolverSession, TermId, TermKind, TermPool,
};
use symbfuzz_telemetry::{Collector, Counter, Event, Gauge, SolveStatus, UnknownReason};

/// Conflict ceiling for each blame-extraction solve (the initial
/// assumption check and every greedy drop-one probe). Small by design:
/// blame is best-effort diagnostics and must not compete with the
/// campaign's own solving budget.
const BLAME_CONFLICT_CAP: u64 = 2_000;

/// A concrete input stimulus produced by the solver: one value per
/// top-level input (clocks excluded, resets held inactive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputAssignment {
    values: Vec<(SignalId, LogicVec)>,
}

impl InputAssignment {
    /// The value for one input signal.
    pub fn value(&self, sig: SignalId) -> Option<&LogicVec> {
        self.values.iter().find(|(s, _)| *s == sig).map(|(_, v)| v)
    }

    /// Iterates over `(signal, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &LogicVec)> {
        self.values.iter().map(|(s, v)| (*s, v))
    }

    /// Packs the fuzzable inputs into one flat word in `SignalId` order
    /// — the inverse of `symbfuzz-sim`'s `Simulator::apply_input_word`
    /// (that crate documents the packing; duplicated here to avoid a
    /// dependency cycle).
    pub fn to_word(&self, design: &Design) -> LogicVec {
        let mut word = LogicVec::zeros(design.fuzz_width().max(1));
        let mut lo = 0u32;
        for sig in design.fuzzable_inputs() {
            let w = design.signal(sig).width;
            if let Some(v) = self.value(sig) {
                let v = v.resized(w);
                for i in 0..w {
                    word.set_bit(lo + i, v.bit(i));
                }
            }
            lo += w;
        }
        word
    }
}

/// Invalid reachability request: the caller asked for something the
/// engine cannot even pose as an SMT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachError {
    /// A target value contains `X` bits — there is no concrete value
    /// to assert.
    XTarget {
        /// Name of the offending target signal.
        signal: String,
    },
    /// A target signal is not a register, so it has no next-state
    /// equation.
    NotARegister {
        /// Name of the offending target signal.
        signal: String,
    },
}

impl std::fmt::Display for ReachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReachError::XTarget { signal } => {
                write!(f, "target value for {signal} contains X bits")
            }
            ReachError::NotARegister { signal } => {
                write!(f, "target {signal} is not a register")
            }
        }
    }
}

impl std::error::Error for ReachError {}

/// Result of a budgeted reachability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachOutcome {
    /// The target is reachable; here is the input sequence.
    Reached(Vec<InputAssignment>),
    /// Proven unreachable within the requested unroll bound.
    Unreachable,
    /// The budget ran out before the query was decided.
    Exhausted {
        /// Which ceiling tripped first.
        reason: UnknownReason,
        /// Work consumed across the whole depth schedule.
        spent: BudgetSpent,
    },
}

impl ReachOutcome {
    /// Maps onto the shared campaign-wide [`SolveStatus`] vocabulary.
    pub fn status(&self) -> SolveStatus {
        match self {
            ReachOutcome::Reached(_) => SolveStatus::Sat,
            ReachOutcome::Unreachable => SolveStatus::Unsat,
            ReachOutcome::Exhausted { reason, .. } => SolveStatus::Unknown(*reason),
        }
    }
}

/// Work receipt for one whole reachability query, aggregated across
/// the geometric depth schedule — the raw material for the per-goal
/// solver profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReachStats {
    /// CDCL work consumed across every exact-depth solve, including
    /// the one that decided the query.
    pub spent: BudgetSpent,
    /// Exact-depth SMT solves issued.
    pub solver_calls: u32,
    /// Deepest unroll attempted (0 if the depth ceiling was 0).
    pub deepest_unroll: u32,
}

/// Cumulative statistics of the engine's frame cache (see
/// [`SymbolicEngine::set_solver_cache`]). All figures are pure
/// functions of the query sequence, so they stay byte-identical at any
/// `--jobs` value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// Unrolled frames reused from a warm session instead of being
    /// re-substituted and re-blasted.
    pub frame_hits: u64,
    /// Frames unrolled and blasted fresh.
    pub frame_misses: u64,
    /// Sessions dropped by the byte-budget eviction sweep.
    pub evictions: u64,
    /// Exact-depth checks issued through the cache.
    pub goals: u64,
    /// Checks answered on a warm solver (learned clauses retained from
    /// an earlier goal on the same frame).
    pub reused_goals: u64,
}

impl SolverCacheStats {
    /// Session-reuse rate in permille: `reused_goals / goals`.
    pub fn reuse_milli(&self) -> u64 {
        (self.reused_goals * 1000)
            .checked_div(self.goals)
            .unwrap_or(0)
    }
}

/// One warm incremental session: an unrolled frame chain over a fixed
/// start state, shared by every goal posed from that state.
#[derive(Debug, Clone)]
struct FrameSession {
    /// Cache key: design fingerprint folded with the start state.
    key: u64,
    /// Whether CDCL tracing is armed (traced and untraced sessions are
    /// cached separately so introspection stays opt-in).
    traced: bool,
    sess: SolverSession,
    /// `states[k]` maps each current-state var to its term after `k`
    /// unroll steps (`states[0]` is the seeded start state).
    states: Vec<HashMap<TermId, TermId>>,
    /// Per-step input symbols, for model extraction.
    step_inputs: Vec<Vec<(SignalId, TermId)>>,
    /// Structural digest per frame (traced sessions only).
    frame_digests: Vec<u64>,
    /// Shared structural-hash memo for digests and sketches.
    hash_memo: HashMap<TermId, u64>,
    /// CNF size at the previous telemetry report, so warm calls record
    /// only the *newly blasted* vars/clauses.
    last_vars: usize,
    last_clauses: usize,
    /// LRU stamp for eviction.
    last_used: u64,
}

/// The engine's term/bitblast cache: warm sessions keyed by
/// `(design fingerprint, start state, traced)`, evicted
/// least-recently-used when their summed [`BitBlaster::approx_bytes`]
/// estimate exceeds the byte budget.
#[derive(Debug, Clone)]
struct FrameCache {
    budget_bytes: u64,
    fingerprint: u64,
    sessions: Vec<FrameSession>,
    tick: u64,
    stats: SolverCacheStats,
}

fn fnv_fold(d: u64, x: u64) -> u64 {
    (d ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Outcome of one exact-depth budgeted solve (internal).
enum ExactOutcome {
    Sat(Vec<InputAssignment>, BudgetSpent),
    Unsat(BudgetSpent),
    Exhausted {
        reason: UnknownReason,
        spent: BudgetSpent,
    },
}

/// Builds and solves dependency equations for one design.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SymbolicEngine {
    design: Arc<Design>,
    rtree: ResetTree,
    pool: TermPool,
    /// Canonical next-state term per register.
    eqs: HashMap<SignalId, TermId>,
    /// Input symbol per top-level input (clocks excluded).
    input_vars: HashMap<SignalId, TermId>,
    /// Current-state symbol per register.
    cur_vars: HashMap<SignalId, TermId>,
    /// Optional telemetry collector (SMT solve events + CDCL counters).
    telemetry: Option<Arc<Collector>>,
    /// Opt-in incremental frame cache (`None` = fresh solver per
    /// exact-depth query, the pre-cache behaviour).
    cache: RefCell<Option<FrameCache>>,
}

impl SymbolicEngine {
    /// Symbolically executes every process of `design` and records one
    /// dependency equation per register.
    pub fn new(design: Arc<Design>) -> SymbolicEngine {
        let rtree = reset_tree(&design);
        let mut pool = TermPool::new();
        let mut store: HashMap<SignalId, TermId> = HashMap::new();
        let mut input_vars = HashMap::new();
        let mut cur_vars = HashMap::new();

        for sig in design.inputs() {
            let s = design.signal(sig);
            if s.is_clock {
                continue;
            }
            let v = pool.var(format!("in.{}", s.name), s.width);
            store.insert(sig, v);
            input_vars.insert(sig, v);
        }
        for reg in design.registers() {
            let s = design.signal(reg);
            let v = pool.var(format!("cur.{}", s.name), s.width);
            store.insert(reg, v);
            cur_vars.insert(reg, v);
        }

        let mut engine = SymbolicEngine {
            design: Arc::clone(&design),
            rtree,
            pool,
            eqs: HashMap::new(),
            input_vars,
            cur_vars,
            telemetry: None,
            cache: RefCell::new(None),
        };

        // Settle combinational logic symbolically (bounded fixpoint —
        // the terms are hash-consed so stabilisation is cheap to test).
        for _ in 0..design.processes.len() + 2 {
            let mut changed = false;
            for p in &design.processes {
                if !matches!(p.kind, ProcKind::Comb) {
                    continue;
                }
                let mut next = HashMap::new();
                engine.exec_sym(&p.body, &mut store, &mut next);
                // Comb processes should not use NBAs; fold them in anyway.
                for (s, t) in next {
                    if store.get(&s) != Some(&t) {
                        store.insert(s, t);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Sequential processes: next-state equations.
        let mut eqs: HashMap<SignalId, TermId> = HashMap::new();
        for p in &design.processes {
            if !matches!(p.kind, ProcKind::Seq { .. }) {
                continue;
            }
            let mut local = store.clone();
            let mut next: HashMap<SignalId, TermId> = HashMap::new();
            engine.exec_sym(&p.body, &mut local, &mut next);
            for (reg, term) in next {
                eqs.insert(reg, term);
            }
        }
        // Registers never assigned a next value hold their current value.
        for reg in design.registers() {
            eqs.entry(reg).or_insert_with(|| engine.cur_vars[&reg]);
        }
        engine.eqs = eqs;
        engine
    }

    /// The design this engine analyses.
    pub fn design(&self) -> &Arc<Design> {
        &self.design
    }

    /// Attaches (or detaches) a telemetry collector. Each exact-depth
    /// SMT query then records an [`Event::SmtSolve`] with the blasted
    /// CNF size and outcome, plus CDCL work counters.
    pub fn set_collector(&mut self, telemetry: Option<Arc<Collector>>) {
        self.telemetry = telemetry;
    }

    /// Arms (or disarms) the incremental frame cache.
    ///
    /// With `Some(budget_bytes)`, exact-depth queries run on warm
    /// [`SolverSession`]s keyed by `(design fingerprint, start state)`:
    /// the unrolled transition relation is substituted and bit-blasted
    /// once per frame, goals sharing a start state reuse it as
    /// assumption checks, and learned clauses carry across sibling
    /// goals. Sessions are evicted least-recently-used once their
    /// estimated footprint exceeds the byte budget.
    ///
    /// Verdicts (Sat / Unsat / Unknown-reason) match the fresh-solver
    /// path exactly for unlimited budgets and for the unroll-depth and
    /// conflicts-0 ceilings; only the *work to reach them* changes.
    /// `None` (the default) disarms the cache and restores pre-cache
    /// behaviour bit for bit.
    pub fn set_solver_cache(&mut self, budget_bytes: Option<u64>) {
        *self.cache.borrow_mut() = budget_bytes.map(|b| FrameCache {
            budget_bytes: b,
            fingerprint: self.design_fingerprint(),
            sessions: Vec::new(),
            tick: 0,
            stats: SolverCacheStats::default(),
        });
    }

    /// Cumulative cache statistics (zeros when the cache is disarmed).
    pub fn cache_stats(&self) -> SolverCacheStats {
        self.cache
            .borrow()
            .as_ref()
            .map(|c| c.stats)
            .unwrap_or_default()
    }

    /// Drops every warm session but keeps the cache armed and its
    /// cumulative statistics. Used by the portfolio racer to discard
    /// the (nondeterministically aborted) solver state of losing
    /// profiles.
    pub fn reset_solver_cache(&self) {
        if let Some(c) = self.cache.borrow_mut().as_mut() {
            c.sessions.clear();
        }
    }

    /// A structural digest of the design's dependency equations: the
    /// design half of the frame-cache key. Two engines over the same
    /// elaborated design agree; any change to an equation changes it.
    pub fn design_fingerprint(&self) -> u64 {
        let mut memo = HashMap::new();
        let mut regs: Vec<SignalId> = self.eqs.keys().copied().collect();
        regs.sort_unstable();
        let mut d = 0xcbf2_9ce4_8422_2325u64;
        for reg in regs {
            for b in self.design.signal(reg).name.bytes() {
                d = fnv_fold(d, u64::from(b));
            }
            d = fnv_fold(d, self.pool.structural_hash(self.eqs[&reg], &mut memo));
        }
        d
    }

    /// The state half of the frame-cache key: a digest of every
    /// register's concrete (or partially-X) value, folded over the
    /// design fingerprint in sorted-register order.
    fn state_key(&self, fingerprint: u64, current: &[LogicVec]) -> u64 {
        let mut regs: Vec<SignalId> = self.cur_vars.keys().copied().collect();
        regs.sort_unstable();
        let mut d = fingerprint;
        for reg in regs {
            let v = &current[reg.index()];
            d = fnv_fold(d, reg.index() as u64);
            for i in 0..v.width() {
                let b = v.bit(i);
                let code = if b.is_unknown() {
                    3
                } else if b == Bit::One {
                    2
                } else {
                    1
                };
                d = fnv_fold(d, code);
            }
        }
        d
    }

    /// The dependency equation (next-state term) for a register.
    pub fn equation(&self, reg: SignalId) -> Option<TermId> {
        self.eqs.get(&reg).copied()
    }

    /// Number of dependency equations generated (Table 3 column).
    pub fn num_equations(&self) -> usize {
        self.eqs.len()
    }

    /// The term pool (for rendering/diagnostics).
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Solves for inputs that drive `targets` (register, value) pairs on
    /// the *next* clock edge, starting from the concrete state in
    /// `current` (the simulator's full value table). Returns `None` if
    /// the SMT query is unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a target value contains `X` bits or a target is not a
    /// register.
    pub fn solve_step(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
    ) -> Option<InputAssignment> {
        self.solve_reach(current, targets, 1).map(|mut seq| {
            debug_assert_eq!(seq.len(), 1);
            seq.pop().unwrap()
        })
    }

    /// Unrolls the dependency equations up to `max_steps` cycles and
    /// returns the shortest input sequence that reaches `targets`, if
    /// one exists within the bound.
    ///
    /// # Panics
    ///
    /// Panics if a target value contains `X` bits or a target is not a
    /// register.
    pub fn solve_reach(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        max_steps: u32,
    ) -> Option<Vec<InputAssignment>> {
        match self.solve_reach_budgeted(current, targets, max_steps, &Budget::unlimited()) {
            Ok(ReachOutcome::Reached(seq)) => Some(seq),
            Ok(ReachOutcome::Unreachable) => None,
            Ok(ReachOutcome::Exhausted { .. }) => {
                unreachable!("an unlimited budget cannot be exhausted")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Budget-aware variant of [`solve_reach`](Self::solve_reach):
    /// never panics and never runs away. Invalid requests surface as
    /// [`ReachError`]; an exhausted [`Budget`] yields
    /// [`ReachOutcome::Exhausted`] with the tripped ceiling and the
    /// work spent across the whole depth schedule.
    ///
    /// One budget covers the *entire* query: counter ceilings
    /// (conflicts, decisions, propagations) deplete across the
    /// geometric depth schedule's exact-depth solves, the term-node
    /// ceiling bounds the working pool during each unroll, and the
    /// unroll-depth ceiling truncates `max_steps` (reporting
    /// `Exhausted` rather than `Unreachable` if nothing was found
    /// within the truncated bound).
    pub fn solve_reach_budgeted(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        max_steps: u32,
        budget: &Budget,
    ) -> Result<ReachOutcome, ReachError> {
        self.solve_reach_profiled(current, targets, max_steps, budget)
            .map(|(outcome, _)| outcome)
    }

    /// [`solve_reach_budgeted`](Self::solve_reach_budgeted) plus a
    /// [`ReachStats`] work receipt, accumulated on every path — Sat
    /// included, unlike the spend carried inside
    /// [`ReachOutcome::Exhausted`]. This is the entry point the
    /// per-goal solver profiler uses; the plain budgeted variant is a
    /// thin wrapper, so the two always solve identically.
    pub fn solve_reach_profiled(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        max_steps: u32,
        budget: &Budget,
    ) -> Result<(ReachOutcome, ReachStats), ReachError> {
        self.solve_reach_inner(current, targets, max_steps, budget, None)
    }

    /// [`solve_reach_profiled`](Self::solve_reach_profiled) plus a
    /// [`GoalScope`] introspection record: merged CDCL trace, hot
    /// signals, structural sketch, and — for `Unreachable`/`Exhausted`
    /// outcomes — a blame set of state registers (assumption-core-lite
    /// under `BLAME_CONFLICT_CAP` conflicts per probe, falling back
    /// to the hottest signals when the core query is itself undecided).
    ///
    /// Tracing changes nothing about the search, so the outcome and
    /// stats match the uninstrumented path exactly; the extra blame
    /// query runs on a separate solver and spends none of `budget`.
    pub fn solve_reach_introspected(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        max_steps: u32,
        budget: &Budget,
    ) -> Result<(ReachOutcome, ReachStats, GoalScope), ReachError> {
        let mut scope = GoalScope::new();
        let (outcome, stats) =
            self.solve_reach_inner(current, targets, max_steps, budget, Some(&mut scope))?;
        if !matches!(outcome, ReachOutcome::Reached(_)) {
            let depth = stats.deepest_unroll.max(1);
            if let Some(core) = self.blame_targets(current, targets, depth, budget) {
                scope.blame = core;
                scope.blame_is_core = true;
                if let Some(t) = &self.telemetry {
                    t.add(Counter::CoreExtractions, 1);
                }
            }
            if scope.blame.is_empty() {
                // Core extraction was undecided (or vacuous): blame the
                // hottest signals so exhausted goals still point at
                // *something* actionable.
                scope.blame = scope.hot_signals.iter().map(|(n, _)| n.clone()).collect();
                scope.blame.sort();
                scope.blame.dedup();
            }
        }
        Ok((outcome, stats, scope))
    }

    fn solve_reach_inner(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        max_steps: u32,
        budget: &Budget,
        mut scope: Option<&mut GoalScope>,
    ) -> Result<(ReachOutcome, ReachStats), ReachError> {
        for t in targets {
            let s = self.design.signal(t.0);
            if t.1.has_unknown() {
                return Err(ReachError::XTarget {
                    signal: s.name.clone(),
                });
            }
            if !s.is_register {
                return Err(ReachError::NotARegister {
                    signal: s.name.clone(),
                });
            }
        }
        let mut stats = ReachStats::default();
        let bound = budget
            .unroll_depth()
            .map_or(max_steps, |c| max_steps.min(c));
        let truncated = bound < max_steps;
        if bound == 0 {
            return Ok((
                ReachOutcome::Exhausted {
                    reason: UnknownReason::UnrollDepth,
                    spent: BudgetSpent::default(),
                },
                stats,
            ));
        }
        // Geometric depth schedule: deep plans pad with idle cycles, so
        // exact-k solving at 1, 2, 4, … plus the bound itself finds any
        // plan within the bound at a fraction of the solver calls.
        let mut spent_total = BudgetSpent::default();
        let mut k = 1;
        loop {
            let steps = k.min(bound);
            stats.solver_calls += 1;
            stats.deepest_unroll = stats.deepest_unroll.max(steps);
            let remaining = budget.remaining_after(spent_total);
            match self.solve_exact_budgeted(
                current,
                targets,
                steps,
                &remaining,
                scope.as_deref_mut(),
            ) {
                ExactOutcome::Sat(seq, spent) => {
                    stats.spent = spent_total.saturating_add(spent);
                    return Ok((ReachOutcome::Reached(seq), stats));
                }
                ExactOutcome::Unsat(spent) => spent_total = spent_total.saturating_add(spent),
                ExactOutcome::Exhausted { reason, spent } => {
                    let spent = spent_total.saturating_add(spent);
                    stats.spent = spent;
                    return Ok((ReachOutcome::Exhausted { reason, spent }, stats));
                }
            }
            if steps == bound {
                break;
            }
            k *= 2;
        }
        stats.spent = spent_total;
        if truncated {
            Ok((
                ReachOutcome::Exhausted {
                    reason: UnknownReason::UnrollDepth,
                    spent: spent_total,
                },
                stats,
            ))
        } else {
            Ok((ReachOutcome::Unreachable, stats))
        }
    }

    fn solve_exact_budgeted(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        steps: u32,
        budget: &Budget,
        scope: Option<&mut GoalScope>,
    ) -> ExactOutcome {
        if self.cache.borrow().is_some() {
            return self.solve_exact_cached(current, targets, steps, budget, scope);
        }
        let node_cap = budget.term_nodes();
        let over_cap = |pool: &TermPool| node_cap.is_some_and(|cap| pool.len() > cap);
        let mut pool = self.pool.clone();
        let mut blaster = BitBlaster::new();
        if scope.is_some() {
            blaster.solver_mut().enable_trace();
        }
        // Introspection-only bookkeeping (empty/no-op when `scope` is
        // off): per-frame structural digests plus a shared hash memo
        // reused for the final subterm sketch.
        let mut frame_digests: Vec<u64> = Vec::new();
        let mut hash_memo: HashMap<TermId, u64> = HashMap::new();

        // State terms at step 0: constants where defined; X bits free.
        let mut state: HashMap<TermId, TermId> = HashMap::new(); // cur var -> term
        for (&reg, &var) in &self.cur_vars {
            let v = &current[reg.index()];
            if !v.has_unknown() {
                let c = pool.constant(v.clone());
                state.insert(var, c);
            } else {
                // Fresh symbol; bind the defined bits only.
                let fresh = pool.var(format!("x0.{}", self.design.signal(reg).name), v.width());
                for i in 0..v.width() {
                    let b = v.bit(i);
                    if !b.is_unknown() {
                        let bitterm = pool.extract(fresh, i, 1);
                        let cb = pool.const_u64(1, (b == Bit::One) as u64);
                        let eqt = pool.eq(bitterm, cb);
                        blaster.assert_true(&pool, eqt);
                    }
                }
                state.insert(var, fresh);
            }
        }

        if over_cap(&pool) {
            return ExactOutcome::Exhausted {
                reason: UnknownReason::TermNodes,
                spent: BudgetSpent::default(),
            };
        }

        // Per-step input variables; resets pinned inactive.
        let mut step_inputs: Vec<Vec<(SignalId, TermId)>> = Vec::new();
        for t in 0..steps {
            let mut subst_map = state.clone();
            let mut these = Vec::new();
            for (&sig, &var) in &self.input_vars {
                let s = self.design.signal(sig);
                let fresh = pool.var(format!("in@{t}.{}", s.name), s.width);
                subst_map.insert(var, fresh);
                these.push((sig, fresh));
                if s.is_reset {
                    let inactive = self.reset_inactive_level(sig);
                    let c = pool.const_u64(s.width, inactive);
                    let eqt = pool.eq(fresh, c);
                    blaster.assert_true(&pool, eqt);
                }
            }
            // next state = eqs substituted with current state + inputs.
            let mut memo = HashMap::new();
            let mut new_state = HashMap::new();
            for (&reg, &var) in &self.cur_vars {
                let eq = self.eqs[&reg];
                let substituted = subst(&mut pool, eq, &subst_map, &mut memo);
                new_state.insert(var, substituted);
            }
            state = new_state;
            step_inputs.push(these);
            if scope.is_some() {
                let mut hs: Vec<u64> = state
                    .values()
                    .map(|&t| pool.structural_hash(t, &mut hash_memo))
                    .collect();
                hs.sort_unstable();
                let mut d = 0xcbf2_9ce4_8422_2325u64;
                for h in hs {
                    d = (d ^ h).wrapping_mul(0x100_0000_01b3);
                }
                frame_digests.push(d);
            }
            // The working pool grows monotonically with depth; stop
            // before blasting a formula the budget says is too big.
            if over_cap(&pool) {
                return ExactOutcome::Exhausted {
                    reason: UnknownReason::TermNodes,
                    spent: BudgetSpent::default(),
                };
            }
        }

        // Assert the targets on the final state.
        for (reg, value) in targets {
            let var = self.cur_vars[reg];
            let term = state[&var];
            let c = pool.constant(value.clone());
            let eqt = pool.eq(term, c);
            blaster.assert_true(&pool, eqt);
        }

        let t0 = self.telemetry.as_ref().map(|t| t.now_micros());
        let result = blaster.solver_mut().solve_budgeted(&[], budget);
        // The blaster's solver is fresh, so its counters are exactly
        // this call's spend.
        let spent = {
            let solver = blaster.solver();
            BudgetSpent {
                conflicts: solver.conflicts(),
                decisions: solver.decisions(),
                propagations: solver.propagations(),
            }
        };
        if let (Some(t), Some(t0)) = (&self.telemetry, t0) {
            let stats = blaster.stats();
            let solver = blaster.solver();
            t.add(Counter::SolverCalls, 1);
            t.add(Counter::SatVars, stats.num_vars as u64);
            t.add(Counter::SatClauses, stats.num_clauses as u64);
            t.add(Counter::SatDecisions, solver.decisions());
            t.add(Counter::SatConflicts, solver.conflicts());
            t.record(Event::SmtSolve {
                vars: stats.num_vars as u64,
                clauses: stats.num_clauses as u64,
                sat: matches!(result, SatResult::Sat(_)),
                micros: t.now_micros().saturating_sub(t0),
            });
        }
        if let Some(scope) = scope {
            if let Some(trace) = blaster.solver_mut().take_trace(HOT_SIGNALS_K * 4) {
                let vars: Vec<u32> = trace.hot_vars.iter().map(|(v, _)| *v).collect();
                let mut named: Vec<(String, u64)> = Vec::new();
                for (v, t, _bit) in blaster.attribute_vars(&vars) {
                    if let TermKind::Var(name, _) = pool.kind(t) {
                        if let Some(sig) = signal_of_term_name(name) {
                            let permille = trace
                                .hot_vars
                                .iter()
                                .find(|(hv, _)| *hv == v)
                                .map_or(0, |(_, p)| *p);
                            named.push((sig.to_string(), permille));
                        }
                    }
                }
                scope.note_hot_signals(&named);
                scope.note_call(&trace);
            }
            let mut roots: Vec<TermId> = state.values().copied().collect();
            roots.sort_unstable();
            let mut digests = pool.subterm_digests(&roots, &mut hash_memo);
            digests.truncate(SKETCH_K);
            scope.note_structure(steps, digests, frame_digests);
        }
        match result {
            SatResult::Unsat => ExactOutcome::Unsat(spent),
            SatResult::Unknown { reason, spent } => ExactOutcome::Exhausted { reason, spent },
            SatResult::Sat(raw) => {
                let mut out = Vec::new();
                for these in &step_inputs {
                    let mut values = Vec::new();
                    for (sig, var) in these {
                        let s = self.design.signal(*sig);
                        if s.is_reset || s.is_clock {
                            continue;
                        }
                        let mut v = LogicVec::zeros(s.width);
                        if let Some(lits) = blaster.lits_of(*var) {
                            for (i, l) in lits.iter().enumerate() {
                                let b = raw[l.var() as usize] == l.is_pos();
                                v.set_bit(i as u32, Bit::from_bool(b));
                            }
                        }
                        values.push((*sig, v));
                    }
                    values.sort_by_key(|(s, _)| *s);
                    out.push(InputAssignment { values });
                }
                ExactOutcome::Sat(out, spent)
            }
        }
    }

    /// The warm-session variant of
    /// [`solve_exact_budgeted`](Self::solve_exact_budgeted): looks up
    /// (or seeds) the [`FrameSession`] for the current start state,
    /// extends its frame chain to `steps` if needed, and poses the
    /// targets as an assumption check on the shared solver. Iteration
    /// is in sorted signal order throughout, so the session's CNF is a
    /// pure function of the query sequence.
    fn solve_exact_cached(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        steps: u32,
        budget: &Budget,
        scope: Option<&mut GoalScope>,
    ) -> ExactOutcome {
        let node_cap = budget.term_nodes();
        let traced = scope.is_some();
        let mut borrow = self.cache.borrow_mut();
        let cache = borrow
            .as_mut()
            .expect("cached path requires an armed cache");
        let key = self.state_key(cache.fingerprint, current);
        let FrameCache {
            budget_bytes,
            sessions,
            tick,
            stats,
            ..
        } = cache;

        let mut sorted_regs: Vec<SignalId> = self.cur_vars.keys().copied().collect();
        sorted_regs.sort_unstable();

        let si = match sessions
            .iter()
            .position(|s| s.key == key && s.traced == traced)
        {
            Some(i) => i,
            None => {
                // Miss: seed a fresh session at step 0. Constants where
                // the state is defined; X bits free with defined bits
                // pinned by permanent assertions.
                let mut sess = SolverSession::from_pool(self.pool.clone());
                if traced {
                    sess.enable_trace();
                }
                let mut state0: HashMap<TermId, TermId> = HashMap::new();
                for &reg in &sorted_regs {
                    let var = self.cur_vars[&reg];
                    let v = &current[reg.index()];
                    if !v.has_unknown() {
                        let c = sess.pool_mut().constant(v.clone());
                        state0.insert(var, c);
                    } else {
                        let name = self.design.signal(reg).name.clone();
                        let fresh = sess.pool_mut().var(format!("x0.{name}"), v.width());
                        for i in 0..v.width() {
                            let b = v.bit(i);
                            if !b.is_unknown() {
                                let p = sess.pool_mut();
                                let bitterm = p.extract(fresh, i, 1);
                                let cb = p.const_u64(1, (b == Bit::One) as u64);
                                let eqt = p.eq(bitterm, cb);
                                sess.assert_term(eqt);
                            }
                        }
                        state0.insert(var, fresh);
                    }
                }
                sessions.push(FrameSession {
                    key,
                    traced,
                    sess,
                    states: vec![state0],
                    step_inputs: Vec::new(),
                    frame_digests: Vec::new(),
                    hash_memo: HashMap::new(),
                    last_vars: 0,
                    last_clauses: 0,
                    last_used: 0,
                });
                sessions.len() - 1
            }
        };
        let fs = &mut sessions[si];
        fs.last_used = *tick;
        *tick += 1;
        let warm = fs.sess.goals_checked() > 0;

        let over_cap = |pool: &TermPool| node_cap.is_some_and(|cap| pool.len() > cap);
        if over_cap(fs.sess.pool()) {
            return ExactOutcome::Exhausted {
                reason: UnknownReason::TermNodes,
                spent: BudgetSpent::default(),
            };
        }

        // Frame accounting: frames 1..=steps are needed; whatever the
        // session already unrolled is a hit, the rest are misses.
        let have = (fs.states.len() - 1) as u32;
        let hits = u64::from(have.min(steps));
        let misses = u64::from(steps - have.min(steps));
        stats.frame_hits += hits;
        stats.frame_misses += misses;
        stats.goals += 1;
        stats.reused_goals += u64::from(warm);

        let mut sorted_inputs: Vec<SignalId> = self.input_vars.keys().copied().collect();
        sorted_inputs.sort_unstable();
        while (fs.states.len() as u32) <= steps {
            let t = fs.states.len() as u32 - 1;
            let mut subst_map = fs.states.last().unwrap().clone();
            let mut these = Vec::new();
            for &sig in &sorted_inputs {
                let var = self.input_vars[&sig];
                let s = self.design.signal(sig);
                let fresh = fs
                    .sess
                    .pool_mut()
                    .var(format!("in@{t}.{}", s.name), s.width);
                subst_map.insert(var, fresh);
                these.push((sig, fresh));
                if s.is_reset {
                    let inactive = self.reset_inactive_level(sig);
                    let p = fs.sess.pool_mut();
                    let c = p.const_u64(s.width, inactive);
                    let eqt = p.eq(fresh, c);
                    fs.sess.assert_term(eqt);
                }
            }
            let mut memo = HashMap::new();
            let mut new_state = HashMap::new();
            for &reg in &sorted_regs {
                let var = self.cur_vars[&reg];
                let substituted = subst(fs.sess.pool_mut(), self.eqs[&reg], &subst_map, &mut memo);
                new_state.insert(var, substituted);
            }
            if traced {
                let mut hs: Vec<u64> = new_state
                    .values()
                    .map(|&t| fs.sess.pool().structural_hash(t, &mut fs.hash_memo))
                    .collect();
                hs.sort_unstable();
                let mut d = 0xcbf2_9ce4_8422_2325u64;
                for h in hs {
                    d = fnv_fold(d, h);
                }
                fs.frame_digests.push(d);
            }
            fs.states.push(new_state);
            fs.step_inputs.push(these);
            if over_cap(fs.sess.pool()) {
                return ExactOutcome::Exhausted {
                    reason: UnknownReason::TermNodes,
                    spent: BudgetSpent::default(),
                };
            }
        }

        // Targets on the state after `steps` cycles, as assumptions.
        let mut target_terms = Vec::new();
        for (reg, value) in targets {
            let var = self.cur_vars[reg];
            let term = fs.states[steps as usize][&var];
            let p = fs.sess.pool_mut();
            let c = p.constant(value.clone());
            target_terms.push(p.eq(term, c));
        }

        let t0 = self.telemetry.as_ref().map(|t| t.now_micros());
        let (result, spent) = fs.sess.check_assuming(&target_terms, budget);
        if let (Some(tel), Some(t0)) = (&self.telemetry, t0) {
            let cnf = fs.sess.cnf_stats();
            let (dv, dc) = (
                cnf.num_vars - fs.last_vars,
                cnf.num_clauses - fs.last_clauses,
            );
            fs.last_vars = cnf.num_vars;
            fs.last_clauses = cnf.num_clauses;
            tel.add(Counter::SolverCalls, 1);
            tel.add(Counter::SatVars, dv as u64);
            tel.add(Counter::SatClauses, dc as u64);
            tel.add(Counter::SatDecisions, spent.decisions);
            tel.add(Counter::SatConflicts, spent.conflicts);
            tel.add(Counter::BitblastCacheHits, hits);
            tel.add(Counter::BitblastCacheMisses, misses);
            tel.set_gauge(Gauge::SolverSessionReuse, stats.reuse_milli());
            tel.record(Event::SmtSolve {
                vars: dv as u64,
                clauses: dc as u64,
                sat: matches!(result, SatResult::Sat(_)),
                micros: tel.now_micros().saturating_sub(t0),
            });
        }
        if let Some(scope) = scope {
            if let Some(trace) = fs.sess.take_trace(HOT_SIGNALS_K * 4) {
                let vars: Vec<u32> = trace.hot_vars.iter().map(|(v, _)| *v).collect();
                let mut named: Vec<(String, u64)> = Vec::new();
                for (v, t, _bit) in fs.sess.blaster().attribute_vars(&vars) {
                    if let TermKind::Var(name, _) = fs.sess.pool().kind(t) {
                        if let Some(sig) = signal_of_term_name(name) {
                            let permille = trace
                                .hot_vars
                                .iter()
                                .find(|(hv, _)| *hv == v)
                                .map_or(0, |(_, p)| *p);
                            named.push((sig.to_string(), permille));
                        }
                    }
                }
                scope.note_hot_signals(&named);
                scope.note_call(&trace);
            }
            let mut roots: Vec<TermId> = fs.states[steps as usize].values().copied().collect();
            roots.sort_unstable();
            let mut digests = fs.sess.pool().subterm_digests(&roots, &mut fs.hash_memo);
            digests.truncate(SKETCH_K);
            scope.note_structure(steps, digests, fs.frame_digests[..steps as usize].to_vec());
        }

        let outcome = match result {
            SatResult::Unsat => ExactOutcome::Unsat(spent),
            SatResult::Unknown { reason, .. } => ExactOutcome::Exhausted { reason, spent },
            SatResult::Sat(raw) => {
                let mut out = Vec::new();
                for these in &fs.step_inputs[..steps as usize] {
                    let mut values = Vec::new();
                    for (sig, var) in these {
                        let s = self.design.signal(*sig);
                        if s.is_reset || s.is_clock {
                            continue;
                        }
                        let mut v = LogicVec::zeros(s.width);
                        if let Some(lits) = fs.sess.blaster().lits_of(*var) {
                            for (i, l) in lits.iter().enumerate() {
                                let b = raw[l.var() as usize] == l.is_pos();
                                v.set_bit(i as u32, Bit::from_bool(b));
                            }
                        }
                        values.push((*sig, v));
                    }
                    values.sort_by_key(|(s, _)| *s);
                    out.push(InputAssignment { values });
                }
                ExactOutcome::Sat(out, spent)
            }
        };

        // Byte-budget eviction, least-recently-used first. The sweep
        // may evict the session just used (a later call re-seeds it);
        // either way memory stays bounded and the order is a pure
        // function of the query sequence.
        loop {
            let total: u64 = sessions.iter().map(|s| s.sess.approx_bytes()).sum();
            if total <= *budget_bytes || sessions.is_empty() {
                break;
            }
            let lru = sessions
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
                .unwrap();
            sessions.remove(lru);
            stats.evictions += 1;
        }
        outcome
    }

    /// Attempts to attribute an `Unreachable`/`Exhausted` outcome to a
    /// set of state registers: re-poses the exact-depth query with up
    /// to [`BLAME_MAX_ASSUMPTIONS`] fully-defined registers bound via
    /// *assumptions* rather than assertions, then greedily minimizes
    /// the assumption set while the query stays Unsat.
    ///
    /// Returns `None` when the blame query is satisfiable (the target
    /// only fails at other depths), undecided within
    /// [`BLAME_CONFLICT_CAP`] conflicts, or too large to rebuild under
    /// the budget's term-node ceiling. Candidate registers are taken in
    /// name order and the core preserves that order, so the result is
    /// deterministic.
    fn blame_targets(
        &self,
        current: &[LogicVec],
        targets: &[(SignalId, LogicVec)],
        steps: u32,
        budget: &Budget,
    ) -> Option<Vec<String>> {
        let node_cap = budget.term_nodes();
        let over_cap = |pool: &TermPool| node_cap.is_some_and(|cap| pool.len() > cap);
        let mut pool = self.pool.clone();
        let mut blaster = BitBlaster::new();

        // State at step 0: candidate registers get a fresh symbol plus
        // an assumption literal pinning it to its concrete value; the
        // rest are seeded exactly as the plain exact solve does.
        let mut regs: Vec<(SignalId, TermId)> =
            self.cur_vars.iter().map(|(&r, &v)| (r, v)).collect();
        regs.sort_by(|a, b| {
            self.design
                .signal(a.0)
                .name
                .cmp(&self.design.signal(b.0).name)
        });
        let mut state: HashMap<TermId, TermId> = HashMap::new();
        let mut assumptions: Vec<(String, Lit)> = Vec::new();
        for (reg, var) in regs {
            let v = &current[reg.index()];
            let name = self.design.signal(reg).name.clone();
            if !v.has_unknown() && assumptions.len() < BLAME_MAX_ASSUMPTIONS {
                let fresh = pool.var(format!("x0.{name}"), v.width());
                let c = pool.constant(v.clone());
                let eqt = pool.eq(fresh, c);
                let lit = blaster.lits(&pool, eqt)[0];
                assumptions.push((name, lit));
                state.insert(var, fresh);
            } else if !v.has_unknown() {
                let c = pool.constant(v.clone());
                state.insert(var, c);
            } else {
                let fresh = pool.var(format!("x0.{name}"), v.width());
                for i in 0..v.width() {
                    let b = v.bit(i);
                    if !b.is_unknown() {
                        let bitterm = pool.extract(fresh, i, 1);
                        let cb = pool.const_u64(1, (b == Bit::One) as u64);
                        let eqt = pool.eq(bitterm, cb);
                        blaster.assert_true(&pool, eqt);
                    }
                }
                state.insert(var, fresh);
            }
        }
        if assumptions.is_empty() {
            return None;
        }

        // Unroll to the requested depth, resets pinned inactive.
        for t in 0..steps {
            let mut subst_map = state.clone();
            for (&sig, &var) in &self.input_vars {
                let s = self.design.signal(sig);
                let fresh = pool.var(format!("in@{t}.{}", s.name), s.width);
                subst_map.insert(var, fresh);
                if s.is_reset {
                    let inactive = self.reset_inactive_level(sig);
                    let c = pool.const_u64(s.width, inactive);
                    let eqt = pool.eq(fresh, c);
                    blaster.assert_true(&pool, eqt);
                }
            }
            let mut memo = HashMap::new();
            let mut new_state = HashMap::new();
            for (&reg, &var) in &self.cur_vars {
                let substituted = subst(&mut pool, self.eqs[&reg], &subst_map, &mut memo);
                new_state.insert(var, substituted);
            }
            state = new_state;
            if over_cap(&pool) {
                return None;
            }
        }
        for (reg, value) in targets {
            let var = self.cur_vars[reg];
            let term = state[&var];
            let c = pool.constant(value.clone());
            let eqt = pool.eq(term, c);
            blaster.assert_true(&pool, eqt);
        }

        let probe_budget = Budget::unlimited().with_conflicts(BLAME_CONFLICT_CAP);
        let lits: Vec<Lit> = assumptions.iter().map(|(_, l)| *l).collect();
        match blaster.solver_mut().solve_budgeted(&lits, &probe_budget) {
            SatResult::Unsat => {}
            SatResult::Sat(_) | SatResult::Unknown { .. } => return None,
        }
        // Greedy drop-one minimization: remove an assumption whenever
        // the rest stay Unsat. Probes that come back Sat or undecided
        // keep their assumption, so the result over-approximates a
        // minimal core but never under-blames.
        let mut i = 0;
        while assumptions.len() > 1 && i < assumptions.len() {
            let probe: Vec<Lit> = assumptions
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (_, l))| *l)
                .collect();
            match blaster.solver_mut().solve_budgeted(&probe, &probe_budget) {
                SatResult::Unsat => {
                    assumptions.remove(i);
                }
                SatResult::Sat(_) | SatResult::Unknown { .. } => i += 1,
            }
        }
        Some(assumptions.into_iter().map(|(n, _)| n).collect())
    }

    fn reset_inactive_level(&self, sig: SignalId) -> u64 {
        for d in &self.rtree.domains {
            if d.reset == sig {
                return match d.active {
                    Edge::Neg => 1, // active low: inactive = 1
                    Edge::Pos => 0,
                };
            }
        }
        1
    }

    // ---- symbolic statement execution ------------------------------------

    fn exec_sym(
        &mut self,
        stmt: &NStmt,
        store: &mut HashMap<SignalId, TermId>,
        next: &mut HashMap<SignalId, TermId>,
    ) {
        match stmt {
            NStmt::Block(stmts) => {
                for s in stmts {
                    self.exec_sym(s, store, next);
                }
            }
            NStmt::If {
                cond, then, els, ..
            } => {
                let c = self.cond_bit(cond, store);
                let (mut s_then, mut n_then) = (store.clone(), next.clone());
                self.exec_sym(then, &mut s_then, &mut n_then);
                let (mut s_els, mut n_els) = (store.clone(), next.clone());
                if let Some(e) = els {
                    self.exec_sym(e, &mut s_els, &mut n_els);
                }
                self.merge(c, store, s_then, s_els);
                self.merge(c, next, n_then, n_els);
            }
            NStmt::Case {
                subject,
                arms,
                default,
                ..
            } => {
                // Desugar into a cascade of if-else on label equality.
                let subj = self.eval_sym(subject, store);
                let mut conds = Vec::new();
                for (labels, _) in arms {
                    let mut arm_cond = self.pool.fls();
                    for l in labels {
                        let lv = self.eval_sym(l, store);
                        let e = self.pool.eq(subj, lv);
                        arm_cond = self.pool.or(arm_cond, e);
                    }
                    conds.push(arm_cond);
                }
                // Evaluate from the last arm (default) backwards.
                let (mut s_acc, mut n_acc) = (store.clone(), next.clone());
                if let Some(d) = default {
                    self.exec_sym(d, &mut s_acc, &mut n_acc);
                }
                for i in (0..arms.len()).rev() {
                    let (mut s_arm, mut n_arm) = (store.clone(), next.clone());
                    self.exec_sym(&arms[i].1, &mut s_arm, &mut n_arm);
                    let c = conds[i];
                    // Earlier labels take priority, so fold outermost last.
                    let mut s_new = store.clone();
                    let mut n_new = next.clone();
                    self.merge(c, &mut s_new, s_arm, s_acc.clone());
                    self.merge(c, &mut n_new, n_arm, n_acc.clone());
                    s_acc = s_new;
                    n_acc = n_new;
                }
                *store = s_acc;
                *next = n_acc;
            }
            NStmt::Assign { lhs, rhs, blocking } => {
                let value = self.eval_sym(rhs, store);
                let sig = lhs.sig();
                let w = self.design.signal(sig).width;
                // The old value a partial write splices against: the
                // pending next value (NBA), else the current store value,
                // else the register's held value / a floating symbol.
                let old = if *blocking {
                    store.get(&sig).copied()
                } else {
                    next.get(&sig).copied().or_else(|| store.get(&sig).copied())
                }
                .unwrap_or_else(|| self.default_term(sig));
                let new = match lhs {
                    NLValue::Full(_) => self.pool.resize(value, w),
                    NLValue::Part { lo, width, .. } => self.splice(old, *lo, *width, value, w),
                    NLValue::DynBit { index, .. } => {
                        let idx = self.eval_sym(index, store);
                        let one = self.pool.const_u64(w, 1);
                        let mask = self.pool.shl(one, idx);
                        let nmask = self.pool.not(mask);
                        let vbit = self.pool.resize(value, w);
                        let shifted = self.pool.shl(vbit, idx);
                        let kept = self.pool.and(old, nmask);
                        let set = self.pool.and(shifted, mask);
                        self.pool.or(kept, set)
                    }
                };
                let target = if *blocking { store } else { next };
                target.insert(sig, new);
            }
            NStmt::Nop => {}
        }
    }

    fn splice(&mut self, old: TermId, lo: u32, width: u32, value: TermId, total: u32) -> TermId {
        let val = self.pool.resize(value, width);
        let mut parts: Vec<TermId> = Vec::new(); // most significant first
        if lo + width < total {
            parts.push(self.pool.extract(old, lo + width, total - lo - width));
        }
        parts.push(val);
        if lo > 0 {
            parts.push(self.pool.extract(old, 0, lo));
        }
        let mut it = parts.into_iter();
        let first = it.next().unwrap();
        it.fold(first, |acc, p| self.pool.concat(acc, p))
    }

    fn merge(
        &mut self,
        cond: TermId,
        base: &mut HashMap<SignalId, TermId>,
        then_map: HashMap<SignalId, TermId>,
        els_map: HashMap<SignalId, TermId>,
    ) {
        let mut keys: Vec<SignalId> = then_map.keys().chain(els_map.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        for k in keys {
            let fallback = base
                .get(&k)
                .copied()
                .unwrap_or_else(|| self.default_term(k));
            let t = then_map.get(&k).copied().unwrap_or(fallback);
            let e = els_map.get(&k).copied().unwrap_or(fallback);
            let v = if t == e { t } else { self.pool.ite(cond, t, e) };
            base.insert(k, v);
        }
    }

    /// The value a signal holds when read before any symbolic write:
    /// registers hold their current-state symbol; anything else becomes
    /// a floating symbol the solver may choose freely.
    fn default_term(&mut self, sig: SignalId) -> TermId {
        if let Some(v) = self.cur_vars.get(&sig) {
            return *v;
        }
        let s = self.design.signal(sig);
        self.pool.var(format!("float.{}", s.name), s.width)
    }

    fn cond_bit(&mut self, e: &NExpr, store: &HashMap<SignalId, TermId>) -> TermId {
        let t = self.eval_sym(e, store);
        self.pool.red_or(t)
    }

    fn sig_term(&mut self, sig: SignalId, store: &HashMap<SignalId, TermId>) -> TermId {
        if let Some(t) = store.get(&sig) {
            return *t;
        }
        // An output/wire read before any driver ran this pass, or a
        // genuinely undriven signal: model as an unconstrained symbol.
        let s = self.design.signal(sig);
        if s.kind == SignalKind::Input || s.is_register {
            // Should have been pre-seeded; fall back to a var.
        }
        self.pool.var(format!("float.{}", s.name), s.width)
    }

    fn eval_sym(&mut self, e: &NExpr, store: &HashMap<SignalId, TermId>) -> TermId {
        match e {
            NExpr::Const(v) => {
                if v.has_unknown() {
                    // X/Z literals become free choices for the solver.
                    let n = self.pool.len();
                    self.pool.var(format!("xlit.{n}"), v.width())
                } else {
                    self.pool.constant(v.clone())
                }
            }
            NExpr::Sig(s) => self.sig_term(*s, store),
            NExpr::Unary { op, operand, width } => {
                let x = self.eval_sym(operand, store);
                let t = match op {
                    UnaryOp::LogNot => {
                        let r = self.pool.red_or(x);
                        self.pool.not(r)
                    }
                    UnaryOp::BitNot => self.pool.not(x),
                    UnaryOp::RedAnd => self.pool.red_and(x),
                    UnaryOp::RedOr => self.pool.red_or(x),
                    UnaryOp::RedXor => self.pool.red_xor(x),
                    UnaryOp::RedNand => {
                        let r = self.pool.red_and(x);
                        self.pool.not(r)
                    }
                    UnaryOp::RedNor => {
                        let r = self.pool.red_or(x);
                        self.pool.not(r)
                    }
                    UnaryOp::Neg => {
                        let w = self.pool.width(x);
                        let z = self.pool.const_u64(w, 0);
                        self.pool.sub(z, x)
                    }
                };
                self.pool.resize(t, *width)
            }
            NExpr::Binary {
                op,
                lhs,
                rhs,
                width,
            } => {
                let a = self.eval_sym(lhs, store);
                let b = self.eval_sym(rhs, store);
                let t = match op {
                    BinaryOp::Add => self.pool.add(a, b),
                    BinaryOp::Sub => self.pool.sub(a, b),
                    BinaryOp::Mul => self.pool.mul(a, b),
                    BinaryOp::And => self.pool.and(a, b),
                    BinaryOp::Or => self.pool.or(a, b),
                    BinaryOp::Xor => self.pool.xor(a, b),
                    BinaryOp::LogAnd => {
                        let ra = self.pool.red_or(a);
                        let rb = self.pool.red_or(b);
                        self.pool.and(ra, rb)
                    }
                    BinaryOp::LogOr => {
                        let ra = self.pool.red_or(a);
                        let rb = self.pool.red_or(b);
                        self.pool.or(ra, rb)
                    }
                    BinaryOp::Eq | BinaryOp::CaseEq => self.pool.eq(a, b),
                    BinaryOp::Ne | BinaryOp::CaseNe => self.pool.ne(a, b),
                    BinaryOp::Lt => self.pool.ult(a, b),
                    BinaryOp::Le => self.pool.ule(a, b),
                    BinaryOp::Gt => self.pool.ult(b, a),
                    BinaryOp::Ge => self.pool.ule(b, a),
                    BinaryOp::Shl => self.pool.shl(a, b),
                    BinaryOp::Shr => self.pool.lshr(a, b),
                };
                self.pool.resize(t, *width)
            }
            NExpr::Ternary {
                cond,
                then,
                els,
                width,
            } => {
                let c = self.cond_bit(cond, store);
                let t = self.eval_sym(then, store);
                let e = self.eval_sym(els, store);
                let t = self.pool.resize(t, *width);
                let e = self.pool.resize(e, *width);
                self.pool.ite(c, t, e)
            }
            NExpr::BitSelect { sig, index } => {
                let x = self.sig_term(*sig, store);
                let i = self.eval_sym(index, store);
                let shifted = self.pool.lshr(x, i);
                self.pool.extract(shifted, 0, 1)
            }
            NExpr::PartSelect { sig, lo, width } => {
                let x = self.sig_term(*sig, store);
                self.pool.extract(x, *lo, *width)
            }
            NExpr::Concat { parts, width } => {
                let mut acc: Option<TermId> = None;
                for p in parts {
                    let t = self.eval_sym(p, store);
                    acc = Some(match acc {
                        None => t,
                        Some(a) => self.pool.concat(a, t),
                    });
                }
                let t = acc.unwrap_or_else(|| self.pool.const_u64(1, 0));
                self.pool.resize(t, *width)
            }
        }
    }
}

/// Substitutes variables in `t` according to `map` (var term → term),
/// rebuilding through the pool so constants fold on the way.
fn subst(
    pool: &mut TermPool,
    t: TermId,
    map: &HashMap<TermId, TermId>,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if let Some(r) = memo.get(&t) {
        return *r;
    }
    if let Some(r) = map.get(&t) {
        memo.insert(t, *r);
        return *r;
    }
    let kind = pool.kind(t).clone();
    let r = match kind {
        TermKind::Const(_) | TermKind::Var(_, _) => t,
        TermKind::Not(a) => {
            let a = subst(pool, a, map, memo);
            pool.not(a)
        }
        TermKind::And(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.and(a, b)
        }
        TermKind::Or(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.or(a, b)
        }
        TermKind::Xor(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.xor(a, b)
        }
        TermKind::Add(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.add(a, b)
        }
        TermKind::Sub(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.sub(a, b)
        }
        TermKind::Mul(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.mul(a, b)
        }
        TermKind::Eq(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.eq(a, b)
        }
        TermKind::Ult(a, b) => {
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.ult(a, b)
        }
        TermKind::Ite(c, a, b) => {
            let c = subst(pool, c, map, memo);
            let (a, b) = (subst(pool, a, map, memo), subst(pool, b, map, memo));
            pool.ite(c, a, b)
        }
        TermKind::Extract { arg, lo, width } => {
            let a = subst(pool, arg, map, memo);
            pool.extract(a, lo, width)
        }
        TermKind::ConcatPair(h, l) => {
            let (h, l) = (subst(pool, h, map, memo), subst(pool, l, map, memo));
            pool.concat(h, l)
        }
        TermKind::ShlConst(a, n) => {
            let a = subst(pool, a, map, memo);
            pool.shl_const(a, n)
        }
        TermKind::LshrConst(a, n) => {
            let a = subst(pool, a, map, memo);
            pool.lshr_const(a, n)
        }
        TermKind::RedAnd(a) => {
            let a = subst(pool, a, map, memo);
            pool.red_and(a)
        }
        TermKind::RedOr(a) => {
            let a = subst(pool, a, map, memo);
            pool.red_or(a)
        }
        TermKind::RedXor(a) => {
            let a = subst(pool, a, map, memo);
            pool.red_xor(a)
        }
    };
    memo.insert(t, r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_netlist::elaborate_src;

    fn engine(src: &str, top: &str) -> SymbolicEngine {
        SymbolicEngine::new(Arc::new(elaborate_src(src, top).unwrap()))
    }

    fn zero_state(d: &Design) -> Vec<LogicVec> {
        d.signals.iter().map(|s| LogicVec::zeros(s.width)).collect()
    }

    const FSM: &str = "
        module fsm(input clk, input rst_n, input [3:0] cmd,
                   output logic [2:0] state);
          always_ff @(posedge clk or negedge rst_n) begin
            if (!rst_n) state <= 3'd0;
            else begin
              case (state)
                3'd0: if (cmd == 4'd7) state <= 3'd1;
                3'd1: if (cmd[3]) state <= 3'd2; else state <= 3'd0;
                3'd2: state <= 3'd3;
                default: state <= 3'd0;
              endcase
            end
          end
        endmodule";

    #[test]
    fn equations_generated_for_all_registers() {
        let e = engine(FSM, "fsm");
        assert_eq!(e.num_equations(), 1);
        let st = e.design().signal_by_name("state").unwrap();
        assert!(e.equation(st).is_some());
    }

    #[test]
    fn solve_step_finds_magic_command() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let cmd = d.signal_by_name("cmd").unwrap();
        // From state 0, reaching state 1 requires cmd == 7.
        let sol = e
            .solve_step(&zero_state(&d), &[(st, LogicVec::from_u64(3, 1))])
            .expect("reachable");
        assert_eq!(sol.value(cmd).unwrap().to_u64(), Some(7));
    }

    #[test]
    fn solve_step_detects_unreachable_one_step_target() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        // state 3 needs two hops from state 0 — unreachable in one.
        assert!(e
            .solve_step(&zero_state(&d), &[(st, LogicVec::from_u64(3, 3))])
            .is_none());
    }

    #[test]
    fn solve_reach_unrolls_multi_cycle_paths() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let seq = e
            .solve_reach(&zero_state(&d), &[(st, LogicVec::from_u64(3, 3))], 4)
            .expect("reachable in ≤4 steps");
        // The geometric depth schedule may pad the 3-cycle plan to 4.
        assert!(seq.len() == 3 || seq.len() == 4, "got {} steps", seq.len());
        // Replaying the solved sequence on the real simulator must land
        // in the target state.
        let mut sim = symbfuzz_sim::Simulator::new(Arc::clone(&d));
        sim.reenter(symbfuzz_sim::Reentry::FullReset { cycles: 1 });
        for step in &seq {
            sim.apply_input_word(&step.to_word(&d));
            sim.step();
        }
        assert_eq!(sim.get(st).to_u64(), Some(3));
    }

    #[test]
    fn x_state_registers_are_unconstrained() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let mut state = zero_state(&d);
        state[st.index()] = LogicVec::xes(3);
        // With the register unconstrained the solver may choose state 2,
        // from which state 3 is reachable in one step.
        let sol = e.solve_step(&state, &[(st, LogicVec::from_u64(3, 3))]);
        assert!(sol.is_some());
    }

    #[test]
    fn reset_is_held_inactive_in_solutions() {
        // If the solver were allowed to assert reset it could "reach"
        // state 0 trivially; from state 2 the FSM forcibly moves to 3,
        // so reaching 0 in one step is impossible with reset held high.
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let mut state = zero_state(&d);
        state[st.index()] = LogicVec::from_u64(3, 2);
        assert!(e
            .solve_step(&state, &[(st, LogicVec::from_u64(3, 0))])
            .is_none());
    }

    #[test]
    fn comb_logic_is_inlined_into_equations() {
        let e = engine(
            "module m(input clk, input rst_n, input [7:0] a, input [7:0] b,
                      output logic [7:0] acc);
               wire [7:0] sum;
               assign sum = a ^ b;
               always_ff @(posedge clk or negedge rst_n)
                 if (!rst_n) acc <= 8'd0; else acc <= sum;
             endmodule",
            "m",
        );
        let d = Arc::clone(e.design());
        let acc = d.signal_by_name("acc").unwrap();
        let a = d.signal_by_name("a").unwrap();
        let b = d.signal_by_name("b").unwrap();
        let sol = e
            .solve_step(&zero_state(&d), &[(acc, LogicVec::from_u64(8, 0xFF))])
            .expect("reachable");
        let va = sol.value(a).unwrap().to_u64().unwrap();
        let vb = sol.value(b).unwrap().to_u64().unwrap();
        assert_eq!(va ^ vb, 0xFF);
    }

    #[test]
    fn blocking_assignment_ordering_respected() {
        let e = engine(
            "module m(input clk, input rst_n, input [3:0] d, output logic [3:0] q);
               logic [3:0] t;
               always_ff @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 4'd0;
                 else begin
                   t = d + 4'd1;
                   q <= t + 4'd1;
                 end
             endmodule",
            "m",
        );
        let d_arc = Arc::clone(e.design());
        let q = d_arc.signal_by_name("q").unwrap();
        let din = d_arc.signal_by_name("d").unwrap();
        let sol = e
            .solve_step(&zero_state(&d_arc), &[(q, LogicVec::from_u64(4, 9))])
            .expect("reachable");
        // q' = d + 2, so d must be 7.
        assert_eq!(sol.value(din).unwrap().to_u64(), Some(7));
    }

    #[test]
    fn input_assignment_word_packing() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let sol = e
            .solve_step(&zero_state(&d), &[(st, LogicVec::from_u64(3, 1))])
            .unwrap();
        let word = sol.to_word(&d);
        assert_eq!(word.width(), d.fuzz_width());
        assert_eq!(word.to_u64(), Some(7));
    }

    #[test]
    fn budgeted_reach_rejects_invalid_targets_without_panicking() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let cmd = d.signal_by_name("cmd").unwrap();
        let err = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::xes(3))],
                1,
                &Budget::unlimited(),
            )
            .unwrap_err();
        assert!(matches!(err, ReachError::XTarget { .. }));
        assert!(err.to_string().contains("state"));
        let err = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(cmd, LogicVec::from_u64(4, 1))],
                1,
                &Budget::unlimited(),
            )
            .unwrap_err();
        assert!(matches!(err, ReachError::NotARegister { .. }));
        assert!(err.to_string().contains("cmd"));
    }

    #[test]
    fn unlimited_budget_matches_solve_reach() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let expected = e
            .solve_reach(&zero_state(&d), &[(st, LogicVec::from_u64(3, 3))], 4)
            .unwrap();
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                4,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(out, ReachOutcome::Reached(expected));
        assert_eq!(out.status(), SolveStatus::Sat);
        // A genuinely unreachable one-step target stays `Unreachable`.
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                1,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(out, ReachOutcome::Unreachable);
        assert_eq!(out.status(), SolveStatus::Unsat);
    }

    #[test]
    fn unroll_depth_ceiling_reports_exhausted_not_unreachable() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        // State 3 needs three hops, but the budget caps unrolling at 1.
        let budget = Budget::unlimited().with_unroll_depth(1);
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                4,
                &budget,
            )
            .unwrap();
        assert!(matches!(
            out,
            ReachOutcome::Exhausted {
                reason: UnknownReason::UnrollDepth,
                ..
            }
        ));
        assert_eq!(
            out.status(),
            SolveStatus::Unknown(UnknownReason::UnrollDepth)
        );
        // A one-hop target is still found under the same ceiling.
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 1))],
                4,
                &budget,
            )
            .unwrap();
        assert!(matches!(out, ReachOutcome::Reached(_)));
    }

    #[test]
    fn term_node_ceiling_reports_exhausted() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let budget = Budget::unlimited().with_term_nodes(1);
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 1))],
                4,
                &budget,
            )
            .unwrap();
        assert!(matches!(
            out,
            ReachOutcome::Exhausted {
                reason: UnknownReason::TermNodes,
                ..
            }
        ));
    }

    #[test]
    fn zero_conflict_budget_exhausts_immediately() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let budget = Budget::unlimited().with_conflicts(0);
        let out = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 1))],
                4,
                &budget,
            )
            .unwrap();
        assert!(matches!(
            out,
            ReachOutcome::Exhausted {
                reason: UnknownReason::Conflicts,
                ..
            }
        ));
    }

    #[test]
    fn introspected_reach_matches_profiled_and_records_structure() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let targets = [(st, LogicVec::from_u64(3, 3))];
        let budget = Budget::unlimited();
        let (plain, plain_stats) = e
            .solve_reach_profiled(&zero_state(&d), &targets, 4, &budget)
            .unwrap();
        let (traced, stats, scope) = e
            .solve_reach_introspected(&zero_state(&d), &targets, 4, &budget)
            .unwrap();
        // Tracing must not change the search.
        assert_eq!(plain, traced);
        assert_eq!(plain_stats, stats);
        // Structure was recorded for the deepest call.
        assert!(scope.depth >= 1);
        assert!(!scope.sketch.is_empty());
        assert_eq!(scope.frame_digests.len() as u32, scope.depth);
        // Every exact-depth call landed in the per-call histogram.
        let calls: u64 = scope.call_conflict_hist.iter().sum();
        assert_eq!(calls, u64::from(stats.solver_calls));
        // Satisfiable goals carry no blame.
        assert!(scope.blame.is_empty());
    }

    #[test]
    fn unreachable_goals_carry_a_register_blame_set() {
        // From state 2 the FSM forcibly moves to 3, so state 0 is
        // unreachable in one step — and the blame is the current value
        // of `state` itself.
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let mut state = zero_state(&d);
        state[st.index()] = LogicVec::from_u64(3, 2);
        let (outcome, _, scope) = e
            .solve_reach_introspected(
                &state,
                &[(st, LogicVec::from_u64(3, 0))],
                1,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(outcome, ReachOutcome::Unreachable);
        assert_eq!(scope.blame, vec!["state".to_string()]);
    }

    #[test]
    fn neighbouring_goals_share_sketch_structure() {
        let e = engine(FSM, "fsm");
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let budget = Budget::unlimited();
        let (_, _, a) = e
            .solve_reach_introspected(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 1))],
                1,
                &budget,
            )
            .unwrap();
        let (_, _, b) = e
            .solve_reach_introspected(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 2))],
                1,
                &budget,
            )
            .unwrap();
        // Same register, same depth, different value: the unrolled
        // formulas share almost all their structure.
        let j = crate::scope::sketch_jaccard_milli(&a.sketch, &b.sketch);
        assert!(j >= 500, "affinity {j} unexpectedly low");
    }

    #[test]
    fn cached_reach_matches_fresh_verdicts_and_replays() {
        let fresh = engine(FSM, "fsm");
        let mut cached = engine(FSM, "fsm");
        cached.set_solver_cache(Some(16 << 20));
        let d = Arc::clone(fresh.design());
        let st = d.signal_by_name("state").unwrap();
        // Sibling goals from the same start state: every FSM state
        // value, reachable or not, at several bounds.
        for bound in [1u32, 4] {
            for val in 0..8u64 {
                let targets = [(st, LogicVec::from_u64(3, val))];
                let f = fresh
                    .solve_reach_budgeted(&zero_state(&d), &targets, bound, &Budget::unlimited())
                    .unwrap();
                let c = cached
                    .solve_reach_budgeted(&zero_state(&d), &targets, bound, &Budget::unlimited())
                    .unwrap();
                assert_eq!(
                    f.status(),
                    c.status(),
                    "verdict mismatch for state={val} bound={bound}"
                );
                // A warm solver may return a different (equally valid)
                // model: validate by replaying on the simulator.
                if let ReachOutcome::Reached(seq) = &c {
                    let mut sim = symbfuzz_sim::Simulator::new(Arc::clone(&d));
                    sim.reenter(symbfuzz_sim::Reentry::FullReset { cycles: 1 });
                    for step in seq {
                        sim.apply_input_word(&step.to_word(&d));
                        sim.step();
                    }
                    assert_eq!(sim.get(st).to_u64(), Some(val), "replay missed state {val}");
                }
            }
        }
        let stats = cached.cache_stats();
        assert!(stats.goals > 0);
        assert!(
            stats.reused_goals > 0,
            "sibling goals never reused: {stats:?}"
        );
        assert!(stats.frame_hits > 0, "no frame reuse: {stats:?}");
        assert_eq!(stats.evictions, 0);
        assert!(stats.reuse_milli() > 0);
    }

    #[test]
    fn cached_reach_budget_ceilings_match_fresh() {
        let fresh = engine(FSM, "fsm");
        let mut cached = engine(FSM, "fsm");
        cached.set_solver_cache(Some(16 << 20));
        let d = Arc::clone(fresh.design());
        let st = d.signal_by_name("state").unwrap();
        let targets = [(st, LogicVec::from_u64(3, 3))];
        // Unroll-depth ceiling: truncation happens before solving, so
        // the outcomes agree exactly.
        let budget = Budget::unlimited().with_unroll_depth(1);
        let f = fresh
            .solve_reach_budgeted(&zero_state(&d), &targets, 4, &budget)
            .unwrap();
        let c = cached
            .solve_reach_budgeted(&zero_state(&d), &targets, 4, &budget)
            .unwrap();
        assert_eq!(f.status(), c.status());
        // Conflicts-0: trips on the very first check either way.
        let budget = Budget::unlimited().with_conflicts(0);
        let c = cached
            .solve_reach_budgeted(&zero_state(&d), &targets, 4, &budget)
            .unwrap();
        assert_eq!(c.status(), SolveStatus::Unknown(UnknownReason::Conflicts));
    }

    #[test]
    fn cache_eviction_and_reset_preserve_verdicts() {
        let mut e = engine(FSM, "fsm");
        // A budget far below one session's footprint: every call seeds,
        // solves, then evicts — correct, just never warm.
        e.set_solver_cache(Some(1024));
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        for val in [1u64, 2, 3] {
            let out = e
                .solve_reach_budgeted(
                    &zero_state(&d),
                    &[(st, LogicVec::from_u64(3, val))],
                    4,
                    &Budget::unlimited(),
                )
                .unwrap();
            assert!(matches!(out, ReachOutcome::Reached(_)), "state {val}");
        }
        assert!(e.cache_stats().evictions > 0, "{:?}", e.cache_stats());
        // Explicit reset mid-campaign: verdicts unchanged after.
        e.set_solver_cache(Some(16 << 20));
        let before = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                4,
                &Budget::unlimited(),
            )
            .unwrap();
        e.reset_solver_cache();
        let after = e
            .solve_reach_budgeted(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                4,
                &Budget::unlimited(),
            )
            .unwrap();
        assert_eq!(before.status(), after.status());
    }

    #[test]
    fn cached_introspection_still_records_structure() {
        let mut e = engine(FSM, "fsm");
        e.set_solver_cache(Some(16 << 20));
        let d = Arc::clone(e.design());
        let st = d.signal_by_name("state").unwrap();
        let (outcome, stats, scope) = e
            .solve_reach_introspected(
                &zero_state(&d),
                &[(st, LogicVec::from_u64(3, 3))],
                4,
                &Budget::unlimited(),
            )
            .unwrap();
        assert!(matches!(outcome, ReachOutcome::Reached(_)));
        assert!(scope.depth >= 1);
        assert!(!scope.sketch.is_empty());
        assert_eq!(scope.frame_digests.len() as u32, scope.depth);
        assert!(stats.solver_calls >= 1);
    }

    #[test]
    fn design_fingerprint_is_stable_and_design_sensitive() {
        let a = engine(FSM, "fsm");
        let b = engine(FSM, "fsm");
        assert_eq!(a.design_fingerprint(), b.design_fingerprint());
        let c = engine(
            "module m(input clk, input rst_n, input [3:0] d, output logic [3:0] q);
               always_ff @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 4'd0; else q <= d;
             endmodule",
            "m",
        );
        assert_ne!(a.design_fingerprint(), c.design_fingerprint());
    }

    #[test]
    fn part_select_assignments_in_equations() {
        let e = engine(
            "module m(input clk, input rst_n, input [3:0] d, output logic [7:0] q);
               always_ff @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 8'd0;
                 else begin
                   q[3:0] <= d;
                   q[7:4] <= 4'hA;
                 end
             endmodule",
            "m",
        );
        let d_arc = Arc::clone(e.design());
        let q = d_arc.signal_by_name("q").unwrap();
        let din = d_arc.signal_by_name("d").unwrap();
        let sol = e
            .solve_step(&zero_state(&d_arc), &[(q, LogicVec::from_u64(8, 0xA5))])
            .expect("reachable");
        assert_eq!(sol.value(din).unwrap().to_u64(), Some(5));
        // And 0x55 is unreachable because the high nibble is forced to A.
        assert!(e
            .solve_step(&zero_state(&d_arc), &[(q, LogicVec::from_u64(8, 0x55))])
            .is_none());
    }
}
