//! Per-goal solver introspection: merged CDCL traces, structural
//! sketches, and blame sets.
//!
//! When introspection is enabled, every reachability query carries a
//! [`GoalScope`] alongside its [`ReachStats`](crate::ReachStats)
//! receipt: the merged [`SolveTrace`] across the geometric depth
//! schedule, a histogram of per-call conflict counts, the hottest
//! VSIDS variables mapped back to netlist signal names, a bottom-K
//! sketch of the unrolled formula's subterm digests (the raw material
//! for cross-goal affinity), and — for `Unreachable`/`Exhausted`
//! outcomes — a *blame set* of state registers whose concrete values
//! make the target unreachable.
//!
//! Everything here is deterministic: sketches are sorted digest sets,
//! hot signals sort by (permille desc, name asc), and blame sets keep
//! register-name order, so merged reports are byte-identical at any
//! `--jobs` count.

use symbfuzz_smt::{trace_bucket, SolveTrace, TRACE_HIST_BUCKETS};

/// Bottom-K sketch size for subterm digests. 128 digests estimate the
/// Jaccard similarity of two formulas to within a few percent while
/// keeping `CampaignResult` blocks small.
pub const SKETCH_K: usize = 128;

/// Hot-signal list length carried per goal.
pub const HOT_SIGNALS_K: usize = 8;

/// Maximum state registers posed as assumptions in a blame query.
pub const BLAME_MAX_ASSUMPTIONS: usize = 16;

/// Introspection record for one whole reachability query (every
/// exact-depth solve of the schedule merged).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoalScope {
    /// Merged CDCL analytics across the depth schedule.
    pub trace: SolveTrace,
    /// Histogram of *per exact-depth call* conflict counts, log₄
    /// buckets (same bucketing as the trace histograms) — the shape of
    /// how hard individual calls were, as opposed to the total.
    pub call_conflict_hist: Vec<u64>,
    /// Hottest netlist signals by VSIDS activity: `(signal name,
    /// permille of the hottest variable's activity)`, sorted by
    /// (permille desc, name asc), at most [`HOT_SIGNALS_K`] entries.
    pub hot_signals: Vec<(String, u64)>,
    /// State registers implicated in an `Unreachable`/`Exhausted`
    /// outcome (assumption-core-lite), in register-name order. Empty
    /// for satisfiable goals or when extraction ran out of budget.
    pub blame: Vec<String>,
    /// Whether [`blame`](Self::blame) came from a real assumption-core
    /// extraction (`true`) or the hot-signal fallback (`false`).
    pub blame_is_core: bool,
    /// Bottom-[`SKETCH_K`] of the sorted subterm structural digests of
    /// the deepest unrolled formula.
    pub sketch: Vec<u64>,
    /// Structural digest of each unrolled frame's state (deepest call),
    /// frame 1 first.
    pub frame_digests: Vec<u64>,
    /// Deepest unroll the sketch and frame digests describe.
    pub depth: u32,
}

impl GoalScope {
    /// A scope with the conflict histogram sized and zeroed.
    pub fn new() -> GoalScope {
        GoalScope {
            call_conflict_hist: vec![0; TRACE_HIST_BUCKETS],
            ..GoalScope::default()
        }
    }

    /// Folds one exact-depth call's trace into the scope.
    pub fn note_call(&mut self, trace: &SolveTrace) {
        if self.call_conflict_hist.len() != TRACE_HIST_BUCKETS {
            self.call_conflict_hist = vec![0; TRACE_HIST_BUCKETS];
        }
        self.call_conflict_hist[trace_bucket(trace.conflicts)] += 1;
        self.trace.merge(trace);
    }

    /// Merges a batch of named hot signals, keeping the maximum
    /// permille per name, then re-sorting and truncating to
    /// [`HOT_SIGNALS_K`].
    pub fn note_hot_signals(&mut self, named: &[(String, u64)]) {
        for (name, permille) in named {
            match self.hot_signals.iter_mut().find(|(n, _)| n == name) {
                Some(slot) => slot.1 = slot.1.max(*permille),
                None => self.hot_signals.push((name.clone(), *permille)),
            }
        }
        self.hot_signals
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.hot_signals.truncate(HOT_SIGNALS_K);
    }

    /// Installs the sketch and frame digests for a call at `depth`,
    /// keeping only the deepest call's view of the formula.
    pub fn note_structure(&mut self, depth: u32, sketch: Vec<u64>, frame_digests: Vec<u64>) {
        if depth >= self.depth {
            self.depth = depth;
            self.sketch = sketch;
            self.frame_digests = frame_digests;
        }
    }

    /// Merges another scope (e.g. re-attempts of the same goal):
    /// traces and histograms sum, hot signals fold by max, the deeper
    /// structure wins, and blame sets union in sorted order.
    pub fn merge(&mut self, other: &GoalScope) {
        self.trace.merge(&other.trace);
        if self.call_conflict_hist.len() != TRACE_HIST_BUCKETS {
            self.call_conflict_hist = vec![0; TRACE_HIST_BUCKETS];
        }
        for (i, n) in other.call_conflict_hist.iter().enumerate() {
            if i < self.call_conflict_hist.len() {
                self.call_conflict_hist[i] += n;
            }
        }
        self.note_hot_signals(&other.hot_signals);
        if other.depth >= self.depth && !other.sketch.is_empty() {
            self.depth = other.depth;
            self.sketch = other.sketch.clone();
            self.frame_digests = other.frame_digests.clone();
        }
        for b in &other.blame {
            if !self.blame.contains(b) {
                self.blame.push(b.clone());
            }
        }
        self.blame.sort();
        self.blame_is_core |= other.blame_is_core;
    }
}

/// Estimates the Jaccard similarity of the digest sets behind two
/// bottom-K sketches, in milli (0–1000).
///
/// Both inputs must be sorted, deduplicated bottom-K sets (as
/// [`GoalScope::sketch`] stores them). The estimator is the classic
/// KMV one: take the K smallest digests of the union and count how
/// many appear in both sketches. Returns 0 when either sketch is
/// empty.
pub fn sketch_jaccard_milli(a: &[u64], b: &[u64]) -> u64 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let k = SKETCH_K.min(a.len() + b.len());
    // Merge the two sorted sets, keeping the k smallest distinct
    // digests and counting those present in both.
    let (mut i, mut j) = (0usize, 0usize);
    let mut taken = 0usize;
    let mut both = 0usize;
    while taken < k && (i < a.len() || j < b.len()) {
        if i < a.len() && j < b.len() && a[i] == b[j] {
            both += 1;
            i += 1;
            j += 1;
        } else if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            i += 1;
        } else {
            j += 1;
        }
        taken += 1;
    }
    if taken == 0 {
        return 0;
    }
    (both as u64 * 1000) / taken as u64
}

/// Parses an engine term name back to the netlist signal it stands
/// for: `cur.foo`, `x0.foo`, `in.foo`, `in@3.foo` and `float.foo` all
/// map to `foo`; synthetic `xlit.N` symbols map to `None`.
pub fn signal_of_term_name(name: &str) -> Option<&str> {
    for prefix in ["cur.", "x0.", "in.", "float."] {
        if let Some(rest) = name.strip_prefix(prefix) {
            return Some(rest);
        }
    }
    if let Some(rest) = name.strip_prefix("in@") {
        if let Some(dot) = rest.find('.') {
            if rest[..dot].chars().all(|c| c.is_ascii_digit()) {
                return Some(&rest[dot + 1..]);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_names_map_back_to_signals() {
        assert_eq!(signal_of_term_name("cur.state"), Some("state"));
        assert_eq!(signal_of_term_name("x0.lock"), Some("lock"));
        assert_eq!(signal_of_term_name("in.cmd"), Some("cmd"));
        assert_eq!(signal_of_term_name("in@12.cmd"), Some("cmd"));
        assert_eq!(signal_of_term_name("float.wire_a"), Some("wire_a"));
        assert_eq!(signal_of_term_name("xlit.7"), None);
        assert_eq!(signal_of_term_name("in@x.cmd"), None);
        assert_eq!(signal_of_term_name("unprefixed"), None);
    }

    #[test]
    fn hot_signals_fold_by_max_and_stay_bounded() {
        let mut s = GoalScope::new();
        s.note_hot_signals(&[("b".into(), 400), ("a".into(), 400)]);
        s.note_hot_signals(&[("b".into(), 900)]);
        assert_eq!(s.hot_signals[0], ("b".to_string(), 900));
        assert_eq!(s.hot_signals[1], ("a".to_string(), 400));
        let many: Vec<(String, u64)> = (0..20).map(|i| (format!("s{i:02}"), 100 + i)).collect();
        s.note_hot_signals(&many);
        assert_eq!(s.hot_signals.len(), HOT_SIGNALS_K);
    }

    #[test]
    fn structure_keeps_the_deepest_call() {
        let mut s = GoalScope::new();
        s.note_structure(2, vec![1, 2], vec![10, 20]);
        s.note_structure(1, vec![9], vec![90]);
        assert_eq!(s.depth, 2);
        assert_eq!(s.sketch, vec![1, 2]);
        s.note_structure(4, vec![3], vec![30, 40, 50, 60]);
        assert_eq!(s.depth, 4);
        assert_eq!(s.frame_digests.len(), 4);
    }

    #[test]
    fn jaccard_estimates_overlap() {
        let a: Vec<u64> = (0..100).collect();
        assert_eq!(sketch_jaccard_milli(&a, &a), 1000);
        let b: Vec<u64> = (100..200).collect();
        assert_eq!(sketch_jaccard_milli(&a, &b), 0);
        // Half-overlapping sets: 50 shared of 100 distinct → ~333 milli
        // (J = 50/150), estimated over the union's bottom-k.
        let c: Vec<u64> = (50..150).collect();
        let j = sketch_jaccard_milli(&a, &c);
        assert!((250..=450).contains(&j), "got {j}");
        assert_eq!(sketch_jaccard_milli(&a, &[]), 0);
    }

    #[test]
    fn merge_unions_blame_and_sums_histograms() {
        let mut a = GoalScope::new();
        a.blame = vec!["lock".into()];
        a.call_conflict_hist[0] = 1;
        a.note_structure(1, vec![7], vec![70]);
        let mut b = GoalScope::new();
        b.blame = vec!["counter".into(), "lock".into()];
        b.call_conflict_hist[0] = 2;
        b.note_structure(3, vec![8, 9], vec![80, 90, 91]);
        a.merge(&b);
        assert_eq!(a.blame, vec!["counter".to_string(), "lock".to_string()]);
        assert_eq!(a.call_conflict_hist[0], 3);
        assert_eq!(a.depth, 3);
        assert_eq!(a.sketch, vec![8, 9]);
    }
}
