//! Per-goal solver profiler.
//!
//! A *goal* is one `(register, value)` reachability target the fuzz
//! loop keeps asking the symbolic engine about. The campaign counters
//! say how much CDCL work the whole run consumed; this profiler
//! attributes it goal by goal — cumulative conflicts/decisions/
//! propagations, outcome tallies, negative-cache hits and the full
//! escalation history (the budget level of every attempt, in order),
//! so a stuck goal like `hard_factor`'s lock register is visible as a
//! run of exhausted attempts at climbing budget levels.
//!
//! Rows live in a `Vec` in first-seen order with a side index, so
//! iteration (and therefore serialization) is deterministic and
//! byte-identical across `--jobs`.

use crate::engine::{ReachOutcome, ReachStats};
use std::collections::HashMap;

/// Accumulated solver work for one `(register, value)` goal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoalProfile {
    /// Target register name.
    pub register: String,
    /// Target value (goals are ≤ 64 bits in the campaign loop).
    pub value: u64,
    /// Reachability queries issued for this goal (cache hits excluded).
    pub attempts: u64,
    /// Queries that produced an input plan.
    pub sat: u64,
    /// Queries proven unreachable within their bound.
    pub unsat: u64,
    /// Queries that ran out of budget undecided.
    pub exhausted: u64,
    /// Times the negative cache short-circuited this goal.
    pub neg_cache_hits: u64,
    /// Cumulative CDCL conflicts across all attempts.
    pub conflicts: u64,
    /// Cumulative CDCL decisions across all attempts.
    pub decisions: u64,
    /// Cumulative unit propagations across all attempts.
    pub propagations: u64,
    /// Cumulative exact-depth solver calls (depth-schedule fan-out).
    pub solver_calls: u64,
    /// Deepest unroll ever attempted for this goal.
    pub deepest_unroll: u32,
    /// Escalation level of each attempt, in attempt order — the
    /// goal's budget-climbing history.
    pub escalations: Vec<u32>,
}

/// Collects [`GoalProfile`] rows across a campaign.
#[derive(Debug, Clone, Default)]
pub struct SolveProfiler {
    rows: Vec<GoalProfile>,
    index: HashMap<(String, u64), usize>,
}

impl SolveProfiler {
    /// An empty profiler.
    pub fn new() -> SolveProfiler {
        SolveProfiler::default()
    }

    fn row_mut(&mut self, register: &str, value: u64) -> &mut GoalProfile {
        let key = (register.to_string(), value);
        let idx = *self.index.entry(key).or_insert_with(|| {
            self.rows.push(GoalProfile {
                register: register.to_string(),
                value,
                ..GoalProfile::default()
            });
            self.rows.len() - 1
        });
        &mut self.rows[idx]
    }

    /// Charges one completed reachability query to a goal.
    pub fn note_outcome(
        &mut self,
        register: &str,
        value: u64,
        escalation: u32,
        outcome: &ReachOutcome,
        stats: ReachStats,
    ) {
        let row = self.row_mut(register, value);
        row.attempts += 1;
        match outcome {
            ReachOutcome::Reached(_) => row.sat += 1,
            ReachOutcome::Unreachable => row.unsat += 1,
            ReachOutcome::Exhausted { .. } => row.exhausted += 1,
        }
        row.conflicts += stats.spent.conflicts;
        row.decisions += stats.spent.decisions;
        row.propagations += stats.spent.propagations;
        row.solver_calls += u64::from(stats.solver_calls);
        row.deepest_unroll = row.deepest_unroll.max(stats.deepest_unroll);
        row.escalations.push(escalation);
    }

    /// Records a negative-cache short-circuit for a goal (no query was
    /// issued; the cache remembered a prior Unsat).
    pub fn note_neg_cache_hit(&mut self, register: &str, value: u64) {
        self.row_mut(register, value).neg_cache_hits += 1;
    }

    /// Rows in first-seen order.
    pub fn rows(&self) -> &[GoalProfile] {
        &self.rows
    }

    /// Rows sorted hardest-first by cumulative conflicts (ties broken
    /// by decisions, then first-seen order). The order is total, so it
    /// is stable across runs.
    pub fn sorted_rows(&self) -> Vec<&GoalProfile> {
        let mut refs: Vec<(usize, &GoalProfile)> = self.rows.iter().enumerate().collect();
        refs.sort_by(|(ia, a), (ib, b)| {
            b.conflicts
                .cmp(&a.conflicts)
                .then(b.decisions.cmp(&a.decisions))
                .then(ia.cmp(ib))
        });
        refs.into_iter().map(|(_, r)| r).collect()
    }

    /// Total negative-cache hits across all goals — the cache's
    /// effectiveness counter, next to total attempts.
    pub fn total_neg_cache_hits(&self) -> u64 {
        self.rows.iter().map(|r| r.neg_cache_hits).sum()
    }

    /// Total queries issued across all goals.
    pub fn total_attempts(&self) -> u64 {
        self.rows.iter().map(|r| r.attempts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_smt::BudgetSpent;
    use symbfuzz_telemetry::UnknownReason;

    fn stats(conflicts: u64, calls: u32, depth: u32) -> ReachStats {
        ReachStats {
            spent: BudgetSpent {
                conflicts,
                decisions: conflicts * 2,
                propagations: conflicts * 10,
            },
            solver_calls: calls,
            deepest_unroll: depth,
        }
    }

    #[test]
    fn goals_accumulate_and_keep_escalation_history() {
        let mut p = SolveProfiler::new();
        let exhausted = ReachOutcome::Exhausted {
            reason: UnknownReason::Conflicts,
            spent: BudgetSpent::default(),
        };
        p.note_outcome("lock", 1, 0, &exhausted, stats(50, 2, 2));
        p.note_outcome("lock", 1, 1, &exhausted, stats(100, 3, 4));
        p.note_outcome(
            "lock",
            1,
            2,
            &ReachOutcome::Reached(vec![]),
            stats(30, 1, 1),
        );
        p.note_neg_cache_hit("lock", 1);
        p.note_outcome("state", 3, 0, &ReachOutcome::Unreachable, stats(5, 2, 4));

        assert_eq!(p.rows().len(), 2);
        let lock = &p.rows()[0];
        assert_eq!(lock.register, "lock");
        assert_eq!(lock.attempts, 3);
        assert_eq!((lock.sat, lock.unsat, lock.exhausted), (1, 0, 2));
        assert_eq!(lock.escalations, vec![0, 1, 2]);
        assert_eq!(lock.conflicts, 180);
        assert_eq!(lock.solver_calls, 6);
        assert_eq!(lock.deepest_unroll, 4);
        assert_eq!(lock.neg_cache_hits, 1);
        assert_eq!(p.total_attempts(), 4);
        assert_eq!(p.total_neg_cache_hits(), 1);
    }

    #[test]
    fn sorted_rows_put_hardest_goal_first() {
        let mut p = SolveProfiler::new();
        p.note_outcome("easy", 0, 0, &ReachOutcome::Unreachable, stats(1, 1, 1));
        p.note_outcome("hard", 0, 0, &ReachOutcome::Unreachable, stats(999, 1, 1));
        let sorted = p.sorted_rows();
        assert_eq!(sorted[0].register, "hard");
        assert_eq!(sorted[1].register, "easy");
        // Insertion order is preserved in `rows()`.
        assert_eq!(p.rows()[0].register, "easy");
    }
}
