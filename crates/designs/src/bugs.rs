//! The 14 buggy IPs of Table 1, re-implemented from the paper's
//! listings with the same flaw semantics at reduced datapath width.
//!
//! Every benchmark carries: the RTL (in the supported SystemVerilog
//! subset), the paper's detection property (translated into the
//! `symbfuzz-props` language), the CWE id, the Table 2 oracle
//! visibility for the RFuzz/DifuzzRTL/HWFP baselines, and a *witness* —
//! a short directed input sequence that provably triggers the
//! violation (used by the test suite to certify each bug is real).

use std::sync::Arc;
use symbfuzz_core::PropertySpec;
use symbfuzz_netlist::{elaborate_src, Design, ElabError};

/// One row of Table 1: a buggy IP plus its detection property.
#[derive(Debug, Clone)]
pub struct BugBenchmark {
    /// Bug number (1–14, matching Table 1).
    pub id: u32,
    /// Short benchmark name.
    pub name: &'static str,
    /// Bug description (Table 1 column 2).
    pub description: &'static str,
    /// Sub-module the paper locates the bug in (Table 1 column 3).
    pub submodule: &'static str,
    /// CWE classification (Table 1 column 5).
    pub cwe: &'static str,
    /// Input vectors the paper reports to detection (Table 1 column 6).
    pub paper_vectors: f64,
    /// RTL source.
    pub rtl: &'static str,
    /// Top module name.
    pub top: &'static str,
    /// Detection property source (paper Listings 5–32).
    pub property: &'static str,
    /// Table 2: detected by RFuzz / DifuzzRTL / HWFP.
    pub table2: (bool, bool, bool),
    /// Directed trigger: one `(input, value)` set per cycle.
    pub witness: &'static [&'static [(&'static str, u64)]],
}

impl BugBenchmark {
    /// Elaborates the RTL.
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (none for the shipped set — the
    /// test suite elaborates all 14).
    pub fn design(&self) -> Result<Arc<Design>, ElabError> {
        Ok(Arc::new(elaborate_src(self.rtl, self.top)?))
    }

    /// The property with its Table 2 oracle-visibility gates.
    pub fn property_spec(&self) -> PropertySpec {
        let (r, d, h) = self.table2;
        PropertySpec::with_visibility(self.name, self.property, r, d, h)
    }
}

const BUG01_RTL: &str = "
module scmi_reg_top(
  input clk, input rst_n,
  input reg_we, input [7:0] addr, input [15:0] wdata,
  output logic [15:0] rdata, output logic wr_err,
  output logic [1:0] req_state);
  logic [15:0] mem0;
  logic [15:0] mem1;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      req_state <= 2'd0; mem0 <= 16'd0; mem1 <= 16'd0;
      wr_err <= 1'b0; rdata <= 16'd0;
    end else begin
      case (req_state)
        2'd0: begin
          wr_err <= 1'b0;
          if (reg_we) req_state <= 2'd1;
        end
        2'd1: begin
          if (addr == 8'd0) mem0 <= wdata;
          else begin
            if (addr == 8'd1) mem1 <= wdata;
            // BUG (Listing 4): writes to reserved addresses (>= 0xF0)
            // are correctly discarded, but no error/warning is raised.
          end
          req_state <= 2'd2;
        end
        2'd2: begin
          rdata <= addr[0] ? mem1 : mem0;
          req_state <= 2'd0;
        end
        default: req_state <= 2'd0;
      endcase
    end
  end
endmodule";

const BUG02_RTL: &str = "
module lc_ctrl_fsm(
  input clk, input rst_n, input [3:0] cmd, input [15:0] token,
  output logic [3:0] fsm_state_q, output logic busy);
  logic [3:0] scratch_q;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) fsm_state_q <= 4'd0;
    else begin
      case (fsm_state_q)
        4'd0: if (cmd == 4'd1) fsm_state_q <= 4'd1;
        4'd1: if (cmd == 4'd3) fsm_state_q <= 4'd2; else fsm_state_q <= 4'd0;
        4'd2: begin
          // BUG (Listing 6): jump target register has no reset and no
          // default covers it; the FSM can enter an undefined state.
          if (cmd == 4'd7) fsm_state_q <= scratch_q;
          else begin
            if (cmd == 4'd2) fsm_state_q <= 4'd3;
          end
        end
        4'd3: fsm_state_q <= 4'd0;
        default: fsm_state_q <= 4'd0;
      endcase
    end
  end
  always_ff @(posedge clk) begin
    // Provisioning path: only a privileged token ever initialises the
    // jump-target register, so it is X for the whole campaign.
    if (cmd == 4'd9 && token == 16'hA5A5) scratch_q <= token[3:0];
  end
  always_comb busy = fsm_state_q != 4'd0;
endmodule";

const BUG03_RTL: &str = "
module lc_ctrl_signal_decoder(
  input clk, input rst_n, input [3:0] lc_cmd, input [7:0] test_token,
  output logic [3:0] lc_state_q,
  output logic lc_nvm_debug_en, output logic lc_prod_en);
  // RAW=0, TESTUNLOCKED0..2=1..3, PROD=4, RMA=5
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) lc_state_q <= 4'd0;
    else begin
      case (lc_state_q)
        4'd0: if (lc_cmd == 4'd1) lc_state_q <= 4'd1;
        4'd1: if (lc_cmd == 4'd2 && test_token == 8'hC3) lc_state_q <= 4'd2;
        4'd2: if (lc_cmd == 4'd2) lc_state_q <= 4'd3;
        4'd3: if (lc_cmd == 4'd4) lc_state_q <= 4'd4;
        4'd4: if (lc_cmd == 4'd5 && test_token == 8'h3C) lc_state_q <= 4'd5;
        4'd5: lc_state_q <= 4'd5;
        default: lc_state_q <= 4'd0;
      endcase
    end
  end
  always_comb begin
    lc_prod_en = lc_state_q == 4'd4;
    // BUG (Listing 8): NVM debug must only be enabled in RMA, but the
    // decoder also enables it in PROD, before test completion.
    lc_nvm_debug_en = lc_state_q == 4'd4 || lc_state_q == 4'd5;
  end
endmodule";

const BUG04_RTL: &str = "
module aes_reg_top(
  input clk, input rst_n, input re, input we,
  input [3:0] addr, input [15:0] wdata,
  output logic [15:0] rdata, output logic [1:0] ctrl_state);
  logic [15:0] key_share0;
  logic [15:0] key_share1;
  logic [15:0] data_in;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      key_share0 <= 16'd0; key_share1 <= 16'd0; data_in <= 16'd0;
      ctrl_state <= 2'd0;
    end else begin
      case (ctrl_state)
        2'd0: if (we) ctrl_state <= 2'd1;
        2'd1: begin
          if (addr == 4'd1) key_share0 <= wdata;
          if (addr == 4'd2) key_share1 <= wdata;
          if (addr == 4'd3) data_in <= wdata;
          ctrl_state <= 2'd0;
        end
        default: ctrl_state <= 2'd0;
      endcase
    end
  end
  always_comb begin
    rdata = 16'd0;
    if (re) begin
      case (addr)
        4'd1: rdata = key_share0; // BUG (Listing 10): key share leaks to the bus
        4'd3: rdata = data_in;
        default: rdata = 16'd0;
      endcase
    end
  end
endmodule";

const BUG05_RTL: &str = "
module aes_core(
  input clk, input rst_n, input start, input wipe,
  input [15:0] din, input [15:0] prng_in,
  output logic [15:0] data_q, output logic [1:0] aes_state);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin data_q <= 16'd0; aes_state <= 2'd0; end
    else begin
      case (aes_state)
        2'd0: if (start) begin data_q <= din; aes_state <= 2'd1; end
        2'd1: begin
          if (wipe) begin
            data_q <= din;  // BUG (Listing 12): wipe loads input data, not PRNG
            aes_state <= 2'd0;
          end else data_q <= data_q ^ prng_in;
        end
        default: aes_state <= 2'd0;
      endcase
    end
  end
endmodule";

const BUG06_RTL: &str = "
module aes_prng_masking(
  input clk, input rst_n, input en, input force_masks,
  output logic [7:0] perm, output logic [7:0] data_o, output logic phase_q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin perm <= 8'h9A; phase_q <= 1'b0; end
    else begin
      if (en) begin
        perm <= {perm[6:0], perm[7] ^ perm[5]};
        phase_q <= !phase_q;
      end
    end
  end
  // BUG (Listing 15): masking data is unconditionally zero; the PRNG
  // permutation never reaches the masking network.
  always_comb data_o = force_masks ? 8'd0 : 8'd0;
endmodule";

const BUG07_RTL: &str = "
module otbn_mac_bignum(
  input clk, input rst_n, input mac_en, input alu_en, input [15:0] operand_b,
  output logic [15:0] operand_b_blanked, output logic [1:0] otbn_state);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) otbn_state <= 2'd0;
    else begin
      case (otbn_state)
        2'd0: if (mac_en) otbn_state <= 2'd1;
        2'd1: begin
          if (alu_en) otbn_state <= 2'd2;
          else begin
            if (!mac_en) otbn_state <= 2'd0;
          end
        end
        2'd2: otbn_state <= 2'd0;
        default: otbn_state <= 2'd0;
      endcase
    end
  end
  // BUG (Listing 17): the blanker enable is tied high, so operands
  // pass through even when no unit consumes them (power side channel).
  always_comb operand_b_blanked = operand_b;
endmodule";

const BUG08_RTL: &str = "
module rom_ctrl_fsm(
  input clk, input rst_n, input start, input counter_done, input kmac_ok,
  output logic [2:0] state_q, output logic done_o);
  // Idle=0, ReadingLow=1, KmacAhead=2, Checking=3, Done=4
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) state_q <= 3'd0;
    else begin
      case (state_q)
        3'd0: if (start) state_q <= 3'd1;
        3'd1: state_q <= 3'd2;
        3'd2: if (counter_done) state_q <= 3'd4; // BUG (Listing 19): skips Checking
        3'd3: if (kmac_ok) state_q <= 3'd4;
        3'd4: state_q <= 3'd0;
        default: state_q <= 3'd0;
      endcase
    end
  end
  always_comb done_o = state_q == 3'd4;
endmodule";

const BUG09_RTL: &str = "
module pwr_mgr_fsm_a(
  input clk, input rst_n, input req, input [1:0] reset_reqs_i,
  output logic [2:0] state_q, output logic clr_slow_req_o);
  // Active=0, ResetPrep=1, FastPwrStateResetWait=2, Low=3
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin state_q <= 3'd0; clr_slow_req_o <= 1'b0; end
    else begin
      case (state_q)
        3'd0: if (req) state_q <= 3'd1;
        3'd1: state_q <= 3'd2;
        3'd2: begin
          // BUG (Listing 21): clear is raised unconditionally instead
          // of waiting for reset_reqs_i[ResetMainPwrIdx].
          clr_slow_req_o <= 1'b1;
          if (reset_reqs_i[0]) state_q <= 3'd3;
        end
        3'd3: begin clr_slow_req_o <= 1'b0; state_q <= 3'd0; end
        default: state_q <= 3'd0;
      endcase
    end
  end
endmodule";

const BUG10_RTL: &str = "
module pwr_mgr_fsm_b(
  input clk, input rst_n, input boot, input rom_intg_chk_good,
  output logic [2:0] state_q, output logic active_o);
  // Idle=0, FastPwrStateRomCheckGood=1, FastPwrStateActive=2
  logic [2:0] state_d;
  always_comb begin
    state_d = state_q;
    case (state_q)
      3'd0: if (boot) state_d = 3'd1;
      3'd1: state_d = 3'd2; // BUG (Listing 23): rom_intg_chk_good is not checked
      3'd2: state_d = 3'd0;
      default: state_d = 3'd0;
    endcase
  end
  always_ff @(posedge clk or negedge rst_n)
    if (!rst_n) state_q <= 3'd0; else state_q <= state_d;
  always_comb active_o = state_q == 3'd2;
endmodule";

const BUG11_RTL: &str = "
module uart_rx(
  input clk, input rst_n, input [7:0] rx_data, input parity_bit,
  input parity_enable, input valid,
  output logic rx_parity_err, output logic [1:0] rx_state);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin rx_parity_err <= 1'b0; rx_state <= 2'd0; end
    else begin
      case (rx_state)
        2'd0: if (valid) rx_state <= 2'd1;
        2'd1: begin
          // BUG (Listing 25): parity is checked even when the host has
          // disabled it, raising spurious error flags.
          rx_parity_err <= (^rx_data) ^ parity_bit;
          rx_state <= 2'd2;
        end
        2'd2: rx_state <= 2'd0;
        default: rx_state <= 2'd0;
      endcase
    end
  end
endmodule";

const BUG12_RTL: &str = "
module csrng_reg_top(
  input clk, input rst_n, input we, input [4:0] sel, input reseed_interval_we,
  output logic [7:0] reg_we_check, output logic [1:0] csr_state);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin reg_we_check <= 8'd0; csr_state <= 2'd0; end
    else begin
      case (csr_state)
        2'd0: if (we) csr_state <= 2'd1;
        2'd1: begin
          reg_we_check[0] <= sel == 5'd0;
          reg_we_check[1] <= sel == 5'd1;
          reg_we_check[2] <= sel == 5'd2;
          reg_we_check[3] <= sel == 5'd3;
          reg_we_check[4] <= sel == 5'd4;
          reg_we_check[5] <= sel == 5'd5;
          reg_we_check[6] <= sel == 5'd6;
          // BUG (Listing 27): bit 7 — the reseed-interval-enable check —
          // is hardwired off; the checker can never verify reseeding.
          reg_we_check[7] <= 1'b0;
          csr_state <= 2'd0;
        end
        default: csr_state <= 2'd0;
      endcase
    end
  end
endmodule";

const BUG13_RTL: &str = "
module sysrst_ctrl_reg_top(
  input clk, input rst_n, input reg_we, input [3:0] addr, input [3:0] reg_be,
  output logic wr_err, output logic [1:0] bus_state);
  // BUG (Listing 29): the permit mask should be 4'b0001 so a blocked
  // byte-enable raises the error flag; 4'b0000 silences it forever.
  localparam PERMIT = 4'b0000;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin wr_err <= 1'b0; bus_state <= 2'd0; end
    else begin
      case (bus_state)
        2'd0: if (reg_we) bus_state <= 2'd1;
        2'd1: begin
          wr_err <= (|(PERMIT & ~reg_be)) && addr == 4'd0;
          bus_state <= 2'd0;
        end
        default: bus_state <= 2'd0;
      endcase
    end
  end
endmodule";

const BUG14_RTL: &str = "
module otp_ctrl_dai(
  input clk, input rst_n, input data_en, input data_sel,
  input [15:0] scrmbl_data_i,
  output logic [15:0] data_q, output logic [1:0] dai_state);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin data_q <= 16'd0; dai_state <= 2'd0; end
    else begin
      case (dai_state)
        2'd0: if (data_en) dai_state <= 2'd1;
        2'd1: dai_state <= 2'd0;
        default: dai_state <= 2'd0;
      endcase
      // BUG (Listing 31): the enable wipes the data register instead
      // of loading the selected scramble data.
      if (data_en) data_q <= 16'd0;
      else begin
        if (data_sel) data_q <= scrmbl_data_i;
      end
    end
  end
endmodule";

/// Returns the 14 bug benchmarks of Table 1, in paper order.
pub fn bug_benchmarks() -> Vec<BugBenchmark> {
    vec![
        BugBenchmark {
            id: 1,
            name: "mailbox_no_feedback",
            description: "No feedback for data error in the Mailbox",
            submodule: "scmi_reg_top",
            cwe: "New Entry (CWE 2025)",
            paper_vectors: 6.47e6,
            rtl: BUG01_RTL,
            top: "scmi_reg_top",
            property: "req_state == 2'd1 && addr >= 8'hF0 |=> wr_err",
            table2: (false, false, false),
            witness: &[
                &[("reg_we", 1), ("addr", 0xF0), ("wdata", 0xAAAA)],
                &[("reg_we", 0), ("addr", 0xF0)],
                &[("addr", 0xF0)],
            ],
        },
        BugBenchmark {
            id: 2,
            name: "lc_undefined_state",
            description: "Undefined default state",
            submodule: "lc_ctrl_fsm",
            cwe: "CWE-1199",
            paper_vectors: 1.64e7,
            rtl: BUG02_RTL,
            top: "lc_ctrl_fsm",
            property: "!$isunknown(fsm_state_q)",
            table2: (false, true, true),
            witness: &[
                &[("cmd", 1)],
                &[("cmd", 3)],
                &[("cmd", 7)],
            ],
        },
        BugBenchmark {
            id: 3,
            name: "lc_prod_before_unlock",
            description: "Production function enabled before unlocked-state testing completes",
            submodule: "lc_ctrl_signal_decoder",
            cwe: "CWE-1245",
            paper_vectors: 6.84e6,
            rtl: BUG03_RTL,
            top: "lc_ctrl_signal_decoder",
            property: "lc_state_q != 4'd5 |-> !lc_nvm_debug_en",
            table2: (false, true, true),
            witness: &[
                &[("lc_cmd", 1)],
                &[("lc_cmd", 2), ("test_token", 0xC3)],
                &[("lc_cmd", 2)],
                &[("lc_cmd", 4)],
            ],
        },
        BugBenchmark {
            id: 4,
            name: "aes_key_leak",
            description: "Key shares leaked onto the bus via key-share offset",
            submodule: "aes_reg_top",
            cwe: "CWE-1342",
            paper_vectors: 6.97e6,
            rtl: BUG04_RTL,
            top: "aes_reg_top",
            property: "re && addr == 4'd1 && key_share0 != 16'd0 |-> rdata != key_share0",
            table2: (true, false, false),
            witness: &[
                &[("we", 1), ("addr", 1), ("wdata", 0xDEAD)],
                &[("we", 0), ("addr", 1), ("wdata", 0xDEAD)],
                &[("re", 1), ("addr", 1)],
            ],
        },
        BugBenchmark {
            id: 5,
            name: "aes_wipe_leak",
            description: "Pseudo-random wipe replaced by input data",
            submodule: "aes_core / aes_cipher_core",
            cwe: "CWE-459",
            paper_vectors: 8.24e5,
            rtl: BUG05_RTL,
            top: "aes_core",
            property: "wipe && $past(aes_state) == 2'd1 |-> data_q == prng_in",
            table2: (false, false, false),
            witness: &[
                &[("start", 1), ("din", 0x1111), ("prng_in", 0x2222)],
                &[("start", 0), ("wipe", 1), ("din", 0x1111), ("prng_in", 0x2222)],
                &[("din", 0x1111), ("prng_in", 0x2222)],
            ],
        },
        BugBenchmark {
            id: 6,
            name: "aes_masking_off",
            description: "AES masking with pseudo-random numbers is always off",
            submodule: "aes_prng_masking",
            cwe: "CWE-1300",
            paper_vectors: 7.43e5,
            rtl: BUG06_RTL,
            top: "aes_prng_masking",
            property: "phase_q |-> data_o == {perm[0], perm[7:1]}",
            table2: (false, false, false),
            witness: &[&[("en", 1)], &[("en", 0)]],
        },
        BugBenchmark {
            id: 7,
            name: "otbn_blanking_off",
            description: "Blanking operation in OTBN is disabled",
            submodule: "otbn_mac_bignum",
            cwe: "CWE-325",
            paper_vectors: 8.32e6,
            rtl: BUG07_RTL,
            top: "otbn_mac_bignum",
            property: "!(mac_en || alu_en) |-> operand_b_blanked == 16'd0",
            table2: (false, true, true),
            witness: &[&[("mac_en", 0), ("alu_en", 0), ("operand_b", 0x00FF)]],
        },
        BugBenchmark {
            id: 8,
            name: "rom_skip_check",
            description: "ROM control FSM skips the Checking state",
            submodule: "rom_ctrl_fsm",
            cwe: "CWE-1269",
            paper_vectors: 6.82e6,
            rtl: BUG08_RTL,
            top: "rom_ctrl_fsm",
            property: "state_q == 3'd4 |-> $past(state_q) == 3'd3",
            table2: (false, true, true),
            witness: &[
                &[("start", 1)],
                &[("start", 0)],
                &[("counter_done", 1)],
                &[("counter_done", 0)],
            ],
        },
        BugBenchmark {
            id: 9,
            name: "pwr_clear_early",
            description: "Incomplete clear process in the Power Manager",
            submodule: "pwr_mgr_fsm",
            cwe: "CWE-1304",
            paper_vectors: 4.82e6,
            rtl: BUG09_RTL,
            top: "pwr_mgr_fsm_a",
            property: "$past(state_q == 3'd2) |-> clr_slow_req_o == $past(reset_reqs_i[0])",
            table2: (false, false, false),
            witness: &[
                &[("req", 1), ("reset_reqs_i", 0)],
                &[("req", 0), ("reset_reqs_i", 0)],
                &[("reset_reqs_i", 0)],
                &[("reset_reqs_i", 0)],
            ],
        },
        BugBenchmark {
            id: 10,
            name: "pwr_rom_unchecked",
            description: "ROM integrity flag not checked before activation",
            submodule: "pwr_mgr_fsm",
            cwe: "CWE-1304",
            paper_vectors: 4.82e6,
            rtl: BUG10_RTL,
            top: "pwr_mgr_fsm_b",
            property: "state_q == 3'd1 && !rom_intg_chk_good |-> state_d != 3'd2",
            table2: (false, true, true),
            witness: &[
                &[("boot", 1), ("rom_intg_chk_good", 0)],
                &[("boot", 0), ("rom_intg_chk_good", 0)],
            ],
        },
        BugBenchmark {
            id: 11,
            name: "uart_parity_forced",
            description: "Parity checked even when disabled by the host",
            submodule: "uart_rx",
            cwe: "CWE-1257",
            paper_vectors: 6.82e6,
            rtl: BUG11_RTL,
            top: "uart_rx",
            property: "rx_parity_err |-> parity_enable",
            table2: (false, true, false),
            witness: &[
                &[("valid", 1), ("rx_data", 1), ("parity_bit", 0), ("parity_enable", 0)],
                &[("valid", 0), ("rx_data", 1), ("parity_bit", 0), ("parity_enable", 0)],
                &[("rx_data", 1), ("parity_bit", 0), ("parity_enable", 0)],
            ],
        },
        BugBenchmark {
            id: 12,
            name: "csrng_reseed_unchecked",
            description: "Reseed-interval enable flag unreachable by checker logic",
            submodule: "csrng_reg_top",
            cwe: "CWE-1257",
            paper_vectors: 1.82e7,
            rtl: BUG12_RTL,
            top: "csrng_reg_top",
            property: "$past(csr_state == 2'd1 && reseed_interval_we) |-> reg_we_check[7]",
            table2: (true, false, false),
            witness: &[
                &[("we", 1), ("sel", 7), ("reseed_interval_we", 1)],
                &[("we", 0), ("sel", 7), ("reseed_interval_we", 1)],
                &[("reseed_interval_we", 1)],
            ],
        },
        BugBenchmark {
            id: 13,
            name: "sysrst_err_silenced",
            description: "Wrong permit parameter value silences the write-error flag",
            submodule: "sysrst_ctrl_reg_top",
            cwe: "CWE-1320",
            paper_vectors: 1.56e7,
            rtl: BUG13_RTL,
            top: "sysrst_ctrl_reg_top",
            property: "$past(bus_state == 2'd1 && addr == 4'd0 && !reg_be[0]) |-> wr_err",
            table2: (false, true, false),
            witness: &[
                &[("reg_we", 1), ("addr", 0), ("reg_be", 0)],
                &[("reg_we", 0), ("addr", 0), ("reg_be", 0)],
                &[("addr", 0), ("reg_be", 0)],
            ],
        },
        BugBenchmark {
            id: 14,
            name: "otp_flush_on_enable",
            description: "Data flushed upon receipt of the enable signal",
            submodule: "otp_ctrl_dai",
            cwe: "CWE-1266",
            paper_vectors: 8.14e6,
            rtl: BUG14_RTL,
            top: "otp_ctrl_dai",
            property: "$past(data_en && data_sel) && $past(scrmbl_data_i) != 16'd0 |-> data_q == $past(scrmbl_data_i)",
            table2: (false, true, true),
            witness: &[
                &[("data_en", 1), ("data_sel", 1), ("scrmbl_data_i", 0xBEEF)],
                &[("data_en", 0), ("data_sel", 0), ("scrmbl_data_i", 0xBEEF)],
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_logic::LogicVec;
    use symbfuzz_props::{Property, PropertyChecker};
    use symbfuzz_sim::{Reentry, Simulator};

    #[test]
    fn all_fourteen_elaborate_and_properties_parse() {
        let bugs = bug_benchmarks();
        assert_eq!(bugs.len(), 14);
        let ids: Vec<u32> = bugs.iter().map(|b| b.id).collect();
        assert_eq!(ids, (1..=14).collect::<Vec<_>>());
        for b in &bugs {
            let d = b.design().unwrap_or_else(|e| panic!("bug {}: {e}", b.id));
            Property::parse(b.name, b.property, &d)
                .unwrap_or_else(|e| panic!("bug {} property: {e}", b.id));
        }
    }

    /// Drives each bug's witness sequence and requires the violation
    /// to fire — certifying that every planted bug is real and its
    /// property detects it.
    #[test]
    fn witnesses_trigger_every_bug() {
        for b in bug_benchmarks() {
            let d = b.design().unwrap();
            let prop = Property::parse(b.name, b.property, &d).unwrap();
            let mut checker = PropertyChecker::new(vec![prop]);
            let mut sim = Simulator::new(d.clone());
            sim.reenter(Reentry::FullReset { cycles: 2 });
            checker.on_cycle(sim.cycle(), sim.values());
            let mut fired = false;
            for step in b.witness {
                for (name, value) in *step {
                    let sig = d
                        .signal_by_name(name)
                        .unwrap_or_else(|| panic!("bug {}: no signal {name}", b.id));
                    let w = d.signal(sig).width;
                    sim.set_input(sig, &LogicVec::from_u64(w, *value)).unwrap();
                }
                sim.step();
                fired |= !checker.on_cycle(sim.cycle(), sim.values()).is_empty();
            }
            // Allow the flag one extra cycle to propagate.
            sim.step();
            fired |= !checker.on_cycle(sim.cycle(), sim.values()).is_empty();
            assert!(fired, "bug {} ({}) witness did not trigger", b.id, b.name);
        }
    }

    /// A clean run (reset held, no stimulus) must not fire properties
    /// spuriously — except bug 2's X-check which requires stimulus to
    /// reach the undefined state anyway.
    #[test]
    fn properties_hold_on_idle_designs() {
        for b in bug_benchmarks() {
            let d = b.design().unwrap();
            let prop = Property::parse(b.name, b.property, &d).unwrap();
            let mut checker = PropertyChecker::new(vec![prop]);
            let mut sim = Simulator::new(d.clone());
            sim.reenter(Reentry::FullReset { cycles: 2 });
            // Drive all zeros for a while.
            sim.apply_input_word(&LogicVec::zeros(d.fuzz_width().max(1)));
            for _ in 0..20 {
                sim.step();
                checker.on_cycle(sim.cycle(), sim.values());
            }
            assert!(
                checker.violations().is_empty(),
                "bug {} ({}) fired without stimulus",
                b.id,
                b.name
            );
        }
    }

    #[test]
    fn metadata_is_consistent() {
        for b in bug_benchmarks() {
            assert!(b.paper_vectors > 0.0);
            assert!(!b.cwe.is_empty());
            assert!(!b.witness.is_empty(), "bug {} missing witness", b.id);
            let spec = b.property_spec();
            assert_eq!(spec.name, b.name);
            assert_eq!(
                (spec.rfuzz_visible, spec.difuzz_visible, spec.hwfp_visible),
                b.table2
            );
        }
    }
}
