//! Benchmark designs for the SymbFuzz reproduction.
//!
//! The paper evaluates on the HACK@DAC'24 buggy OpenTitan SoC plus
//! CVA6, Rocket-Chip and Mor1kx (§5). Those RTL bases are millions of
//! lines of SystemVerilog outside our subset, so this crate provides
//! scaled-down re-implementations that preserve what SymbFuzz actually
//! exercises: the *control structure* around each planted bug.
//!
//! * [`bug_benchmarks`] — the 14 buggy IPs of Table 1. Each bug is
//!   re-implemented from the paper's listing (Listings 4–31) with the
//!   same flaw semantics, paired with the paper's detection property
//!   (Listings 5–32) and annotated with its CWE id and Table 2 oracle
//!   visibility.
//! * [`processor_benchmarks`] — four processor-scale designs
//!   (`ibex_like`, `cva6_like`, `rocket_like`, `mor1kx_like`) with
//!   pipelines, CSR files and bus FSMs, used for the Table 3 statistics
//!   and the Figure 4 coverage comparison.
//! * [`toy_alu`] — the paper's Listing 1 ALU, used in the docs and the
//!   quickstart example.
//!
//! # Examples
//!
//! ```
//! let bugs = symbfuzz_designs::bug_benchmarks();
//! assert_eq!(bugs.len(), 14);
//! // Every benchmark elaborates cleanly.
//! for b in &bugs {
//!     let d = b.design()?;
//!     assert!(!d.signals.is_empty(), "{}", b.name);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod alu;
mod bugs;
mod fabric;
mod hard;
mod peripherals;
mod processors;
mod soc;

pub use alu::toy_alu;
pub use bugs::{bug_benchmarks, BugBenchmark};
pub use fabric::{goal_fabric, GOAL_FABRIC_LANES, GOAL_FABRIC_PROPERTY, GOAL_FABRIC_RTL};
pub use hard::{
    hard_factor, HARD_FACTOR_P, HARD_FACTOR_PRODUCT, HARD_FACTOR_PROPERTY, HARD_FACTOR_Q,
    HARD_FACTOR_RTL,
};
pub use peripherals::peripheral_benchmarks;
pub use processors::{processor_benchmarks, Benchmark};
pub use soc::buggy_soc;
