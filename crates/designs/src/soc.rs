//! A composite SoC benchmark: several buggy IPs integrated under one
//! top with a shared register bus — the paper's evaluation target is
//! the whole (buggy) OpenTitan SoC, not isolated IPs, so this exercises
//! hierarchical elaboration, per-IP reset domains and multi-property
//! monitoring in one campaign.

use crate::bugs::bug_benchmarks;
use std::sync::Arc;
use symbfuzz_core::PropertySpec;
use symbfuzz_netlist::{elaborate_src, Design, ElabError};

const SOC_TOP_RTL: &str = "
module soc_top(
  input clk, input rst_n,
  input reg_we, input re, input [7:0] addr, input [15:0] wdata,
  input [7:0] rx_data, input parity_bit, input parity_enable, input valid,
  input start, input counter_done, input kmac_ok,
  output [15:0] mbx_rdata, output mbx_err,
  output [15:0] aes_rdata, output rom_done, output uart_err);
  wire [1:0] mbx_state;
  wire [1:0] aes_state;
  wire [1:0] uart_state;
  wire [2:0] rom_state;
  scmi_reg_top u_mailbox (
    .clk(clk), .rst_n(rst_n), .reg_we(reg_we), .addr(addr), .wdata(wdata),
    .rdata(mbx_rdata), .wr_err(mbx_err), .req_state(mbx_state));
  aes_reg_top u_aes (
    .clk(clk), .rst_n(rst_n), .re(re), .we(reg_we), .addr(addr[3:0]),
    .wdata(wdata), .rdata(aes_rdata), .ctrl_state(aes_state));
  uart_rx u_uart (
    .clk(clk), .rst_n(rst_n), .rx_data(rx_data), .parity_bit(parity_bit),
    .parity_enable(parity_enable), .valid(valid),
    .rx_parity_err(uart_err), .rx_state(uart_state));
  rom_ctrl_fsm u_rom (
    .clk(clk), .rst_n(rst_n), .start(start), .counter_done(counter_done),
    .kmac_ok(kmac_ok), .state_q(rom_state), .done_o(rom_done));
endmodule";

/// Builds the composite SoC (mailbox + AES regfile + UART + ROM
/// controller, bugs 1, 4, 11 and 8) and the four detection properties
/// rewritten against the flattened hierarchy.
///
/// # Errors
///
/// Propagates elaboration failures (covered by tests).
///
/// # Examples
///
/// ```
/// let (design, props) = symbfuzz_designs::buggy_soc()?;
/// assert!(design.signal_by_name("u_mailbox.mem0").is_some());
/// assert_eq!(props.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn buggy_soc() -> Result<(Arc<Design>, Vec<PropertySpec>), ElabError> {
    let bugs = bug_benchmarks();
    let ip = |id: u32| bugs.iter().find(|b| b.id == id).expect("bug id exists");
    let source = format!(
        "{}\n{}\n{}\n{}\n{}",
        ip(1).rtl,
        ip(4).rtl,
        ip(11).rtl,
        ip(8).rtl,
        SOC_TOP_RTL
    );
    let design = Arc::new(elaborate_src(&source, "soc_top")?);
    // The per-IP properties, re-addressed through the hierarchy. Bus
    // inputs are shared top-level signals; IP-internal registers use
    // their flattened `u_<ip>.` names.
    let props = vec![
        PropertySpec::with_visibility(
            "mailbox_no_feedback",
            "mbx_state == 2'd1 && addr >= 8'hF0 |=> mbx_err",
            false, false, false,
        ),
        PropertySpec::with_visibility(
            "aes_key_leak",
            "re && addr[3:0] == 4'd1 && u_aes.key_share0 != 16'd0 |-> aes_rdata != u_aes.key_share0",
            true, false, false,
        ),
        PropertySpec::with_visibility(
            "uart_parity_forced",
            "uart_err |-> parity_enable",
            false, true, false,
        ),
        PropertySpec::with_visibility(
            "rom_skip_check",
            "rom_state == 3'd4 |-> $past(rom_state) == 3'd3",
            false, true, true,
        ),
    ];
    Ok((design, props))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_core::{FuzzConfig, Strategy, SymbFuzz};
    use symbfuzz_netlist::DesignStats;
    use symbfuzz_props::Property;

    #[test]
    fn soc_elaborates_with_all_ips() {
        let (d, props) = buggy_soc().unwrap();
        // Identifier-connected ports alias onto the top-level nets;
        // IP-internal registers keep their hierarchical names.
        for sig in [
            "mbx_state",
            "u_mailbox.mem0",
            "u_aes.key_share0",
            "rom_state",
        ] {
            assert!(d.signal_by_name(sig).is_some(), "missing {sig}");
        }
        let stats = DesignStats::of(&d);
        assert!(stats.registers >= 10, "SoC too small: {stats:?}");
        for p in &props {
            Property::parse(&p.name, &p.text, &d).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn one_campaign_detects_multiple_soc_bugs() {
        let (d, props) = buggy_soc().unwrap();
        let config = FuzzConfig {
            interval: 100,
            threshold: 2,
            max_vectors: 8_000,
            ..FuzzConfig::default()
        };
        let mut fuzzer = SymbFuzz::new(d, Strategy::SymbFuzz, config, &props).unwrap();
        let result = fuzzer.run();
        let found = result.bugs.len();
        assert!(
            found >= 2,
            "expected ≥2 of 4 SoC bugs within 8k vectors, found {found}: {:?}",
            result.bugs
        );
    }
}
