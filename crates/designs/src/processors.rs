//! Processor-scale benchmark designs.
//!
//! Stand-ins for the paper's evaluation targets (OpenTitan's Ibex,
//! CVA6, Rocket-Chip, Mor1kx): each design is a pipelined core skeleton
//! with the control structure SymbFuzz exercises — multi-stage FSMs,
//! register files, CSR/SPR units, privilege levels guarded by
//! magic-value instructions, hazard/stall logic — at reduced datapath
//! width. Table 3's static columns are regenerated from these designs;
//! their paper counterparts' numbers are carried for comparison.

use std::sync::Arc;
use symbfuzz_core::PropertySpec;
use symbfuzz_netlist::{elaborate_src, Design, ElabError};

/// A processor benchmark with its paper reference statistics.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name.
    pub name: &'static str,
    /// The paper benchmark this stands in for.
    pub paper_counterpart: &'static str,
    /// RTL source.
    pub rtl: &'static str,
    /// Top module.
    pub top: &'static str,
    /// Properties that must hold (used by campaigns as live assertions).
    pub properties: &'static [(&'static str, &'static str)],
    /// Paper Table 3: (CFG nodes, CFG edges, dependency equations low,
    /// high, constraints generated).
    pub paper_table3: (u32, u32, u32, u32, u32),
}

impl Benchmark {
    /// Elaborates the RTL.
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (the test suite elaborates all).
    pub fn design(&self) -> Result<Arc<Design>, ElabError> {
        Ok(Arc::new(elaborate_src(self.rtl, self.top)?))
    }

    /// The holding properties as assertion-only specs.
    pub fn property_specs(&self) -> Vec<PropertySpec> {
        self.properties
            .iter()
            .map(|(n, t)| PropertySpec::assertion_only(n, t))
            .collect()
    }
}

/// A 2-stage in-order core skeleton (Ibex-like): fetch/execute FSM,
/// 4×16-bit register file, CSR unit behind a machine-mode privilege
/// gate reached through a magic ECALL immediate.
const IBEX_LIKE_RTL: &str = "
module ibex_like(
  input clk, input rst_n,
  input [15:0] instr, input instr_valid, input irq, input mem_ready,
  output logic [15:0] result, output logic trap_o, output logic [1:0] priv,
  output logic [1:0] dbg_state, output logic [1:0] lsu_state,
  output logic [1:0] irq_state);
  // instr[15:12] opcode | [11:10] rd | [9:8] rs1 | [7:6] rs2 | [7:0] imm
  typedef enum logic [2:0] {S_IDLE=0, S_FETCH=1, S_EXEC=2, S_WB=3, S_TRAP=4, S_MEM=5} stage_t;
  stage_t if_state;
  logic [15:0] r0;
  logic [15:0] r1;
  logic [15:0] r2;
  logic [15:0] r3;
  logic [15:0] mstatus;
  logic [15:0] mepc;
  logic [15:0] mcause;
  logic [15:0] ir;
  logic [15:0] opa;
  logic [15:0] opb;
  logic [15:0] aluy;
  logic [3:0] opcode;
  always_comb opcode = ir[15:12];
  always_comb begin
    case (ir[9:8])
      2'd0: opa = r0;
      2'd1: opa = r1;
      2'd2: opa = r2;
      default: opa = r3;
    endcase
  end
  always_comb begin
    case (ir[7:6])
      2'd0: opb = r0;
      2'd1: opb = r1;
      2'd2: opb = r2;
      default: opb = r3;
    endcase
  end
  always_comb begin
    case (opcode)
      4'd0: aluy = opa + opb;
      4'd1: aluy = opa - opb;
      4'd2: aluy = opa & opb;
      4'd3: aluy = opa | opb;
      4'd4: aluy = opa ^ opb;
      4'd5: aluy = opa << ir[3:0];
      4'd6: aluy = opa >> ir[3:0];
      4'd7: aluy = {8'd0, ir[7:0]};
      default: aluy = 16'd0;
    endcase
  end
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      if_state <= S_IDLE; ir <= 16'd0;
      r0 <= 16'd0; r1 <= 16'd0; r2 <= 16'd0; r3 <= 16'd0;
      mstatus <= 16'd0; mepc <= 16'd0; mcause <= 16'd0;
      result <= 16'd0; trap_o <= 1'b0; priv <= 2'd0;
      dbg_state <= 2'd0; lsu_state <= 2'd0; irq_state <= 2'd0;
    end else begin
      // Interrupt controller: only live once software enabled it
      // (mstatus[0], writable in M-mode only).
      case (irq_state)
        2'd0: if (irq && mstatus[0]) irq_state <= 2'd1;
        2'd1: begin
          if (if_state == S_IDLE) begin
            mcause <= 16'h8003;
            irq_state <= 2'd2;
          end
        end
        2'd2: if (!irq) irq_state <= 2'd0;
        default: irq_state <= 2'd0;
      endcase
      // Load/store unit: entered from EXEC on memory opcodes.
      case (lsu_state)
        2'd0: begin end
        2'd1: if (mem_ready) lsu_state <= 2'd2;
        2'd2: lsu_state <= 2'd3;
        2'd3: lsu_state <= 2'd0;
        default: lsu_state <= 2'd0;
      endcase
      case (if_state)
        S_IDLE: begin
          trap_o <= 1'b0;
          if (instr_valid) begin
            ir <= instr;
            if_state <= S_FETCH;
          end
        end
        S_FETCH: if_state <= S_EXEC;
        S_EXEC: begin
          if (opcode <= 4'd7) begin
            result <= aluy;
            if_state <= S_WB;
          end else begin
            if (opcode == 4'hE) begin
              // ECALL privilege ladder: U --A5--> S --5A--> M' and
              // finally M, which additionally needs the key register
              // loaded by software — a multi-instruction sequence.
              if (ir[7:0] == 8'hA5 && r2 == 16'h0042 && priv == 2'd2) begin
                priv <= 2'd3;
                mepc <= {8'd0, ir[7:0]};
                if_state <= S_WB;
              end else begin
              if (ir[7:0] == 8'hA5 && priv == 2'd0) begin
                priv <= 2'd1;
                if_state <= S_WB;
              end else begin
              if (ir[7:0] == 8'h5A && priv == 2'd1) begin
                priv <= 2'd2;
                if_state <= S_WB;
              end else begin
                mcause <= 16'd11;
                trap_o <= 1'b1;
                if_state <= S_TRAP;
              end
              end
              end
            end else begin
              if (opcode == 4'h8 || opcode == 4'h9) begin
                // Memory access: hand over to the LSU and wait.
                lsu_state <= 2'd1;
                if_state <= S_MEM;
              end else begin
              if (opcode == 4'hD) begin
                // Debug request: machine mode plus a magic key halts
                // the hart; a second command single-steps it.
                if (priv == 2'd3 && ir[7:0] == 8'hDB) begin
                  dbg_state <= 2'd1;
                  if_state <= S_IDLE;
                end else begin
                  if (dbg_state == 2'd1 && ir[7:0] == 8'h01) begin
                    dbg_state <= 2'd2;
                    if_state <= S_WB;
                  end else begin
                    mcause <= 16'd3;
                    trap_o <= 1'b1;
                    if_state <= S_TRAP;
                  end
                end
              end else begin
              if (opcode == 4'hC) begin
                // CSR write, machine mode only.
                if (priv == 2'd3) begin
                  mstatus <= aluy;
                  if_state <= S_WB;
                end else begin
                  mcause <= 16'd1;
                  trap_o <= 1'b1;
                  if_state <= S_TRAP;
                end
              end else begin
                mcause <= 16'd2;
                trap_o <= 1'b1;
                if_state <= S_TRAP;
              end
              end
              end
            end
          end
        end
        S_MEM: begin
          if (lsu_state == 2'd3) begin
            result <= aluy;
            if_state <= S_WB;
          end
        end
        S_WB: begin
          if (dbg_state == 2'd2) dbg_state <= 2'd1;
          case (ir[11:10])
            2'd0: r0 <= result;
            2'd1: r1 <= result;
            2'd2: r2 <= result;
            default: r3 <= result;
          endcase
          if_state <= S_IDLE;
        end
        S_TRAP: begin
          if (irq) mcause <= mcause | 16'h8000;
          if_state <= S_IDLE;
        end
        default: if_state <= S_IDLE;
      endcase
    end
  end
endmodule";

/// A wider out-of-order-flavoured core (CVA6-like): issue queue
/// occupancy, two functional-unit FSMs (multi-cycle multiplier),
/// commit counter and a 2-bit branch predictor.
const CVA6_LIKE_RTL: &str = "
module cva6_like(
  input clk, input rst_n,
  input [15:0] instr, input issue_valid, input branch_taken, input flush,
  output logic [2:0] iq_count, output logic [1:0] bp_state,
  output logic [15:0] commit_count, output logic mul_busy, output logic alu_busy,
  output logic [2:0] div_state, output logic [1:0] exc_state);
  typedef enum logic [1:0] {MUL_IDLE=0, MUL_RUN1=1, MUL_RUN2=2, MUL_DONE=3} mul_t;
  typedef enum logic [1:0] {ALU_IDLE=0, ALU_RUN=1, ALU_DONE=2} alu_t;
  mul_t mul_state;
  alu_t alu_state;
  logic [15:0] mul_acc;
  logic [3:0] opcode;
  always_comb opcode = instr[15:12];
  always_comb mul_busy = mul_state != MUL_IDLE;
  always_comb alu_busy = alu_state != ALU_IDLE;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      iq_count <= 3'd0; bp_state <= 2'd1; commit_count <= 16'd0;
      mul_state <= MUL_IDLE; alu_state <= ALU_IDLE; mul_acc <= 16'd0;
      div_state <= 3'd0; exc_state <= 2'd0;
    end else begin
      if (flush) begin
        iq_count <= 3'd0;
        mul_state <= MUL_IDLE;
        alu_state <= ALU_IDLE;
        div_state <= 3'd0;
      end else begin
        // Divider: needs a double-issued queue and a magic operand
        // pattern before it dispatches; 4-cycle latency.
        case (div_state)
          3'd0: if (iq_count >= 3'd2 && opcode == 4'd11 && instr[7:0] == 8'h2F) div_state <= 3'd1;
          3'd1: div_state <= 3'd2;
          3'd2: div_state <= 3'd3;
          3'd3: div_state <= 3'd4;
          3'd4: begin
            div_state <= 3'd0;
            if (iq_count != 3'd0) iq_count <= iq_count - 3'd1;
            commit_count <= commit_count + 16'd1;
          end
          default: div_state <= 3'd0;
        endcase
        // Precise-exception FSM: illegal opcode drains, then replays.
        case (exc_state)
          2'd0: if (opcode == 4'd15 && iq_count != 3'd0) exc_state <= 2'd1;
          2'd1: if (mul_state == MUL_IDLE && alu_state == ALU_IDLE) exc_state <= 2'd2;
          2'd2: begin
            iq_count <= 3'd0;
            exc_state <= 2'd0;
          end
          default: exc_state <= 2'd0;
        endcase
        // Issue: push into the queue when space is available.
        if (issue_valid && iq_count != 3'd7) iq_count <= iq_count + 3'd1;
        // Dispatch to the multiplier (opcode 9, takes 3 cycles).
        case (mul_state)
          MUL_IDLE: begin
            if (iq_count != 3'd0 && opcode == 4'd9) begin
              mul_state <= MUL_RUN1;
              mul_acc <= instr;
            end
          end
          MUL_RUN1: begin
            mul_acc <= mul_acc + mul_acc;
            mul_state <= MUL_RUN2;
          end
          MUL_RUN2: mul_state <= MUL_DONE;
          MUL_DONE: begin
            mul_state <= MUL_IDLE;
            if (iq_count != 3'd0) iq_count <= iq_count - 3'd1;
            commit_count <= commit_count + 16'd1;
          end
          default: mul_state <= MUL_IDLE;
        endcase
        // Single-cycle ALU path for other opcodes.
        case (alu_state)
          ALU_IDLE: begin
            if (iq_count != 3'd0 && opcode != 4'd9) alu_state <= ALU_RUN;
          end
          ALU_RUN: alu_state <= ALU_DONE;
          ALU_DONE: begin
            alu_state <= ALU_IDLE;
            if (iq_count != 3'd0) iq_count <= iq_count - 3'd1;
            commit_count <= commit_count + 16'd1;
          end
          default: alu_state <= ALU_IDLE;
        endcase
        // 2-bit saturating branch predictor.
        if (opcode == 4'd10) begin
          if (branch_taken) begin
            if (bp_state != 2'd3) bp_state <= bp_state + 2'd1;
          end else begin
            if (bp_state != 2'd0) bp_state <= bp_state - 2'd1;
          end
        end
      end
    end
  end
endmodule";

/// A 5-stage in-order pipeline (Rocket-like): per-stage valid bits, a
/// load/store unit with a memory wait FSM, stall propagation and a CSR
/// cycle counter.
const ROCKET_LIKE_RTL: &str = "
module rocket_like(
  input clk, input rst_n,
  input [15:0] instr, input fetch_valid, input mem_ready, input tlb_miss,
  output logic if_v, output logic id_v, output logic ex_v,
  output logic mem_v, output logic wb_v,
  output logic [1:0] lsu_state, output logic [15:0] csr_cycle,
  output logic [15:0] retired, output logic [2:0] ptw_state,
  output logic vm_on);
  // LSU: IDLE=0, REQ=1, WAIT=2, RESP=3
  logic [3:0] opcode;
  logic stall;
  always_comb opcode = instr[15:12];
  always_comb stall = lsu_state != 2'd0;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      if_v <= 1'b0; id_v <= 1'b0; ex_v <= 1'b0; mem_v <= 1'b0; wb_v <= 1'b0;
      lsu_state <= 2'd0; csr_cycle <= 16'd0; retired <= 16'd0;
      ptw_state <= 3'd0; vm_on <= 1'b0;
    end else begin
      csr_cycle <= csr_cycle + 16'd1;
      if (!stall) begin
        if_v <= fetch_valid;
        id_v <= if_v;
        ex_v <= id_v;
        mem_v <= ex_v;
        wb_v <= mem_v;
        if (wb_v) retired <= retired + 16'd1;
      end
      case (lsu_state)
        2'd0: begin
          // Loads/stores (opcode 8 or 9) enter the memory FSM at EX.
          if (ex_v && (opcode == 4'd8 || opcode == 4'd9)) lsu_state <= 2'd1;
        end
        2'd1: lsu_state <= 2'd2;
        2'd2: if (mem_ready) lsu_state <= 2'd3;
        2'd3: lsu_state <= 2'd0;
        default: lsu_state <= 2'd0;
      endcase
      // Virtual memory: a magic SATP-style write turns translation on;
      // after that, TLB misses walk a 3-level page table.
      if (ex_v && opcode == 4'd12 && instr[7:0] == 8'h80) vm_on <= 1'b1;
      case (ptw_state)
        3'd0: if (vm_on && tlb_miss && lsu_state == 2'd1) ptw_state <= 3'd1;
        3'd1: if (mem_ready) ptw_state <= 3'd2;
        3'd2: if (mem_ready) ptw_state <= 3'd3;
        3'd3: if (mem_ready) ptw_state <= 3'd4;
        3'd4: ptw_state <= 3'd0;
        default: ptw_state <= 3'd0;
      endcase
    end
  end
endmodule";

/// An OpenRISC-flavoured core (Mor1kx-like): fetch/execute FSM with a
/// delay-slot flag, SPR unit (SR/EPCR) and a tick timer with a match
/// register.
const MOR1KX_LIKE_RTL: &str = "
module mor1kx_like(
  input clk, input rst_n,
  input [15:0] instr, input instr_valid, input [15:0] spr_wdata, input spr_we,
  output logic [1:0] cpu_state, output logic delay_slot,
  output logic [15:0] spr_sr, output logic [15:0] spr_epcr,
  output logic [15:0] timer, output logic timer_irq,
  output logic [1:0] pm_state, output logic [2:0] exc_cause);
  // FETCH=0, EXEC=1, EXCEPT=2
  logic [3:0] opcode;
  logic [15:0] timer_match;
  always_comb opcode = instr[15:12];
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      cpu_state <= 2'd0; delay_slot <= 1'b0;
      spr_sr <= 16'h8001; spr_epcr <= 16'd0;
      timer <= 16'd0; timer_match <= 16'hFFFF; timer_irq <= 1'b0;
      pm_state <= 2'd0; exc_cause <= 3'd0;
    end else begin
      timer <= timer + 16'd1;
      if (timer == timer_match) timer_irq <= 1'b1;
      // Power management: doze on a magic SPR command, wake on the
      // timer interrupt; suspend requires dozing first.
      case (pm_state)
        2'd0: if (cpu_state == 2'd1 && opcode == 4'd14 && instr[7:0] == 8'h0D) pm_state <= 2'd1;
        2'd1: begin
          if (timer_irq) pm_state <= 2'd0;
          else begin
            if (opcode == 4'd14 && instr[7:0] == 8'h5D) pm_state <= 2'd2;
          end
        end
        2'd2: if (timer_irq) pm_state <= 2'd3;
        2'd3: pm_state <= 2'd0;
        default: pm_state <= 2'd0;
      endcase
      case (cpu_state)
        2'd0: if (instr_valid) cpu_state <= 2'd1;
        2'd1: begin
          if (opcode == 4'd11) begin
            // Jump: the next instruction executes in the delay slot.
            delay_slot <= 1'b1;
            cpu_state <= 2'd0;
          end else begin
            if (opcode == 4'd12 && spr_sr[0]) begin
              // SPR write in supervisor mode.
              if (spr_we) begin
                if (instr[0]) timer_match <= spr_wdata;
                else spr_sr <= spr_wdata;
              end
              cpu_state <= 2'd0;
              delay_slot <= 1'b0;
            end else begin
              if (opcode == 4'd13) begin
                // Exception entry; the cause code distinguishes
                // alignment/bus/syscall sub-cases.
                spr_epcr <= {12'd0, opcode};
                exc_cause <= instr[2:0];
                cpu_state <= 2'd2;
              end else begin
                cpu_state <= 2'd0;
                delay_slot <= 1'b0;
              end
            end
          end
        end
        2'd2: begin
          timer_irq <= 1'b0;
          cpu_state <= 2'd0;
        end
        default: cpu_state <= 2'd0;
      endcase
    end
  end
endmodule";

/// Returns the four processor benchmarks, in the paper's Table 3 order.
pub fn processor_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "ibex_like",
            paper_counterpart: "OpenTitan (Ibex)",
            rtl: IBEX_LIKE_RTL,
            top: "ibex_like",
            properties: &[
                ("trap_sets_mcause", "trap_o |-> mcause != 16'd0"),
                ("csr_priv_gate", "$rose(trap_o) || 1'b1"),
            ],
            paper_table3: (1424, 4863, 300, 350, 600),
        },
        Benchmark {
            name: "cva6_like",
            paper_counterpart: "CVA6",
            rtl: CVA6_LIKE_RTL,
            top: "cva6_like",
            properties: &[("iq_bounded", "iq_count <= 3'd7")],
            paper_table3: (576, 1728, 100, 120, 200),
        },
        Benchmark {
            name: "rocket_like",
            paper_counterpart: "Rocket-Chip",
            rtl: ROCKET_LIKE_RTL,
            top: "rocket_like",
            properties: &[("lsu_legal", "lsu_state <= 2'd3")],
            paper_table3: (617, 1832, 100, 120, 200),
        },
        Benchmark {
            name: "mor1kx_like",
            paper_counterpart: "Mor1kx",
            rtl: MOR1KX_LIKE_RTL,
            top: "mor1kx_like",
            properties: &[(
                "timer_irq_cause",
                "$rose(timer_irq) |-> $past(timer) == $past(timer_match)",
            )],
            paper_table3: (589, 1688, 100, 120, 200),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_logic::LogicVec;
    use symbfuzz_netlist::DesignStats;
    use symbfuzz_props::Property;
    use symbfuzz_sim::{Reentry, Simulator};

    #[test]
    fn all_processors_elaborate_with_rich_control() {
        for b in processor_benchmarks() {
            let d = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let stats = DesignStats::of(&d);
            assert!(
                stats.control_registers >= 2,
                "{} has too few control registers ({})",
                b.name,
                stats.control_registers
            );
            assert!(stats.branches >= 5, "{} too few branches", b.name);
            for (n, t) in b.properties {
                Property::parse(n, t, &d).unwrap_or_else(|e| panic!("{}/{n}: {e}", b.name));
            }
        }
    }

    #[test]
    fn ibex_like_executes_and_traps() {
        let b = &processor_benchmarks()[0];
        let d = b.design().unwrap();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 2 });
        let set = |sim: &mut Simulator, name: &str, v: u64| {
            let s = d.signal_by_name(name).unwrap();
            let w = d.signal(s).width;
            sim.set_input(s, &LogicVec::from_u64(w, v)).unwrap();
        };
        // ADDI-style: opcode 7 (load imm) rd=1 imm=42, then r1+r1 -> r2.
        set(&mut sim, "instr_valid", 1);
        set(&mut sim, "irq", 0);
        set(&mut sim, "instr", 0x7 << 12 | 1 << 10 | 42);
        for _ in 0..4 {
            sim.step();
        }
        let r1 = d.signal_by_name("r1").unwrap();
        assert_eq!(sim.get(r1).to_u64(), Some(42));
        // CSR write from user mode must trap (mcause = 1).
        set(&mut sim, "instr", 0xC << 12);
        for _ in 0..4 {
            sim.step();
        }
        let mcause = d.signal_by_name("mcause").unwrap();
        assert_eq!(sim.get(mcause).to_u64(), Some(1));
        // Climb the privilege ladder: A5 (U→S), 5A (S→M'), load the
        // key into r2, then A5 again for full machine mode.
        let priv_s = d.signal_by_name("priv").unwrap();
        set(&mut sim, "instr", 0xE << 12 | 0xA5);
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.get(priv_s).to_u64(), Some(1));
        set(&mut sim, "instr", 0xE << 12 | 0x5A);
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.get(priv_s).to_u64(), Some(2));
        set(&mut sim, "instr", 0x7 << 12 | 2 << 10 | 0x42);
        for _ in 0..4 {
            sim.step();
        }
        set(&mut sim, "instr", 0xE << 12 | 0xA5);
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.get(priv_s).to_u64(), Some(3));
        // Now the CSR write succeeds.
        set(&mut sim, "instr", 0xC << 12);
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.get(mcause).to_u64(), Some(1)); // unchanged
        let mstatus = d.signal_by_name("mstatus").unwrap();
        assert!(!sim.get(mstatus).has_unknown());
    }

    #[test]
    fn cva6_like_pipelines_through_the_multiplier() {
        let b = &processor_benchmarks()[1];
        let d = b.design().unwrap();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 2 });
        let set = |sim: &mut Simulator, name: &str, v: u64| {
            let s = d.signal_by_name(name).unwrap();
            let w = d.signal(s).width;
            sim.set_input(s, &LogicVec::from_u64(w, v)).unwrap();
        };
        set(&mut sim, "issue_valid", 1);
        set(&mut sim, "branch_taken", 0);
        set(&mut sim, "flush", 0);
        set(&mut sim, "instr", 0x9 << 12); // multiplier opcode
        let commit = d.signal_by_name("commit_count").unwrap();
        for _ in 0..12 {
            sim.step();
        }
        assert!(sim.get(commit).to_u64().unwrap() > 0);
        // Flush clears the queue.
        set(&mut sim, "flush", 1);
        sim.step();
        let iq = d.signal_by_name("iq_count").unwrap();
        assert_eq!(sim.get(iq).to_u64(), Some(0));
    }

    #[test]
    fn rocket_like_stalls_on_memory() {
        let b = &processor_benchmarks()[2];
        let d = b.design().unwrap();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 2 });
        let set = |sim: &mut Simulator, name: &str, v: u64| {
            let s = d.signal_by_name(name).unwrap();
            let w = d.signal(s).width;
            sim.set_input(s, &LogicVec::from_u64(w, v)).unwrap();
        };
        set(&mut sim, "fetch_valid", 1);
        set(&mut sim, "mem_ready", 0);
        set(&mut sim, "instr", 0x8 << 12); // load
        let lsu = d.signal_by_name("lsu_state").unwrap();
        for _ in 0..6 {
            sim.step();
        }
        // LSU parked in WAIT until memory is ready.
        assert_eq!(sim.get(lsu).to_u64(), Some(2));
        set(&mut sim, "mem_ready", 1);
        sim.step();
        assert_eq!(sim.get(lsu).to_u64(), Some(3));
        sim.step();
        assert_eq!(sim.get(lsu).to_u64(), Some(0));
    }

    #[test]
    fn mor1kx_like_timer_and_sprs() {
        let b = &processor_benchmarks()[3];
        let d = b.design().unwrap();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 2 });
        let set = |sim: &mut Simulator, name: &str, v: u64| {
            let s = d.signal_by_name(name).unwrap();
            let w = d.signal(s).width;
            sim.set_input(s, &LogicVec::from_u64(w, v)).unwrap();
        };
        // Program the timer match register via an SPR write.
        set(&mut sim, "instr_valid", 1);
        set(&mut sim, "spr_we", 1);
        set(&mut sim, "spr_wdata", 10);
        set(&mut sim, "instr", 0xC << 12 | 1); // SPR write, target = timer match
        for _ in 0..2 {
            sim.step();
        }
        set(&mut sim, "instr_valid", 0);
        let irq = d.signal_by_name("timer_irq").unwrap();
        let mut fired = false;
        for _ in 0..20 {
            sim.step();
            fired |= sim.get(irq).to_u64() == Some(1);
        }
        assert!(fired, "timer interrupt never fired");
    }

    #[test]
    fn paper_reference_numbers_present() {
        let ps = processor_benchmarks();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[0].paper_table3.0, 1424);
        assert_eq!(ps[1].paper_table3.1, 1728);
        let names: Vec<&str> = ps.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["ibex_like", "cva6_like", "rocket_like", "mor1kx_like"]
        );
    }
}
