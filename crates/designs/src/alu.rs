//! The paper's toy ALU (Listing 1), adapted to the supported subset.

use std::sync::Arc;
use symbfuzz_netlist::{elaborate_src, Design};

/// RTL of the Listing 1 ALU: two 16-bit operands, a 4-bit opcode whose
/// MSB selects 8-/16-bit operation mode, and a typed FSM register.
pub const TOY_ALU_RTL: &str = "
module alu(
  input nrst, input clk,
  input [15:0] a, input [15:0] b, input [3:0] op,
  output logic [15:0] out);
  typedef enum logic [2:0] {INIT = 0, ADD = 1, SUB = 2, AND_ = 3, OR_ = 4, XOR_ = 5} state_t;
  state_t state;
  logic opmode;
  always_ff @(posedge clk or negedge nrst) begin : reset_logic
    if (!nrst) begin
      state <= INIT;
      opmode <= 1'b0;
    end else begin
      state <= op[2:0];
      opmode <= op[3];
    end
  end
  always_comb begin : fsm
    if (opmode) begin
      out[15:8] = 8'd0;
      case (state)
        INIT: out[7:0] = 8'd0;
        ADD:  out[7:0] = a[7:0] + b[7:0];
        SUB:  out[7:0] = a[7:0] - b[7:0];
        AND_: out[7:0] = a[7:0] & b[7:0];
        OR_:  out[7:0] = a[7:0] | b[7:0];
        XOR_: out[7:0] = a[7:0] ^ b[7:0];
        default: out[7:0] = 8'd0;
      endcase
    end else begin
      case (state)
        INIT: out = 16'd0;
        ADD:  out = a + b;
        SUB:  out = a - b;
        AND_: out = a & b;
        OR_:  out = a | b;
        XOR_: out = a ^ b;
        default: out = 16'd0;
      endcase
    end
  end
endmodule";

/// Elaborates the Listing 1 ALU.
///
/// # Panics
///
/// Never — the source is a compile-time constant covered by tests.
///
/// # Examples
///
/// ```
/// let alu = symbfuzz_designs::toy_alu();
/// assert_eq!(alu.name, "alu");
/// assert!(alu.signal_by_name("state").is_some());
/// ```
pub fn toy_alu() -> Arc<Design> {
    Arc::new(elaborate_src(TOY_ALU_RTL, "alu").expect("toy ALU must elaborate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_logic::LogicVec;
    use symbfuzz_netlist::classify_registers;
    use symbfuzz_sim::{Reentry, Simulator};

    #[test]
    fn alu_elaborates_with_paper_structure() {
        let d = toy_alu();
        let rc = classify_registers(&d);
        // `state` and `opmode` are the control registers (§4.4.1).
        let names: Vec<&str> = rc
            .control
            .iter()
            .map(|s| d.signal(*s).name.as_str())
            .collect();
        assert!(names.contains(&"state"));
        assert!(names.contains(&"opmode"));
        // Eqn. 4: 6 legal enum encodings × 2 = 12 nodes (the paper's
        // 16 assumes all 8 encodings of the 3-bit register).
        assert_eq!(rc.node_population(&d), 12);
    }

    #[test]
    fn alu_computes_in_both_modes() {
        let d = toy_alu();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 1 });
        let set = |sim: &mut Simulator, name: &str, v: u64| {
            let s = d.signal_by_name(name).unwrap();
            let w = d.signal(s).width;
            sim.set_input(s, &LogicVec::from_u64(w, v)).unwrap();
        };
        let out = d.signal_by_name("out").unwrap();
        // 16-bit ADD: op = 0001.
        set(&mut sim, "a", 300);
        set(&mut sim, "b", 500);
        set(&mut sim, "op", 0b0001);
        sim.step();
        assert_eq!(sim.get(out).to_u64(), Some(800));
        // 8-bit ADD: op = 1001 — wraps at 8 bits, high byte zero.
        set(&mut sim, "a", 200);
        set(&mut sim, "b", 100);
        set(&mut sim, "op", 0b1001);
        sim.step();
        assert_eq!(sim.get(out).to_u64(), Some((200 + 100) % 256));
        // XOR in 16-bit mode.
        set(&mut sim, "a", 0xFF00);
        set(&mut sim, "b", 0x0FF0);
        set(&mut sim, "op", 0b0101);
        sim.step();
        assert_eq!(sim.get(out).to_u64(), Some(0xF0F0));
    }
}
