//! A goal-dense fixture for the incremental-solver experiments.
//!
//! The fabric below is the structural opposite of
//! [`hard_factor`](crate::hard_factor): instead of one goal that no
//! budget can crack, it exposes *many sibling goals that all hang off
//! the same expensive arithmetic*. Eight 2-bit lane FSMs each walk a
//! three-stage chain; a lane advances one stage when one shared
//! 24-bit product equals the stage's per-lane semiprime, whose two
//! prime factors are 12-bit — every guard is a small factoring
//! instance (exactly two models, `(p, q)` and `(q, p)`), hard enough
//! that CDCL pays real conflicts but decidable well inside campaign
//! budgets, unlike `hard_factor`'s 40-bit wall. So:
//!
//! * every lane goal unrolls the *same* transition relation — the
//!   multiplier is bitblasted once per frame and shared by every goal
//!   posed from that state, which is exactly what the frame cache and
//!   assumption-based [`SolverSession`](symbfuzz_smt::SolverSession)
//!   amortize — and the conflicts a lane's factoring search learns
//!   are multiplier lemmas that prune every sibling lane's search;
//! * the goals per lane are *nested*: reaching stage `k` means
//!   satisfying every guard of stages `1..=k` in order, so the
//!   witness path for `l_i = k` strictly extends the path for
//!   `l_i = k-1`. A warm session that just solved the `k-1` goal
//!   answers the `k` goal by extending a search it has already
//!   pruned; a cold solver re-factors the whole prefix from scratch.
//!   That nesting is the A/B fixture for the conflicts-to-verdict
//!   reduction measurements, and it mirrors how guided campaigns
//!   actually pose goals — sibling values of one register, batched
//!   from one checkpoint state.
//!
//! Every stage is genuinely satisfiable: lane `i`'s stage constants
//! are products of two 12-bit primes, so driving `a` and `b` to the
//! factors advances the lane in one cycle.

use std::sync::Arc;
use symbfuzz_netlist::{elaborate_src, Design};

/// Lane FSMs in the fabric (one control register each).
pub const GOAL_FABRIC_LANES: u32 = 8;

/// RTL of the goal fabric. The two 12-bit inputs feed one shared
/// 24-bit multiplier; lane `i` advances from stage `k-1` to stage `k`
/// when the product equals its stage-`k` semiprime (factor pairs in
/// the table below). Stages are sticky: a lane that reached a stage
/// holds there until the next stage's guard matches, and stage 3 is
/// terminal.
///
/// | lane | stage 1             | stage 2             | stage 3             |
/// |------|---------------------|---------------------|---------------------|
/// | l0   | 4028033 = 2003·2011 | 4088459 = 2017·2027 | 5143823 = 2267·2269 |
/// | l1   | 4137131 = 2029·2039 | 4235339 = 2053·2063 | 5184713 = 2273·2281 |
/// | l2   | 4305589 = 2069·2081 | 4347221 = 2083·2087 | 5244091 = 2287·2293 |
/// | l3   | 4384811 = 2089·2099 | 4460543 = 2111·2113 | 5303773 = 2297·2309 |
/// | l4   | 4536899 = 2129·2131 | 4575317 = 2137·2141 | 5391563 = 2311·2333 |
/// | l5   | 4613879 = 2143·2153 | 4708819 = 2161·2179 | 5475599 = 2339·2341 |
/// | l6   | 4862021 = 2203·2207 | 4915073 = 2213·2221 | 5517797 = 2347·2351 |
/// | l7   | 5008643 = 2237·2239 | 5048993 = 2243·2251 | 5588447 = 2357·2371 |
pub const GOAL_FABRIC_RTL: &str = "
module goalfabric(
  input clk, input rst_n,
  input [11:0] a, input [11:0] b,
  output logic [1:0] l0, output logic [1:0] l1,
  output logic [1:0] l2, output logic [1:0] l3,
  output logic [1:0] l4, output logic [1:0] l5,
  output logic [1:0] l6, output logic [1:0] l7,
  output logic jackpot);
  logic [23:0] aw;
  logic [23:0] bw;
  logic [23:0] p;
  assign aw = a;
  assign bw = b;
  assign p = aw * bw;
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) begin
      l0 <= 2'd0; l1 <= 2'd0; l2 <= 2'd0; l3 <= 2'd0;
      l4 <= 2'd0; l5 <= 2'd0; l6 <= 2'd0; l7 <= 2'd0;
    end
    else begin
      case (l0)
        2'd0: if (p == 24'd4028033) l0 <= 2'd1;
        2'd1: if (p == 24'd4088459) l0 <= 2'd2; else l0 <= 2'd1;
        2'd2: if (p == 24'd5143823) l0 <= 2'd3; else l0 <= 2'd2;
        default: l0 <= l0;
      endcase
      case (l1)
        2'd0: if (p == 24'd4137131) l1 <= 2'd1;
        2'd1: if (p == 24'd4235339) l1 <= 2'd2; else l1 <= 2'd1;
        2'd2: if (p == 24'd5184713) l1 <= 2'd3; else l1 <= 2'd2;
        default: l1 <= l1;
      endcase
      case (l2)
        2'd0: if (p == 24'd4305589) l2 <= 2'd1;
        2'd1: if (p == 24'd4347221) l2 <= 2'd2; else l2 <= 2'd1;
        2'd2: if (p == 24'd5244091) l2 <= 2'd3; else l2 <= 2'd2;
        default: l2 <= l2;
      endcase
      case (l3)
        2'd0: if (p == 24'd4384811) l3 <= 2'd1;
        2'd1: if (p == 24'd4460543) l3 <= 2'd2; else l3 <= 2'd1;
        2'd2: if (p == 24'd5303773) l3 <= 2'd3; else l3 <= 2'd2;
        default: l3 <= l3;
      endcase
      case (l4)
        2'd0: if (p == 24'd4536899) l4 <= 2'd1;
        2'd1: if (p == 24'd4575317) l4 <= 2'd2; else l4 <= 2'd1;
        2'd2: if (p == 24'd5391563) l4 <= 2'd3; else l4 <= 2'd2;
        default: l4 <= l4;
      endcase
      case (l5)
        2'd0: if (p == 24'd4613879) l5 <= 2'd1;
        2'd1: if (p == 24'd4708819) l5 <= 2'd2; else l5 <= 2'd1;
        2'd2: if (p == 24'd5475599) l5 <= 2'd3; else l5 <= 2'd2;
        default: l5 <= l5;
      endcase
      case (l6)
        2'd0: if (p == 24'd4862021) l6 <= 2'd1;
        2'd1: if (p == 24'd4915073) l6 <= 2'd2; else l6 <= 2'd1;
        2'd2: if (p == 24'd5517797) l6 <= 2'd3; else l6 <= 2'd2;
        default: l6 <= l6;
      endcase
      case (l7)
        2'd0: if (p == 24'd5008643) l7 <= 2'd1;
        2'd1: if (p == 24'd5048993) l7 <= 2'd2; else l7 <= 2'd1;
        2'd2: if (p == 24'd5588447) l7 <= 2'd3; else l7 <= 2'd2;
        default: l7 <= l7;
      endcase
    end
  end
  always_comb jackpot = (l0 == 2'd2) && (l4 == 2'd2);
endmodule";

/// The detection property: lanes 0 and 4 never both sit at stage 2.
/// Random stimulus has to factor four 24-bit semiprimes in order (two
/// models each out of 2^24 input words); guided campaigns solve each
/// stage in one query.
pub const GOAL_FABRIC_PROPERTY: (&str, &str) = ("never_jackpot", "jackpot == 1'b0");

/// Elaborates the goal fabric.
///
/// # Panics
///
/// Never — the source is a compile-time constant covered by tests.
pub fn goal_fabric() -> Arc<Design> {
    Arc::new(elaborate_src(GOAL_FABRIC_RTL, "goalfabric").expect("goal fabric must elaborate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbfuzz_logic::LogicVec;
    use symbfuzz_netlist::classify_registers;
    use symbfuzz_sim::{Reentry, Simulator};

    #[test]
    fn lanes_walk_their_stages_and_the_jackpot_opens() {
        let d = goal_fabric();
        let a = d.signal_by_name("a").unwrap();
        let b = d.signal_by_name("b").unwrap();
        let l0 = d.signal_by_name("l0").unwrap();
        let l4 = d.signal_by_name("l4").unwrap();
        let jackpot = d.signal_by_name("jackpot").unwrap();

        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 1 });
        let drive = |sim: &mut Simulator, av: u64, bv: u64| {
            sim.set_input(a, &LogicVec::from_u64(12, av)).unwrap();
            sim.set_input(b, &LogicVec::from_u64(12, bv)).unwrap();
            sim.step();
        };
        // Lane 0's stage semiprimes, by their factor pairs.
        drive(&mut sim, 2003, 2011);
        drive(&mut sim, 2017, 2027);
        // Lane 4's, with the factors swapped (the other model).
        drive(&mut sim, 2131, 2129);
        drive(&mut sim, 2141, 2137);
        assert_eq!(sim.get(l0).to_u64(), Some(2));
        assert_eq!(sim.get(l4).to_u64(), Some(2));
        assert_eq!(sim.get(jackpot).to_u64(), Some(1));
        // Stage 3 extends the chain (and closes the jackpot again).
        drive(&mut sim, 2267, 2269);
        assert_eq!(sim.get(l0).to_u64(), Some(3));
        assert_eq!(sim.get(jackpot).to_u64(), Some(0));
        // Stage 3 is terminal.
        drive(&mut sim, 2003, 2011);
        assert_eq!(sim.get(l0).to_u64(), Some(3));
    }

    #[test]
    fn a_miss_holds_a_lane_at_its_stage() {
        let d = goal_fabric();
        let a = d.signal_by_name("a").unwrap();
        let b = d.signal_by_name("b").unwrap();
        let l0 = d.signal_by_name("l0").unwrap();
        let mut sim = Simulator::new(d.clone());
        sim.reenter(Reentry::FullReset { cycles: 1 });
        sim.set_input(a, &LogicVec::from_u64(12, 2003)).unwrap();
        sim.set_input(b, &LogicVec::from_u64(12, 2011)).unwrap();
        sim.step();
        assert_eq!(sim.get(l0).to_u64(), Some(1));
        // A wrong stage-2 word holds the lane (sticky), it never
        // falls back to 0.
        sim.set_input(b, &LogicVec::from_u64(12, 2027)).unwrap();
        sim.step();
        assert_eq!(sim.get(l0).to_u64(), Some(1));
    }

    #[test]
    fn every_lane_is_a_control_register() {
        let d = goal_fabric();
        let rc = classify_registers(&d);
        let names: Vec<&str> = rc
            .control
            .iter()
            .map(|s| d.signal(*s).name.as_str())
            .collect();
        for i in 0..GOAL_FABRIC_LANES {
            let lane = format!("l{i}");
            assert!(names.contains(&lane.as_str()), "control: {names:?}");
        }
        assert!(
            names.len() as u32 >= GOAL_FABRIC_LANES,
            "goal-dense fixture must expose at least one control register per lane"
        );
    }
}
